//! Quorum sensing in house-hunting ants (paper Sections 1 and 6.2).
//!
//! *Temnothorax* scouts evaluating a candidate nest commit to it once the
//! scout density there crosses a quorum threshold [Pra05]. This example
//! models two candidate nests as small tori — one well-populated, one
//! nearly empty — and lets scout ants decide, individually and only by
//! bumping into each other, whether each site has reached quorum.
//!
//! Run with: `cargo run --release --example ant_colony_quorum`

use antdensity::core::quorum::{QuorumDecision, QuorumSensor};
use antdensity::graphs::{Topology, Torus2d};

fn main() {
    // Both nests are 24x24 cavities; quorum is density 0.08.
    let nest = Torus2d::new(24); // A = 576 cells
    let threshold = 0.08;
    let sensor = QuorumSensor::new(threshold, 0.05, 1 << 15);

    // Site A: 104 scouts (d ~ 0.179, over quorum).
    // Site B: 13 scouts  (d ~ 0.021, under quorum).
    for (site, scouts) in [("A (busy)", 104usize), ("B (quiet)", 13)] {
        let d = (scouts as f64 - 1.0) / nest.num_nodes() as f64;
        let outcomes = sensor.run(&nest, scouts, 0xA17);
        let above = outcomes
            .iter()
            .filter(|o| o.decision == QuorumDecision::Above)
            .count();
        let below = outcomes
            .iter()
            .filter(|o| o.decision == QuorumDecision::Below)
            .count();
        let undecided = outcomes.len() - above - below;
        let mean_rounds: f64 =
            outcomes.iter().map(|o| o.rounds_used as f64).sum::<f64>() / outcomes.len() as f64;
        println!("nest {site}: true scout density {d:.3} vs quorum {threshold}");
        println!("  votes: {above} above / {below} below / {undecided} undecided");
        println!("  mean rounds to a decision: {mean_rounds:.0}");
        let verdict = if above > below {
            "QUORUM REACHED - start transporting the colony"
        } else {
            "no quorum - keep scouting"
        };
        println!("  colony outcome: {verdict}\n");
    }

    println!("Every scout decided alone, from its own encounter rate, with a");
    println!("Theorem-1-shaped confidence margin: far-from-threshold densities");
    println!("are decided in few rounds, near-threshold ones take longer —");
    println!("the adaptive behaviour the paper's Section 6.2 anticipates.");
}
