//! Sensor-network sampling by token random walk (paper Section 6.3.1).
//!
//! A base station wants the fraction of sensors that recorded an event.
//! Instead of building a spanning tree, it releases a *token* that hops
//! between neighboring sensors at random, averaging readings as it goes —
//! no routing state, no visited-set, and node failures only cost the
//! failed readings. The paper's moment bounds (Corollary 15) explain why
//! the token's repeat visits barely hurt: we measure the effective
//! accuracy against ideal i.i.d. sampling, then kill 30% of the sensors
//! and do it again.
//!
//! Run with: `cargo run --release --example sensor_field`

use antdensity::graphs::Torus2d;
use antdensity::swarm::sensor::{iid_mean_estimate, token_mean_estimate, SensorField};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x5E25);
    // 64x64 sensor grid; 18% of sensors have detected the event.
    let mut field = SensorField::bernoulli(Torus2d::new(64), 0.18, &mut rng);
    let truth = field.true_mean();
    println!(
        "sensor grid 64x64, event rate {truth:.4} ({} sensors alive)\n",
        field.alive_count()
    );

    let hops = 4096u64;
    println!("token walk, {hops} hops, 20 independent tokens:");
    summarize(&field, hops, truth);

    // ----- robustness: 30% of the sensing elements die ---------------
    field.fail_random(0.3, &mut rng);
    let truth_after = field.true_mean();
    println!(
        "\nafter 30% sensor failures ({} alive, target now {truth_after:.4}):",
        field.alive_count()
    );
    summarize(&field, hops, truth_after);

    println!("\nThe token keeps routing through dead sensors (their radios");
    println!("work) and simply skips their readings — estimation degrades");
    println!("gracefully, no reconfiguration required. That robustness,");
    println!("without any visited-set bookkeeping, is what the paper's");
    println!("local-mixing analysis buys.");
}

fn summarize(field: &SensorField<Torus2d>, hops: u64, truth: f64) {
    let tokens = 20u64;
    let mut token_errs = Vec::new();
    let mut revisit_frac = 0.0;
    for s in 0..tokens {
        let est = token_mean_estimate(field, 0, hops, 100 + s);
        token_errs.push((est.mean - truth).abs());
        revisit_frac += est.revisits as f64 / hops as f64;
    }
    revisit_frac /= tokens as f64;
    let iid_errs: Vec<f64> = (0..tokens)
        .map(|s| (iid_mean_estimate(field, hops, 300 + s) - truth).abs())
        .collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!(
        "  token:  mean |err| = {:.4}   (revisit fraction {:.2})",
        mean(&token_errs),
        revisit_frac
    );
    println!(
        "  i.i.d.: mean |err| = {:.4}   (idealised baseline)",
        mean(&iid_errs)
    );
    println!(
        "  repeat-visit penalty: {:.2}x — logarithmic, as Corollary 15 predicts",
        mean(&token_errs) / mean(&iid_errs).max(1e-12)
    );
}
