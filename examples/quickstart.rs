//! Quickstart: the paper's model in five minutes.
//!
//! Reproduces the scenario of the paper's Figure 1 — a handful of ants
//! (agents) random-walking on a small torus, sensing collisions — then
//! runs Algorithm 1 properly and compares the estimates with Theorem 1's
//! prediction.
//!
//! Run with: `cargo run --release --example quickstart`

use antdensity::core::algorithm1::Algorithm1;
use antdensity::core::theory::TopologyClass;
use antdensity::graphs::{Topology, Torus2d};
use antdensity::stats::table::{format_sig, Table};
use antdensity::walks::arena::SyncArena;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // ----- Figure 1: a tiny world we can draw -----------------------
    println!("A 8x8 torus with 6 ants (the paper's Figure 1 scenario):\n");
    let small = Torus2d::new(8);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut arena = SyncArena::new(small, 6);
    arena.place_uniform(&mut rng);
    for round in 0..3 {
        println!("after round {round}:");
        draw(&arena, small);
        let collisions: u32 = (0..6).map(|a| arena.count(a)).sum();
        println!("  total collision sightings this round: {collisions}\n");
        arena.step_round(&mut rng);
    }

    // ----- Algorithm 1 at realistic scale ---------------------------
    let torus = Torus2d::new(64); // A = 4096 positions
    let num_agents = 206; // n = 205 others  =>  d = 205/4096 ~ 0.05
    let d = (num_agents as f64 - 1.0) / torus.num_nodes() as f64;
    println!("Algorithm 1 on a 64x64 torus, {num_agents} ants, d = {d:.4}:\n");

    let mut table = Table::new(
        "estimate quality vs rounds walked",
        &["t", "mean_estimate", "q90_rel_err", "theorem1_eps(c1=1)"],
    );
    for t in [64u64, 256, 1024, 4096] {
        let run = Algorithm1::new(num_agents, t).run(&torus, 42);
        let errs = run.relative_errors();
        let q90 = antdensity::stats::quantile::quantile(&errs, 0.9);
        let bound = TopologyClass::Torus2d {
            nodes: torus.num_nodes(),
        }
        .epsilon(t, d, 0.1);
        table.row_owned(vec![
            t.to_string(),
            format_sig(run.mean_estimate(), 4),
            format_sig(q90, 3),
            format_sig(bound, 3),
        ]);
    }
    println!("{table}");
    println!("Each ant only counts how many others share its square after each");
    println!("step — no ids, no messages — yet the estimates tighten like");
    println!("sqrt(1/t)*log t, exactly as Theorem 1 predicts.");
}

/// Draws the arena as an ASCII grid (digits = number of ants on a square).
fn draw<T: Topology>(arena: &SyncArena<T>, torus: Torus2d) {
    for y in (0..torus.side()).rev() {
        print!("  ");
        for x in 0..torus.side() {
            let occ = arena.occupancy(torus.node(x, y));
            if occ == 0 {
                print!(" .");
            } else {
                print!(" {occ}");
            }
        }
        println!();
    }
}
