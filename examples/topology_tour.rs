//! A tour of the paper's topology zoo (Section 4).
//!
//! The whole paper turns on one quantity: how likely are two agents that
//! just collided to collide again m rounds later? This example computes
//! that re-collision curve *exactly* for every analysed topology at
//! matched size A = 4096, prints them side by side with the paper's
//! predicted envelopes, and shows the accuracy each topology's B(t)
//! implies.
//!
//! Run with: `cargo run --release --example topology_tour`

use antdensity::core::recollision::exact_recollision_curve;
use antdensity::core::theory::TopologyClass;
use antdensity::graphs::{generators, spectral, CompleteGraph, Hypercube, Ring, Torus2d, TorusKd};
use antdensity::stats::table::{format_sig, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let a = 4096u64;
    let t_max = 256u64;
    let mut rng = SmallRng::seed_from_u64(0x70D0);

    // matched-size instances of every family the paper analyses
    let torus = Torus2d::new(64);
    let ring = Ring::new(a);
    let torus3 = TorusKd::new(3, 16);
    let hyper = Hypercube::new(12);
    let complete = CompleteGraph::new(a);
    let expander = generators::random_regular(a, 8, 500, &mut rng)?;
    let lambda = spectral::walk_matrix_lambda(&expander, 4000, &mut rng).lambda;

    let curves: Vec<(&str, Vec<f64>, TopologyClass)> = vec![
        (
            "ring (1-d)",
            exact_recollision_curve(&ring, 0, t_max),
            TopologyClass::Ring { nodes: a },
        ),
        (
            "torus 2-d",
            exact_recollision_curve(&torus, 0, t_max),
            TopologyClass::Torus2d { nodes: a },
        ),
        (
            "torus 3-d",
            exact_recollision_curve(&torus3, 0, t_max),
            TopologyClass::TorusKd { dims: 3, nodes: a },
        ),
        (
            "hypercube",
            exact_recollision_curve(&hyper, 0, t_max),
            TopologyClass::Hypercube { dims: 12 },
        ),
        (
            "expander d=8",
            exact_recollision_curve(&expander, 0, t_max),
            TopologyClass::Expander { lambda, nodes: a },
        ),
        (
            "complete",
            exact_recollision_curve(&complete, 0, t_max),
            TopologyClass::Complete { nodes: a },
        ),
    ];

    println!("Exact re-collision probability P(m) at matched A = {a}");
    println!("(two walks from one node; the paper's Lemma 4/20/22/23/25 quantity)\n");
    let mut table = Table::new(
        "recollision landscape",
        &[
            "m",
            "ring",
            "torus2d",
            "torus3d",
            "hypercube",
            "expander",
            "complete",
        ],
    );
    for &m in &[1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
        let mut row = vec![m.to_string()];
        for (_, curve, _) in &curves {
            row.push(format_sig(curve[m as usize], 5));
        }
        table.row_owned(row);
    }
    table.note(
        "floor = 1/A = 0.000244 (stationary collision rate); slower decay = worse local mixing",
    );
    println!("{table}");

    println!("What that means for an ant estimating density d = 0.05 (delta = 0.1),");
    println!("in the paper's large-A regime (surface far larger than the walk range):\n");
    // lift every class to a huge A so the 1/A floor terms vanish — the
    // paper's standing assumption "A is large ... larger than the area
    // agents traverse".
    let big: Vec<(&str, TopologyClass)> = vec![
        ("ring (1-d)", TopologyClass::Ring { nodes: 1 << 40 }),
        ("torus 2-d", TopologyClass::Torus2d { nodes: 1 << 40 }),
        (
            "torus 3-d",
            TopologyClass::TorusKd {
                dims: 3,
                nodes: 1 << 40,
            },
        ),
        ("hypercube", TopologyClass::Hypercube { dims: 40 }),
        (
            "expander d=8",
            TopologyClass::Expander {
                lambda,
                nodes: 1 << 40,
            },
        ),
        ("complete", TopologyClass::Complete { nodes: 1 << 40 }),
    ];
    let mut acc = Table::new(
        "implied accuracy (Lemma 19, unit constants)",
        &[
            "topology",
            "B(1024)",
            "epsilon(t=1024)",
            "rounds for eps=0.2",
        ],
    );
    for (name, class) in &big {
        let b = class.b_sum(1024);
        let eps = class.epsilon(1024, 0.05, 0.1);
        let budget = class
            .rounds_for(0.2, 0.1, 0.05, 1 << 34)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "diverges".to_string());
        acc.row_owned(vec![
            name.to_string(),
            format_sig(b, 3),
            format_sig(eps, 3),
            budget,
        ]);
    }
    acc.note("the ring's B(t) ~ sqrt(t) makes the Lemma 19 planner diverge — Theorem 21's Chebyshev route is needed there");
    println!("{acc}");
    println!("The paper's punchline, visible in one table: every topology with a");
    println!("summable re-collision curve estimates density nearly as well as");
    println!("independent sampling; only the ring pays a real penalty.\n");

    // Beyond the analysed zoo: the pluggable CSR backend accepts any
    // graph. Measure the spectral decay rate of a Barry-style holed
    // region and a clique-ring bottleneck, and run the actual estimator
    // on each — theory-by-measurement next to simulation.
    use antdensity::engine::{Scenario, TopologySpec};
    println!("Beyond the zoo: arbitrary graphs through the CSR backend");
    println!("(spec tokens usable verbatim as sweep axes; bounds from measured spectra)\n");
    let mut csr = Table::new(
        "pluggable csr graphs (alg1, d = 0.05, t = 512, 4 seeds)",
        &["spec", "nodes", "lambda_eff", "mean d~", "mean rel err"],
    );
    for token in [
        "csr:grid-holes:24:7:0.2",
        "csr:grid-holes:24:7:0.5",
        "csr:regular:576:8",
        "csr:cliquering:36:16",
    ] {
        let spec: TopologySpec = token.parse()?;
        let nodes = spec.num_nodes();
        let lambda_eff = match TopologyClass::measured(spec) {
            TopologyClass::Expander { lambda, .. } => lambda,
            _ => unreachable!("measured classes are expander-shaped"),
        };
        let agents = ((0.05 * nodes as f64).round() as usize).max(2) + 1;
        let mut est_sum = 0.0;
        let mut err_sum = 0.0;
        for seed in 0..4 {
            let out = Scenario::new(spec, agents, 512).run(seed);
            est_sum += out.mean_estimate();
            err_sum += out.relative_errors().iter().sum::<f64>() / agents as f64;
        }
        csr.row_owned(vec![
            token.to_string(),
            nodes.to_string(),
            format_sig(lambda_eff, 4),
            format_sig(est_sum / 4.0, 3),
            format_sig(err_sum / 4.0, 3),
        ]);
    }
    csr.note("lambda_eff: bipartite parity mode deflated — more holes / tighter bottlenecks => slower mixing => larger error at matched t");
    println!("{csr}");
    Ok(())
}
