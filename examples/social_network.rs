//! Social-network size estimation with link-query accounting
//! (paper Section 5.1).
//!
//! We cannot enumerate a large social network's members — only crawl it
//! by following links. This example builds a preferential-attachment
//! network (the degree-skewed shape of real social graphs), estimates
//! its average degree by inverse-degree sampling (Algorithm 3), plans
//! `(n, t)` per Theorem 27, runs the collision estimator (Algorithm 2)
//! from a single seed profile with burn-in, and compares total link
//! queries against the KLSC14 single-round baseline at the same accuracy
//! target.
//!
//! Run with: `cargo run --release --example social_network`

use antdensity::graphs::{generators, spectral, Topology};
use antdensity::netsize::algorithm2::{Algorithm2, StartMode};
use antdensity::netsize::katzir::Katzir;
use antdensity::netsize::{burnin, degree, median, planner};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(0x50C1A1);
    let network = generators::barabasi_albert(5000, 4, &mut rng)?;
    let truth = network.num_nodes();
    println!(
        "hidden network: |V| = {truth} (preferential attachment), degrees {}..{}, avg {:.2}\n",
        network.min_degree(),
        network.max_degree(),
        network.avg_degree()
    );

    // Step 1: average degree via Algorithm 3.
    let deg_est = degree::estimate_avg_degree(&network, 4000, 11);
    println!(
        "Algorithm 3: estimated average degree {:.3} (truth {:.3}) from {} stationary samples",
        deg_est.avg_degree,
        network.avg_degree(),
        deg_est.samples
    );

    // Step 2: burn-in length from the measured spectral gap.
    let lambda = spectral::walk_matrix_lambda(&network, 4000, &mut rng).lambda;
    let m = burnin::recommended_burnin(&network, 0.05, Some(lambda), 0.5);
    println!("measured lambda = {lambda:.3}  =>  burn-in M = {m} steps per walk");

    // Step 3: plan (n, t) per Theorem 27 and run, median-boosted.
    let (eps, delta) = (0.2, 0.2);
    let plan = planner::plan_optimal(
        &|t| (2.0 * t as f64).ln().max(1.0), // conservative B(t) model
        network.num_edges(),
        truth,
        eps,
        delta,
        m,
        1 << 14,
        1.0,
    );
    println!(
        "Theorem 27 plan: n = {} walks x t = {} rounds (predicted {} queries)",
        plan.walks, plan.rounds, plan.predicted_queries
    );
    let ours = median::median_boosted(
        Algorithm2::new(plan.walks, plan.rounds),
        &network,
        deg_est.avg_degree,
        StartMode::SeedWithBurnin {
            seed_vertex: 0,
            steps: m,
        },
        7,
        0xE57,
    );
    println!(
        "Algorithm 2 (median of 7): |V| ~ {:.0}  (err {:.1}%), {} link queries\n",
        ours.estimate,
        100.0 * (ours.estimate - truth as f64).abs() / truth as f64,
        ours.queries.total()
    );

    // Step 4: the KLSC14 baseline at the same target.
    let nk = Katzir::required_walks(&network, eps, delta, 1.0);
    let kat = median::median_boosted(
        Algorithm2::new(nk, 1),
        &network,
        deg_est.avg_degree,
        StartMode::SeedWithBurnin {
            seed_vertex: 0,
            steps: m,
        },
        7,
        0x0AA7,
    );
    println!(
        "KLSC14 baseline: n = {nk} walks x 1 round: |V| ~ {:.0} (err {:.1}%), {} link queries",
        kat.estimate,
        100.0 * (kat.estimate - truth as f64).abs() / truth as f64,
        kat.queries.total()
    );
    println!(
        "\nquery saving of multi-round collision counting: {:.1}x fewer link queries",
        kat.queries.total() as f64 / ours.queries.total() as f64
    );
    println!("(the paper's Section 5.1.5 point: longer walks amortise burn-in");
    println!(" across fewer walkers whenever mixing is slow)");
    Ok(())
}
