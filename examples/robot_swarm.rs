//! Robot swarms: task-group frequency estimation and density-triggered
//! dispersion (paper Sections 5.2 and 6.3.4).
//!
//! A swarm of robots on a warehouse floor (a grid) hosts two task groups
//! — "carriers" and "chargers". Every robot estimates, purely from
//! encounter rates, what fraction of the swarm each group makes up; the
//! swarm can then rebalance task allocation, exactly the ant behaviour
//! [Gor99] that motivated the paper. A second scenario shows clustered
//! robots using their local density estimates to disperse faster.
//!
//! Run with: `cargo run --release --example robot_swarm`

use antdensity::swarm::coverage::DispersionSim;
use antdensity::swarm::robot::SwarmConfig;

fn main() {
    // ----- task-group frequency sensing ------------------------------
    let carriers = 48usize;
    let chargers = 16usize;
    let others = 64usize;
    let total = carriers + chargers + others;
    let report = SwarmConfig::new(32, total, 2048)
        .with_groups(&[carriers, chargers])
        .run(0x0B07);
    println!("swarm of {total} robots on a 32x32 floor, 2048 rounds:");
    for (g, name) in [(0usize, "carriers"), (1, "chargers")] {
        let est = report.mean_frequency(g).expect("swarm is dense enough");
        let truth = report.true_frequency(g);
        println!(
            "  {name:>9}: estimated {est:.3} of the swarm (truth {truth:.3}, err {:.1}%)",
            100.0 * (est - truth).abs() / truth
        );
    }
    println!(
        "  overall density: estimated {:.4} (truth {:.4})\n",
        report.mean_density(),
        report.true_density()
    );

    // ----- density-triggered dispersion ------------------------------
    println!("dispersion after a clustered drop-off (96 robots, one square):");
    let rounds = 150u64;
    let adaptive = DispersionSim::new(32, 96, 4, 0.25).run_clustered(rounds, 7);
    let control = DispersionSim::new(32, 96, 4, 0.25)
        .without_adaptation()
        .run_clustered(rounds, 7);
    println!("  round | spread (adaptive) | spread (plain walk)");
    for &r in &[0usize, 10, 30, 60, 100, 150] {
        println!("  {r:>5} | {:>17.3} | {:>19.3}", adaptive[r], control[r]);
    }
    println!();
    println!("Robots that sense a high encounter rate (crowding) take double");
    println!("steps until their local density estimate drops — the swarm");
    println!("spreads measurably faster than with plain random walking,");
    println!("the Section 6.3.4 idea made concrete.");
}
