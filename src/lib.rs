//! # antdensity — ant-inspired density estimation via random walks
//!
//! Umbrella crate for the full Rust reproduction of
//! *Ant-Inspired Density Estimation via Random Walks*
//! (Cameron Musco, Hsin-Hao Su, Nancy Lynch; PODC 2016 / PNAS 2017,
//! arXiv:1603.02981).
//!
//! This crate re-exports the workspace members under stable module names:
//!
//! | module | contents |
//! |---|---|
//! | [`stats`] | moments, quantiles, concentration bounds, regression |
//! | [`graphs`] | tori, rings, hypercubes, expanders, CSR graphs, exact walk distributions |
//! | [`engine`] | batched deterministic parallel simulation engine: dense occupancy, chunked stepping, scenario specs |
//! | [`walks`] | the paper's synchronous multi-agent simulation model |
//! | [`core`] | Algorithm 1 (random-walk density estimation), Algorithm 4, theory |
//! | [`netsize`] | Section 5.1: network-size estimation via colliding walks |
//! | [`swarm`] | Sections 5.2/6.3: robot swarms and sensor-network sampling |
//! | [`sweep`] | declarative parameter-grid sweeps: deterministic shards, checkpoint/resume, streaming aggregates |
//! | [`serve`] | estimation as a service: job daemon, line-delimited JSON protocol, blocking client |
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory.

pub use antdensity_core as core;
pub use antdensity_engine as engine;
pub use antdensity_graphs as graphs;
pub use antdensity_netsize as netsize;
pub use antdensity_serve as serve;
pub use antdensity_stats as stats;
pub use antdensity_swarm as swarm;
pub use antdensity_sweep as sweep;
pub use antdensity_walks as walks;
