//! End-to-end validation of the paper's headline result (Theorem 1) and
//! its companions, across crates: graphs + walks + core + stats.

use antdensity::core::algorithm1::Algorithm1;
use antdensity::core::baseline::IidBaseline;
use antdensity::core::theory::TopologyClass;
use antdensity::graphs::{Topology, Torus2d};
use antdensity::stats::quantile;

/// Pools relative errors of all agents over several seeds.
fn pooled_errors(topo: &Torus2d, agents: usize, t: u64, seeds: std::ops::Range<u64>) -> Vec<f64> {
    seeds
        .flat_map(|s| Algorithm1::new(agents, t).run(topo, s).relative_errors())
        .collect()
}

#[test]
fn theorem1_band_covers_90_percent() {
    // d = 0.125 on a 32x32 torus, t = 1024, delta = 0.1: the q90 error
    // must be below the Theorem 1 epsilon with a modest constant.
    let torus = Torus2d::new(32);
    let agents = 129; // d = 128/1024 = 0.125
    let d = 0.125;
    let t = 1024;
    let errs = pooled_errors(&torus, agents, t, 0..6);
    let q90 = quantile::quantile(&errs, 0.9);
    let bound_c1 = antdensity::stats::bounds::theorem1_epsilon(t, d, 0.1, 1.0);
    assert!(
        q90 <= bound_c1,
        "q90 error {q90} should sit below the c1 = 1 Theorem 1 bound {bound_c1}"
    );
    // and the bound is not vacuous: the error is within a factor ~10
    assert!(
        q90 > bound_c1 / 30.0,
        "bound should be in the right ballpark"
    );
}

#[test]
fn error_decays_with_time_at_sqrt_rate_modulo_log() {
    let torus = Torus2d::new(32);
    let agents = 129;
    let q90_at = |t: u64| {
        let errs = pooled_errors(&torus, agents, t, 10..14);
        quantile::quantile(&errs, 0.9)
    };
    let e_256 = q90_at(256);
    let e_4096 = q90_at(4096);
    // 16x more rounds: sqrt factor alone gives 4x; the log ratio
    // log(8192)/log(512) ~ 1.44 shaves it to ~2.8x. Accept [2, 6].
    let improvement = e_256 / e_4096;
    assert!(
        (2.0..=6.5).contains(&improvement),
        "error improvement over 16x rounds was {improvement}"
    );
}

#[test]
fn torus_within_log_factor_of_iid_baseline() {
    // Section 1.1 "nearly matches": at the same (A, d, t) the torus q90
    // error is within ~log(2t) of the complete-graph/i.i.d. error.
    let torus = Torus2d::new(32);
    let a = torus.num_nodes();
    let agents = 129;
    let t = 512;
    let torus_q90 = quantile::quantile(&pooled_errors(&torus, agents, t, 20..24), 0.9);
    let iid = IidBaseline::new(agents as u64 - 1, a, t).run(2000, 99);
    let iid_q90 = quantile::quantile(&iid.relative_errors(), 0.9);
    let gap = torus_q90 / iid_q90;
    let log2t = (2.0 * t as f64).ln();
    assert!(
        gap <= log2t,
        "torus/iid error gap {gap} should not exceed log(2t) = {log2t}"
    );
    assert!(gap >= 0.8, "torus cannot beat i.i.d. sampling: gap {gap}");
}

#[test]
fn theory_planner_rounds_suffice_empirically() {
    // Ask the theory module for a round budget, run it, verify coverage.
    // Theorem 1 requires t <= A, so the planner domain is capped at A —
    // which also means the torus must be large enough for the requested
    // accuracy to be reachable at all (side 32 is not; side 128 is).
    let torus = Torus2d::new(128); // A = 16384
    let a = torus.num_nodes();
    let d = 0.125;
    let agents = (d * a as f64) as usize + 1; // 2049
    let class = TopologyClass::Torus2d { nodes: a };
    let (eps, delta) = (0.5, 0.1);
    let t = class
        .rounds_for(eps, delta, d, a)
        .expect("torus budget must exist within t <= A");
    let errs = pooled_errors(&torus, agents, t, 30..32);
    let within = errs.iter().filter(|&&e| e <= eps).count() as f64 / errs.len() as f64;
    assert!(
        within >= 1.0 - delta,
        "planned t = {t} gave only {within} coverage at eps = {eps}"
    );
}

#[test]
fn union_bound_all_agents_simultaneously() {
    // The paper's remark after Theorem 1: with delta' = delta/n, ALL n
    // agents are accurate simultaneously whp. Check on a healthy config.
    let torus = Torus2d::new(16); // A = 256
    let agents = 65; // d = 0.25
    let t = 4096;
    let mut bad_runs = 0;
    let runs = 5;
    for s in 40..40 + runs {
        let run = Algorithm1::new(agents, t).run(&torus, s);
        // every agent within 50%?
        if run.fraction_within(0.5) < 1.0 {
            bad_runs += 1;
        }
    }
    assert!(
        bad_runs <= 1,
        "{bad_runs}/{runs} runs had some agent outside the 50% band at t = {t}"
    );
}
