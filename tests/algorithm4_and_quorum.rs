//! Integration tests for Algorithm 4 (Theorem 32) and quorum sensing,
//! plus determinism guarantees across the whole stack.

use antdensity::core::algorithm1::Algorithm1;
use antdensity::core::algorithm4::Algorithm4;
use antdensity::core::quorum::{QuorumDecision, QuorumSensor};
use antdensity::graphs::Torus2d;
use antdensity::stats::quantile;

#[test]
fn algorithm4_coverage_at_theorem32_budget() {
    // t = 3 ln(2/delta)/(d eps^2) rounds should give (1 +- eps) whp.
    let torus = Torus2d::new(256); // A = 65536
    let d = 0.2;
    let agents = (d * 65536.0) as usize + 1; // 13108
    let (eps, delta) = (0.5, 0.1);
    let t = antdensity::stats::bounds::chernoff_rounds(eps, delta, d).ceil() as u64;
    assert!(t < 256, "budget {t} must respect t < sqrt(A)");
    let mut within = 0usize;
    let mut total = 0usize;
    for s in 0..4 {
        let run = Algorithm4::new(agents, t).run(&torus, s);
        let d_true = run.true_density();
        for e in run.estimates() {
            total += 1;
            if (e - d_true).abs() <= eps * d_true {
                within += 1;
            }
        }
    }
    let coverage = within as f64 / total as f64;
    assert!(
        coverage >= 1.0 - delta,
        "coverage {coverage} below target {}",
        1.0 - delta
    );
}

#[test]
fn algorithm4_beats_algorithm1_variance_at_matched_t() {
    // Theorem 32 vs Theorem 1: no log factor. At matched t the q90 error
    // of Algorithm 4 should be no worse than Algorithm 1's.
    let torus = Torus2d::new(128);
    let agents = 1639; // d ~ 0.1
    let t = 100u64;
    let pool4: Vec<f64> = (0..4)
        .flat_map(|s| Algorithm4::new(agents, t).run(&torus, s).relative_errors())
        .collect();
    let pool1: Vec<f64> = (0..4)
        .flat_map(|s| Algorithm1::new(agents, t).run(&torus, s).relative_errors())
        .collect();
    let q4 = quantile::quantile(&pool4, 0.9);
    let q1 = quantile::quantile(&pool1, 0.9);
    assert!(
        q4 <= q1 * 1.25,
        "algorithm 4 q90 {q4} should not exceed algorithm 1 q90 {q1} meaningfully"
    );
}

#[test]
fn quorum_sensing_correct_on_both_sides() {
    let torus = Torus2d::new(24); // A = 576
                                  // above: d ~ 0.178 vs threshold 0.08
    let above = QuorumSensor::new(0.08, 0.05, 1 << 15).run(&torus, 104, 1);
    let wrong_above = above
        .iter()
        .filter(|o| o.decision == QuorumDecision::Below)
        .count();
    assert_eq!(wrong_above, 0, "no scout may vote Below at d >> threshold");
    let decided_above = above
        .iter()
        .filter(|o| o.decision == QuorumDecision::Above)
        .count();
    assert!(decided_above * 10 >= above.len() * 9);

    // below: d ~ 0.021 vs threshold 0.08
    let below = QuorumSensor::new(0.08, 0.05, 1 << 15).run(&torus, 13, 2);
    let wrong_below = below
        .iter()
        .filter(|o| o.decision == QuorumDecision::Above)
        .count();
    assert_eq!(wrong_below, 0, "no scout may vote Above at d << threshold");
}

#[test]
fn whole_stack_is_deterministic() {
    let torus = Torus2d::new(16);
    let r1 = Algorithm1::new(33, 128).run(&torus, 777);
    let r2 = Algorithm1::new(33, 128).run(&torus, 777);
    assert_eq!(r1, r2);
    let a1 = Algorithm4::new(33, 15).run(&torus, 777);
    let a2 = Algorithm4::new(33, 15).run(&torus, 777);
    assert_eq!(a1, a2);
    let q1 = QuorumSensor::new(0.1, 0.1, 256).run(&torus, 9, 777);
    let q2 = QuorumSensor::new(0.1, 0.1, 256).run(&torus, 9, 777);
    assert_eq!(q1, q2);
}

#[test]
fn paper_convention_lone_agent() {
    // Section 2.1: a single agent must return exactly 0 under both
    // algorithms (d = n/A = 0 by convention).
    let torus = Torus2d::new(64);
    let r1 = Algorithm1::new(1, 100).run(&torus, 1);
    assert_eq!(r1.estimates(), &[0.0]);
    let r4 = Algorithm4::new(1, 50).run(&torus, 1);
    assert_eq!(r4.estimates(), &[0.0]);
}
