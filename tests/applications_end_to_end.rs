//! End-to-end tests of the application pipelines: network-size
//! estimation (Section 5.1), frequency estimation with noise (Sections
//! 5.2 and 6.1), and the ring-vs-torus contrast (Section 4).

use antdensity::core::algorithm1::Algorithm1;
use antdensity::core::frequency::FrequencyEstimation;
use antdensity::core::noise::CollisionNoise;
use antdensity::graphs::{generators, spectral, Topology, Torus2d};
use antdensity::netsize::algorithm2::{Algorithm2, StartMode};
use antdensity::netsize::{burnin, degree, median, planner};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn full_netsize_pipeline_from_seed_vertex() {
    // The realistic crawl: unknown graph, one seed profile. Estimate the
    // average degree, compute burn-in from measured lambda, plan (n, t),
    // run median-boosted Algorithm 2, land within 30%.
    let mut rng = SmallRng::seed_from_u64(0xF00D);
    let g = generators::barabasi_albert(1200, 3, &mut rng).expect("generation");
    let truth = g.num_nodes() as f64;

    let deg = degree::estimate_avg_degree(&g, 3000, 5);
    assert!((deg.avg_degree - g.avg_degree()).abs() / g.avg_degree() < 0.1);

    let lambda = spectral::walk_matrix_lambda(&g, 4000, &mut rng).lambda;
    assert!(lambda < 1.0, "BA graphs are non-bipartite and connected");
    let m = burnin::recommended_burnin(&g, 0.1, Some(lambda), 0.5);

    let plan = planner::plan_for_rounds(64, 3.0, g.num_edges(), g.num_nodes(), 0.25, 0.2, m, 1.0);
    let boosted = median::median_boosted(
        Algorithm2::new(plan.walks, plan.rounds),
        &g,
        deg.avg_degree,
        StartMode::SeedWithBurnin {
            seed_vertex: 0,
            steps: m,
        },
        9,
        0x9A9A,
    );
    let rel = (boosted.estimate - truth).abs() / truth;
    assert!(
        rel < 0.3,
        "pipeline estimate {} vs truth {truth} (rel {rel})",
        boosted.estimate
    );
    // query accounting is complete
    assert_eq!(
        boosted.queries.burnin,
        9 * plan.walks as u64 * m,
        "burn-in queries must be metered for every repetition"
    );
}

#[test]
fn netsize_works_across_graph_families() {
    let mut rng = SmallRng::seed_from_u64(0xFA11);
    let families: Vec<(&str, antdensity::graphs::AdjGraph)> = vec![
        (
            "regular",
            generators::random_regular(600, 6, 500, &mut rng).expect("regular"),
        ),
        (
            "smallworld",
            generators::watts_strogatz(600, 6, 0.3, &mut rng).expect("ws"),
        ),
        (
            "erdos",
            generators::erdos_renyi_connected(600, 0.02, 50, &mut rng).expect("er"),
        ),
    ];
    for (name, g) in families {
        let boosted = median::median_boosted(
            Algorithm2::new(150, 48),
            &g,
            g.avg_degree(),
            StartMode::Stationary,
            9,
            0xF0 ^ g.num_edges(),
        );
        let rel = (boosted.estimate - 600.0).abs() / 600.0;
        assert!(
            rel < 0.3,
            "{name}: estimate {} (rel {rel})",
            boosted.estimate
        );
    }
}

#[test]
fn frequency_pipeline_with_noise_correction() {
    // Property frequency estimation under a noisy sensor, corrected.
    let torus = Torus2d::new(16); // A = 256
    let num_agents = 65; // d = 0.25
    let d = 64.0 / 256.0;
    let noise = CollisionNoise::new(0.6, 0.0);
    let runs = 8;
    let mut raw = 0.0;
    for s in 0..runs {
        raw += Algorithm1::new(num_agents, 512)
            .with_noise(noise)
            .run(&torus, s)
            .mean_estimate();
    }
    let raw_mean = raw / runs as f64;
    // raw concentrates on p*d
    assert!(
        (raw_mean - 0.6 * d).abs() < 0.02,
        "raw noisy mean {raw_mean} should be ~ {}",
        0.6 * d
    );
    let corrected = noise.correct(raw_mean);
    assert!(
        (corrected - d).abs() < 0.03,
        "corrected {corrected} should recover d = {d}"
    );

    // frequency ratio is noise-free even WITHOUT correction when both
    // counters share the sensor (the p cancels in the ratio). Verify with
    // the clean estimator as the reference.
    let freq = FrequencyEstimation::new(num_agents, 16, 1024).run(&torus, 3);
    let f = freq.mean_frequency().expect("dense enough");
    assert!(
        (f - freq.true_frequency()).abs() < 0.06,
        "frequency {f} vs truth {}",
        freq.true_frequency()
    );
}

#[test]
fn ring_needs_quadratically_more_rounds_than_torus() {
    // The operational consequence of Section 4.2: matching the torus'
    // accuracy on the ring takes far more rounds. Compare q90 errors at
    // equal budgets.
    let a = 1024u64;
    let agents = 129;
    let t = 512;
    let torus = Torus2d::new(32);
    let ring = antdensity::graphs::Ring::new(a);
    let pool = |runs: std::ops::Range<u64>, use_ring: bool| -> f64 {
        let errs: Vec<f64> = runs
            .flat_map(|s| {
                if use_ring {
                    Algorithm1::new(agents, t).run(&ring, s).relative_errors()
                } else {
                    Algorithm1::new(agents, t).run(&torus, s).relative_errors()
                }
            })
            .collect();
        antdensity::stats::quantile::quantile(&errs, 0.9)
    };
    let ring_err = pool(0..5, true);
    let torus_err = pool(0..5, false);
    assert!(
        ring_err > 1.5 * torus_err,
        "ring q90 {ring_err} should clearly exceed torus q90 {torus_err}"
    );
}
