//! Tests of the paper's *proof internals* — the intermediate lemmas on
//! the road to Theorem 1 (Figure 2's schematic):
//!
//! * Lemma 9's step-splitting argument: an m-step walk takes `Θ(m)` steps
//!   in both axes with high probability (the Chernoff step of the proof).
//! * Claim 6's conditional bound: given `Mx = mx` x-steps, the
//!   probability of any fixed x-displacement is `O(1/√(mx+1))`.
//! * Corollary 8's product structure: the two axes are independent, so
//!   the point probability is (≈) the product of the axis marginals.
//! * Lemma 12: `P[c_j ≥ 1 | W] ≤ t/A`.

use antdensity::graphs::{dist, Topology, Torus2d};
use antdensity::stats::rng::SeedSequence;
use antdensity::walks::movement::MovementModel;
use antdensity::walks::trajectory::Trajectory;
use antdensity::walks::{pairwise, parallel};

#[test]
fn lemma9_axis_steps_are_theta_m_whp() {
    // P[Mx <= m/4] should be tiny (the proof uses a Chernoff bound).
    let torus = Torus2d::new(64);
    let m = 400u64;
    let seq = SeedSequence::new(0x1E9);
    let trials = 20_000u64;
    let bad = parallel::run_trials(trials, 4, seq, |_, rng| {
        let tr = Trajectory::record(&torus, 0, m, &MovementModel::Pure, rng);
        let (mx, my) = tr.axis_step_counts(&torus);
        mx <= m / 4 || my <= m / 4
    })
    .into_iter()
    .filter(|&b| b)
    .count();
    // Chernoff: P <= 2 exp(-m/32) ~ 1e-6 at m = 400; allow generous room.
    assert!(
        (bad as f64 / trials as f64) < 1e-3,
        "axis-step deviation happened {bad}/{trials} times"
    );
}

#[test]
fn claim6_conditional_x_displacement_bound() {
    // Walk on a 1-d line (huge ring avoids wrap): after mx +-1 steps the
    // chance of any fixed displacement is <= C/sqrt(mx+1). Exact via the
    // ring's distribution evolution with A >> mx.
    let big_ring = antdensity::graphs::Ring::new(1 << 14);
    for mx in [1u64, 4, 16, 64, 256] {
        let series = dist::max_probability_series(&big_ring, 0, mx);
        let maxp = series[mx as usize];
        let bound = 1.0 / ((mx as f64 + 1.0).sqrt());
        assert!(
            maxp <= bound,
            "mx = {mx}: max point prob {maxp} above 1/sqrt(mx+1) = {bound}"
        );
        // and the bound is tight up to a constant (Stirling: ~ sqrt(2/pi))
        assert!(
            maxp >= 0.5 * bound,
            "mx = {mx}: max point prob {maxp} suspiciously far below {bound}"
        );
    }
}

#[test]
fn corollary8_axes_factorise() {
    // On the torus, P[(x,y) at round m] factorises into axis marginals
    // when conditioning on step counts; unconditionally the centre-point
    // probability is within a constant of the product of two 1-d walks'
    // centre probabilities at m/2 steps each.
    let side = 64u64;
    let torus = Torus2d::new(side);
    let ring = antdensity::graphs::Ring::new(side);
    let m = 128u64;
    let torus_return = dist::return_probability_series(&torus, 0, m)[m as usize];
    let ring_return = dist::return_probability_series(&ring, 0, m / 2)[(m / 2) as usize];
    let product = ring_return * ring_return;
    let ratio = torus_return / product;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "2-d return prob {torus_return} vs product of 1-d marginals {product} (ratio {ratio})"
    );
}

#[test]
fn lemma12_first_collision_probability() {
    // P[c_j >= 1 | W] <= t/A for any focal path W. Sample several paths,
    // estimate the at-least-one-collision probability by Monte Carlo.
    let torus = Torus2d::new(16); // A = 256
    let t = 32u64;
    let seq = SeedSequence::new(0x112);
    for path_seed in 0..4u64 {
        let mut rng = seq.rng(path_seed);
        let path = Trajectory::record(&torus, torus.node(5, 5), t, &MovementModel::Pure, &mut rng);
        let trials = 40_000u64;
        let hits = parallel::run_trials(trials, 4, seq.subsequence(path_seed), |_, rng| {
            pairwise::collision_count_against_path(&torus, path.nodes(), rng) >= 1
        })
        .into_iter()
        .filter(|&b| b)
        .count();
        let p = hits as f64 / trials as f64;
        let bound = t as f64 / torus.num_nodes() as f64;
        assert!(
            p <= bound * 1.05,
            "path {path_seed}: P[c_j >= 1 | W] = {p} exceeds t/A = {bound}"
        );
    }
}

#[test]
fn claim13_zero_collision_moment_is_tiny() {
    // Conditioned on c_j = 0, |c_bar|^k = (t/A)^k <= t/A for t <= A: the
    // trivial-but-necessary step of the moment proof, checked numerically.
    let t = 64f64;
    let a = 256f64;
    for k in 1..=6 {
        let moment = (t / a).powi(k);
        assert!(moment <= t / a + 1e-12, "k = {k}");
    }
}
