//! Cross-validation: the Monte-Carlo simulation engine against the exact
//! distribution-evolution engine, on every topology family. If these two
//! independent implementations agree, both are almost certainly right.

use antdensity::core::recollision;
use antdensity::graphs::{dist, Hypercube, Ring, Topology, Torus2d, TorusKd};
use antdensity::stats::rng::SeedSequence;
use antdensity::walks::{pairwise, parallel};

fn mc_return_curve<T: Topology + Sync>(topo: &T, start: u64, t: u64, trials: u64) -> Vec<f64> {
    let seq = SeedSequence::new(0xC0FFEE);
    let results = parallel::run_trials(trials, 4, seq, |_, rng| {
        let mut v = start;
        let mut hits = vec![false; t as usize + 1];
        hits[0] = true;
        for m in 1..=t {
            v = topo.random_neighbor(v, rng);
            hits[m as usize] = v == start;
        }
        hits
    });
    let mut counts = vec![0u64; t as usize + 1];
    for h in &results {
        for (m, &hit) in h.iter().enumerate() {
            if hit {
                counts[m] += 1;
            }
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect()
}

#[test]
fn return_probabilities_agree_on_torus() {
    let topo = Torus2d::new(8);
    let t = 16;
    let exact = dist::return_probability_series(&topo, 0, t);
    let mc = mc_return_curve(&topo, 0, t, 60_000);
    for m in 0..=t as usize {
        assert!(
            (exact[m] - mc[m]).abs() < 0.01,
            "lag {m}: exact {} vs mc {}",
            exact[m],
            mc[m]
        );
    }
}

#[test]
fn recollision_agrees_on_ring() {
    let ring = Ring::new(64);
    let t = 24;
    let exact = recollision::exact_recollision_curve(&ring, 0, t);
    let mc = recollision::mc_recollision_curve(&ring, 0, t, 60_000, 7, 4);
    for m in 0..=t as usize {
        assert!(
            (exact[m] - mc[m]).abs() < 0.012,
            "lag {m}: exact {} vs mc {}",
            exact[m],
            mc[m]
        );
    }
}

#[test]
fn recollision_agrees_on_hypercube() {
    let h = Hypercube::new(6);
    let t = 16;
    let exact = recollision::exact_recollision_curve(&h, 0, t);
    let mc = recollision::mc_recollision_curve(&h, 0, t, 60_000, 9, 4);
    for m in 0..=t as usize {
        assert!(
            (exact[m] - mc[m]).abs() < 0.012,
            "lag {m}: exact {} vs mc {}",
            exact[m],
            mc[m]
        );
    }
}

#[test]
fn recollision_agrees_on_3d_torus() {
    let t3 = TorusKd::new(3, 5);
    let t = 12;
    let exact = recollision::exact_recollision_curve(&t3, 0, t);
    let mc = recollision::mc_recollision_curve(&t3, 0, t, 60_000, 11, 4);
    for m in 0..=t as usize {
        assert!(
            (exact[m] - mc[m]).abs() < 0.012,
            "lag {m}: exact {} vs mc {}",
            exact[m],
            mc[m]
        );
    }
}

#[test]
fn visit_counts_match_expectation_from_distribution() {
    // E[visits to target] = sum over m of P[walk at target at m], with a
    // uniform start — equals t/A by stationarity. Check both identities.
    let topo = Torus2d::new(8);
    let a = topo.num_nodes() as f64;
    let t = 32u64;
    let seq = SeedSequence::new(0xBEEF);
    let trials = 80_000u64;
    let total: u64 = parallel::run_trials(trials, 4, seq, |_, rng| {
        pairwise::visit_count(&topo, 5, t, rng)
    })
    .into_iter()
    .sum();
    let mc_mean = total as f64 / trials as f64;
    assert!(
        (mc_mean - t as f64 / a).abs() < 0.02,
        "mc mean {mc_mean} vs t/A {}",
        t as f64 / a
    );
}

#[test]
fn equalization_expectation_matches_exact_sum() {
    let topo = Torus2d::new(8);
    let t = 32u64;
    let exact_mean = recollision::expected_equalizations(&topo, 0, t);
    let seq = SeedSequence::new(0xFACE);
    let trials = 80_000u64;
    let total: u64 = parallel::run_trials(trials, 4, seq, |_, rng| {
        pairwise::equalization_count(&topo, 0, t, rng)
    })
    .into_iter()
    .sum();
    let mc_mean = total as f64 / trials as f64;
    assert!(
        (mc_mean - exact_mean).abs() < 0.03,
        "mc {mc_mean} vs exact {exact_mean}"
    );
}
