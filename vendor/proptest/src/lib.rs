//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the surface its property tests use: the [`proptest!`] macro (with
//! optional `#![proptest_config(...)]`), range and tuple strategies,
//! [`prop::collection::vec`], [`prop::bool::ANY`], [`any`],
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`test_runner::TestRng`].
//!
//! Differences from upstream: cases that fail are reported with their
//! inputs but are **not shrunk**, and the per-test RNG is seeded
//! deterministically from the test name (upstream defaults to an
//! entropy seed plus a persistence file).

#![deny(missing_docs)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod test_runner {
    //! The minimal test-running machinery the [`crate::proptest!`] macro
    //! expands against.

    use super::*;

    /// Deterministic per-test RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub SmallRng);

    impl TestRng {
        /// Seeds from a test name (FNV-1a over the bytes).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(SmallRng::seed_from_u64(h))
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject(String),
        /// A `prop_assert!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Self::Reject(m) => write!(f, "input rejected: {m}"),
                Self::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Per-block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected cases before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use rand::Rng;

    /// Generates values of `Self::Value` for test cases.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident => $idx:tt),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)*)
                }
            }
        };
    }
    impl_tuple_strategy!(A => 0, B => 1);
    impl_tuple_strategy!(A => 0, B => 1, C => 2);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);

    /// Strategy for any value of a type (see [`crate::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    impl<T: rand::Standard> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.0.gen::<T>()
        }
    }
}

/// The strategy producing arbitrary values of `T`.
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`, …).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Strategy for `Vec<S::Value>` with length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// A vector whose elements come from `element` and whose length
        /// is uniform in `len`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = if self.len.start + 1 >= self.len.end {
                    self.len.start
                } else {
                    rng.0.gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        /// A fair coin.
        pub const ANY: crate::strategy::Any<bool> = crate::strategy::Any(core::marker::PhantomData);
    }
}

pub mod prelude {
    //! Everything the tests import with `use proptest::prelude::*`.

    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a proptest body (reports the failing inputs
/// without unwinding through foreign frames).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current inputs (the case is retried with fresh ones and
/// does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests. Supports the subset of upstream syntax the
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0.0..1.0f64, 1..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < cfg.cases {
                let case: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __sampled = $crate::strategy::Strategy::sample(&$strat, &mut rng);
                        __inputs.push_str(&format!(
                            "{} = {:?}; ",
                            stringify!($arg),
                            &__sampled
                        ));
                        let $arg = __sampled;
                    )*
                    let r: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) = &r {
                        panic!("proptest case {} failed: {}\n  inputs: {}", passed, msg, __inputs);
                    }
                    r
                };
                match case {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected <= cfg.max_global_rejects,
                            "too many rejected cases ({rejected})"
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(_)) => unreachable!(),
                }
            }
        }
    )*};
}
