//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the surface its benches use: [`Criterion::benchmark_group`], group
//! configuration (`sample_size`, `warm_up_time`, `measurement_time`,
//! `throughput`), `bench_function`/`bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: per sample, the closure is run in a timed batch
//! sized to the warm-up estimate; the reported figure is the median
//! per-iteration time over `sample_size` samples, printed as
//! `name ... time: [median] (throughput)` — enough to compare kernels
//! and spot regressions, without upstream's statistics machinery.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from const-folding
/// benchmark inputs/outputs away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times a closure over adaptive batches.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its median per-iteration
    /// wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(routine());
            iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / iters.max(1);

        // Sampling: split the measurement budget into `sample_size`
        // batches of equal iteration count.
        let budget_ns = self.measurement.as_nanos() as u64;
        let batch = (budget_ns / self.sample_size as u64 / per_iter.max(1)).clamp(1, 1 << 20);
        let mut samples: Vec<u64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as u64 / batch);
        }
        samples.sort_unstable();
        self.last_median = Duration::from_nanos(samples[samples.len() / 2]);
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares the units processed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            last_median: Duration::ZERO,
        };
        f(&mut b);
        self.criterion.report(&full, b.last_median, self.throughput);
        self
    }

    /// Benchmarks `f` with an explicit input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        self.benchmark_group(name.clone())
            .bench_function("", f)
            .finish();
        self
    }

    fn report(&mut self, name: &str, median: Duration, throughput: Option<Throughput>) {
        let rate = match throughput {
            Some(Throughput::Elements(n)) if !median.is_zero() => {
                format!(
                    "  thrpt: {:.3} Melem/s",
                    n as f64 / median.as_nanos() as f64 * 1e3
                )
            }
            Some(Throughput::Bytes(n)) if !median.is_zero() => {
                format!(
                    "  thrpt: {:.3} MiB/s",
                    n as f64 / median.as_nanos() as f64 * 1e9 / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("{name:<48} time: [{median:?}]{rate}");
        self.results.push((name.to_string(), median));
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("sum", 4), |b| {
            b.iter(|| (0..4u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_records() {
        let mut c = Criterion::default();
        quick(&mut c);
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].0.contains("g/sum/4"));
        assert!(c.results[0].1 > Duration::ZERO);
    }
}
