//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the exact surface it uses: [`RngCore`], [`Rng`] (with `gen`,
//! `gen_range`, `gen_bool`), [`SeedableRng`], [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64, the same generator real
//! `rand 0.8` uses for `SmallRng` on 64-bit targets), and
//! [`seq::SliceRandom`] (`shuffle`/`choose` via Fisher–Yates).
//!
//! Semantics match upstream where the workspace depends on them:
//! uniformity of `gen_range`, support bounds, determinism under
//! `seed_from_u64`. Exact bit-streams of derived quantities (floats,
//! bounded ints) may differ from upstream — nothing in this workspace
//! pins those.

#![deny(missing_docs)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that [`Rng::gen`] can produce from raw generator output.
pub trait Standard: Sized {
    /// Samples a value from the full/standard distribution of the type
    /// (`[0, 1)` for floats, all values for integers, fair for `bool`).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_tuple {
    ($($name:ident),*) => {
        impl<$($name: Standard),*> Standard for ($($name,)*) {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                ($($name::sample(rng),)*)
            }
        }
    };
}
impl_standard_tuple!(A, B);
impl_standard_tuple!(A, B, C);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // guard against rounding up to the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Unbiased uniform sample from `[0, span)` (`span > 0`) via Lemire-style
/// rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // rejection zone keeps the multiply-shift map exactly uniform
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let m = (v as u128) * (span as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion, as in
    /// upstream `rand`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 state update + finalizer, truncated to 32 bits
            // per chunk — the upstream `rand_core` expansion.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ (the algorithm upstream
    /// `rand 0.8` uses for `SmallRng` on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// Bulk generator output: fills `dest` with exactly the words
        /// `dest.len()` successive [`RngCore::next_u64`] calls would
        /// return, in order, leaving the generator in the identical
        /// residual state. The loop body is branch-free and keeps the
        /// xoshiro state in registers, so batched consumers (index
        /// fills, lane kernels) get the whole stream without per-draw
        /// call overhead.
        #[inline]
        pub fn fill_u64(&mut self, dest: &mut [u64]) {
            let mut s = self.s;
            for slot in dest.iter_mut() {
                let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                *slot = result;
            }
            self.s = s;
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start at the all-zero state
            if s.iter().all(|&w| w == 0) {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds_and_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            let v: usize = rng.gen_range(0..5);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn signed_and_inclusive_ranges() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-7..7);
            assert!((-7..7).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = SmallRng::seed_from_u64(6);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.gen_range(0..10u64);
        assert!(v < 10);
        let _: f64 = dyn_rng.gen();
        let _ = dyn_rng.gen_bool(0.5);
    }

    #[test]
    fn fill_u64_matches_sequential_next_u64() {
        for len in [0usize, 1, 7, 64, 129] {
            let mut bulk = SmallRng::seed_from_u64(42);
            let mut seq = SmallRng::seed_from_u64(42);
            let mut buf = vec![0u64; len];
            bulk.fill_u64(&mut buf);
            for (i, &w) in buf.iter().enumerate() {
                assert_eq!(w, seq.next_u64(), "len {len} word {i}");
            }
            // identical residual state
            assert_eq!(bulk.next_u64(), seq.next_u64(), "len {len} residual");
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(8);
        let _: u64 = rng.gen_range(5..5);
    }
}
