//! Property-based tests for the network-size estimation crate.

use antdensity_graphs::generators;
use antdensity_netsize::algorithm2::{Algorithm2, StartMode};
use antdensity_netsize::degree::estimate_from_positions;
use antdensity_netsize::planner::plan_for_rounds;
use antdensity_netsize::queries::QueryCount;
use antdensity_netsize::singlewalk::SingleWalk;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn algorithm2_query_accounting_is_exact(
        walks in 2usize..30,
        rounds in 1u64..30,
        burnin in 0u64..20,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(64, 4, 500, &mut rng).unwrap();
        let run = Algorithm2::new(walks, rounds).run(
            &g,
            4.0,
            StartMode::SeedWithBurnin { seed_vertex: 0, steps: burnin },
            seed,
        );
        prop_assert_eq!(run.queries.burnin, burnin * walks as u64);
        prop_assert_eq!(run.queries.walking, rounds * walks as u64);
        prop_assert!(run.estimate > 0.0);
        prop_assert!(run.weighted_collisions >= 0.0);
    }

    #[test]
    fn degree_estimate_bounded_by_extremes(
        raw_positions in prop::collection::vec(0u64..64, 1..40),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(64, 2, &mut rng).unwrap();
        let positions: Vec<u64> = raw_positions;
        let est = estimate_from_positions(&g, &positions);
        // 1/deg estimates live between 1/max_deg and 1/min_deg
        prop_assert!(est.inverse_avg_degree >= 1.0 / g.max_degree() as f64 - 1e-12);
        prop_assert!(est.inverse_avg_degree <= 1.0 / g.min_degree() as f64 + 1e-12);
        prop_assert!((est.avg_degree * est.inverse_avg_degree - 1.0).abs() < 1e-9);
    }

    #[test]
    fn planner_respects_n2t_budget(
        t in 1u64..2048,
        b in 0.1..20.0f64,
        eps in 0.05..0.9f64,
        delta in 0.05..0.9f64,
    ) {
        let plan = plan_for_rounds(t, b, 3000, 1000, eps, delta, 0, 1.0);
        let n2t = (plan.walks as f64).powi(2) * t as f64;
        let required = antdensity_stats::bounds::theorem27_n2t(
            b, 3000.0, 1000.0, eps, delta, 1.0);
        // n is the ceiling of the exact solution: n^2 t covers the budget
        prop_assert!(n2t >= required - 1e-6, "n2t {n2t} vs required {required}");
        // and is tight within (n+1)^2/n^2
        let prev = (plan.walks as f64 - 1.0).max(1.0);
        prop_assert!(prev * prev * t as f64 <= required + 2.0 * t as f64 + prev * prev * 4.0);
        prop_assert_eq!(
            plan.predicted_queries,
            plan.walks as u64 * (plan.burnin + plan.rounds)
        );
    }

    #[test]
    fn query_count_addition_commutes(
        a in any::<(u16, u16, u16)>(),
        b in any::<(u16, u16, u16)>(),
    ) {
        let qa = QueryCount { burnin: a.0 as u64, walking: a.1 as u64, degree_sampling: a.2 as u64 };
        let qb = QueryCount { burnin: b.0 as u64, walking: b.1 as u64, degree_sampling: b.2 as u64 };
        prop_assert_eq!(qa + qb, qb + qa);
        prop_assert_eq!((qa + qb).total(), qa.total() + qb.total());
    }

    #[test]
    fn singlewalk_queries_and_support(
        samples in 2usize..40,
        gap in 1u64..10,
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::random_regular(32, 4, 500, &mut rng).unwrap();
        let run = SingleWalk::new(samples, gap).run(&g, 4.0, 0, seed);
        prop_assert_eq!(run.queries.walking, samples as u64 * gap);
        prop_assert_eq!(run.samples, samples);
        prop_assert!(run.estimate > 0.0);
        // weighted collisions bounded by total pairs / min degree
        let pairs = samples as f64 * (samples as f64 - 1.0) / 2.0;
        prop_assert!(run.weighted_collisions <= pairs / g.min_degree() as f64 + 1e-9);
    }
}
