//! Algorithm 2: random-walk-based network size estimation.
//!
//! The paper's pseudocode:
//!
//! ```text
//! input: step count t, average degree deḡ, n walks w₁..w_n started from
//!        the stationary distribution
//! [c₁..c_n] := 0
//! for r = 1..t:
//!     ∀j: w_j := randomElement(Γ(w_j))
//!     ∀j: c_j := c_j + count(w_j)/deg(w_j)
//! C := deḡ·Σc_j / (n(n−1)t)
//! return Â = 1/C
//! ```
//!
//! Collisions are weighted by `1/deg` because the stationary distribution
//! visits high-degree vertices more often; the weighting debiases exactly
//! (Lemma 28: `E[C] = 1/|V|`).

use crate::burnin;
use crate::queries::QueryCount;
use antdensity_graphs::{AdjGraph, NodeId, Topology};
use antdensity_stats::rng::SeedSequence;
use std::collections::HashMap;

/// How walks obtain their starting positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartMode {
    /// Independent samples from the exact stationary distribution — the
    /// idealised setting of Theorem 27 (burn-in analysed separately).
    Stationary,
    /// All walks start at one seed vertex and burn in for the given
    /// number of steps first (the realistic crawler setting, Section
    /// 5.1.4). Burn-in steps are charged to the query meter.
    SeedWithBurnin {
        /// The known seed vertex.
        seed_vertex: NodeId,
        /// Burn-in steps before collision counting starts.
        steps: u64,
    },
}

/// The outcome of one Algorithm 2 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetSizeRun {
    /// The size estimate `Â = 1/C` (infinite if no collisions occurred).
    pub estimate: f64,
    /// The degree-weighted collision total `Σ_j c_j`.
    pub weighted_collisions: f64,
    /// Link queries spent.
    pub queries: QueryCount,
    /// Number of walks `n`.
    pub walks: usize,
    /// Rounds of collision counting `t`.
    pub rounds: u64,
}

/// Configuration for Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Algorithm2 {
    num_walks: usize,
    rounds: u64,
}

impl Algorithm2 {
    /// `num_walks` walks (`n ≥ 2`), `rounds` collision-counting steps.
    ///
    /// # Panics
    ///
    /// Panics if `num_walks < 2` (the estimator divides by `n(n−1)`) or
    /// `rounds == 0`.
    pub fn new(num_walks: usize, rounds: u64) -> Self {
        assert!(num_walks >= 2, "need at least two walks to collide");
        assert!(rounds > 0, "need at least one round");
        Self { num_walks, rounds }
    }

    /// Number of walks `n`.
    pub fn num_walks(&self) -> usize {
        self.num_walks
    }

    /// Number of counting rounds `t`.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Runs the estimator on `graph`, with `avg_degree` supplied
    /// externally (in the full pipeline, by Algorithm 3).
    ///
    /// # Panics
    ///
    /// Panics if `avg_degree <= 0` or a burn-in seed vertex is out of
    /// range.
    pub fn run(
        &self,
        graph: &AdjGraph,
        avg_degree: f64,
        start: StartMode,
        seed: u64,
    ) -> NetSizeRun {
        assert!(avg_degree > 0.0, "average degree must be positive");
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut queries = QueryCount::new();
        let mut positions: Vec<NodeId> = match start {
            StartMode::Stationary => (0..self.num_walks)
                .map(|_| graph.sample_stationary(&mut rng))
                .collect(),
            StartMode::SeedWithBurnin { seed_vertex, steps } => {
                assert!(
                    seed_vertex < graph.num_nodes(),
                    "seed vertex {seed_vertex} out of range"
                );
                let pos = burnin::burn_in(graph, seed_vertex, steps, self.num_walks, &mut rng);
                queries.burnin = steps * self.num_walks as u64;
                pos
            }
        };
        let mut weighted: f64 = 0.0;
        let mut occupancy: HashMap<NodeId, u32> = HashMap::new();
        for _ in 0..self.rounds {
            for p in positions.iter_mut() {
                *p = graph.random_neighbor(*p, &mut rng);
            }
            queries.walking += self.num_walks as u64;
            occupancy.clear();
            for &p in &positions {
                *occupancy.entry(p).or_insert(0) += 1;
            }
            for (&node, &occ) in occupancy.iter() {
                if occ >= 2 {
                    // each of the occ walkers counts (occ-1) others,
                    // weighted by 1/deg(node)
                    weighted += (occ as f64) * (occ as f64 - 1.0) / graph.degree(node) as f64;
                }
            }
        }
        let n = self.num_walks as f64;
        let c = avg_degree * weighted / (n * (n - 1.0) * self.rounds as f64);
        let estimate = if c > 0.0 { 1.0 / c } else { f64::INFINITY };
        NetSizeRun {
            estimate,
            weighted_collisions: weighted,
            queries,
            walks: self.num_walks,
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn unbiased_inverse_size_on_regular_graph() {
        // Lemma 28: E[C] = 1/|V|. Average C over many runs on a graph of
        // known size.
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::random_regular(256, 6, 300, &mut rng).unwrap();
        let alg = Algorithm2::new(64, 32);
        let runs = 40;
        let mean_c: f64 = (0..runs)
            .map(|s| {
                let r = alg.run(&g, 6.0, StartMode::Stationary, s);
                let n = r.walks as f64;
                6.0 * r.weighted_collisions / (n * (n - 1.0) * r.rounds as f64)
            })
            .sum::<f64>()
            / runs as f64;
        let truth = 1.0 / 256.0;
        assert!(
            (mean_c - truth).abs() / truth < 0.15,
            "mean C {mean_c} vs 1/|V| {truth}"
        );
    }

    #[test]
    fn estimates_size_of_irregular_graph() {
        // Barabasi-Albert: heavy-tailed degrees stress the 1/deg weights.
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(500, 3, &mut rng).unwrap();
        let alg = Algorithm2::new(150, 80);
        // median across seeds for robustness
        let mut ests: Vec<f64> = (0..15)
            .map(|s| {
                alg.run(&g, g.avg_degree(), StartMode::Stationary, s)
                    .estimate
            })
            .collect();
        ests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = ests[ests.len() / 2];
        assert!(
            (med - 500.0).abs() / 500.0 < 0.3,
            "median estimate {med} should be near 500"
        );
    }

    #[test]
    fn query_accounting_stationary() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::random_regular(64, 4, 300, &mut rng).unwrap();
        let run = Algorithm2::new(10, 7).run(&g, 4.0, StartMode::Stationary, 1);
        assert_eq!(run.queries.burnin, 0);
        assert_eq!(run.queries.walking, 70);
        assert_eq!(run.queries.total(), 70);
    }

    #[test]
    fn query_accounting_with_burnin() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::random_regular(64, 4, 300, &mut rng).unwrap();
        let run = Algorithm2::new(10, 7).run(
            &g,
            4.0,
            StartMode::SeedWithBurnin {
                seed_vertex: 0,
                steps: 25,
            },
            1,
        );
        assert_eq!(run.queries.burnin, 250);
        assert_eq!(run.queries.walking, 70);
    }

    #[test]
    fn no_collisions_give_infinite_estimate() {
        // 2 walks, 1 round, big graph: collisions are very unlikely.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::random_regular(2048, 4, 300, &mut rng).unwrap();
        let run = Algorithm2::new(2, 1).run(&g, 4.0, StartMode::Stationary, 7);
        assert!(run.estimate.is_infinite() || run.estimate > 0.0);
    }

    #[test]
    fn more_walks_tighten_the_estimate() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::random_regular(512, 6, 300, &mut rng).unwrap();
        let spread = |walks: usize| {
            let ests: Vec<f64> = (0..12)
                .map(|s| {
                    Algorithm2::new(walks, 40)
                        .run(&g, 6.0, StartMode::Stationary, 100 + s)
                        .estimate
                })
                .filter(|e| e.is_finite())
                .collect();
            let m = ests.iter().sum::<f64>() / ests.len() as f64;
            (ests.iter().map(|e| (e - m) * (e - m)).sum::<f64>() / ests.len() as f64).sqrt()
        };
        let narrow = spread(128);
        let wide = spread(24);
        assert!(
            narrow < wide,
            "128-walk spread {narrow} should beat 24-walk spread {wide}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = generators::random_regular(128, 4, 300, &mut rng).unwrap();
        let alg = Algorithm2::new(16, 8);
        assert_eq!(
            alg.run(&g, 4.0, StartMode::Stationary, 3),
            alg.run(&g, 4.0, StartMode::Stationary, 3)
        );
    }

    #[test]
    #[should_panic(expected = "at least two walks")]
    fn rejects_single_walk() {
        let _ = Algorithm2::new(1, 10);
    }
}
