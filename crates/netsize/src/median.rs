//! Median-of-estimates boosting for network-size estimation.
//!
//! Theorem 27's guarantee comes from Chebyshev's inequality, so its
//! failure probability enters *linearly* (`1/δ`). Section 5.1.2: "we can
//! simply perform log(1/δ) estimates each with failure probability 1/3
//! and return the median, which will be correct with probability 1 − δ."

use crate::algorithm2::{Algorithm2, NetSizeRun, StartMode};
use crate::queries::QueryCount;
use antdensity_graphs::AdjGraph;
use antdensity_stats::mom;

/// The result of a median-boosted run.
#[derive(Debug, Clone, PartialEq)]
pub struct BoostedRun {
    /// The boosted estimate (median of the repetition estimates).
    pub estimate: f64,
    /// Each repetition's raw result.
    pub repetitions: Vec<NetSizeRun>,
    /// Total queries across repetitions.
    pub queries: QueryCount,
}

/// Runs `Algorithm 2` `repetitions` times with independent seeds and
/// returns the median estimate. Infinite estimates (no collisions) are
/// retained — the median absorbs them as long as a majority of
/// repetitions succeed, which is exactly the boosting argument.
///
/// # Panics
///
/// Panics if `repetitions == 0`.
pub fn median_boosted(
    alg: Algorithm2,
    graph: &AdjGraph,
    avg_degree: f64,
    start: StartMode,
    repetitions: usize,
    seed: u64,
) -> BoostedRun {
    assert!(repetitions > 0, "need at least one repetition");
    let seq = antdensity_stats::rng::SeedSequence::new(seed);
    let mut runs = Vec::with_capacity(repetitions);
    let mut queries = QueryCount::new();
    for r in 0..repetitions {
        let run = alg.run(graph, avg_degree, start, seq.derive(r as u64));
        queries.add(&run.queries);
        runs.push(run);
    }
    // median over (possibly infinite) estimates: sort manually since
    // mom::median rejects NaN but infinities are fine.
    let mut ests: Vec<f64> = runs.iter().map(|r| r.estimate).collect();
    ests.sort_by(|a, b| a.partial_cmp(b).expect("estimates are never NaN"));
    let estimate = if ests.len() % 2 == 1 {
        ests[ests.len() / 2]
    } else {
        let hi = ests[ests.len() / 2];
        let lo = ests[ests.len() / 2 - 1];
        if hi.is_infinite() {
            lo
        } else {
            (lo + hi) / 2.0
        }
    };
    BoostedRun {
        estimate,
        repetitions: runs,
        queries,
    }
}

/// Repetition count for a target failure probability, re-exported from
/// the stats substrate (`p_fail = 1/3` per the paper's remark).
pub fn repetitions_for(delta: f64) -> usize {
    mom::repetitions_for(1.0 / 3.0, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn boosted_estimate_is_stable() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::random_regular(256, 6, 300, &mut rng).unwrap();
        let alg = Algorithm2::new(48, 32);
        let boosted = median_boosted(alg, &g, 6.0, StartMode::Stationary, 9, 7);
        assert!(
            (boosted.estimate - 256.0).abs() / 256.0 < 0.35,
            "boosted estimate {}",
            boosted.estimate
        );
        assert_eq!(boosted.repetitions.len(), 9);
    }

    #[test]
    fn median_resists_infinite_outliers() {
        // tiny walk counts on a big graph: some repetitions see zero
        // collisions (infinite estimates) but the median survives.
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::random_regular(512, 4, 300, &mut rng).unwrap();
        let alg = Algorithm2::new(24, 24);
        let boosted = median_boosted(alg, &g, 4.0, StartMode::Stationary, 11, 3);
        assert!(
            boosted.estimate.is_finite(),
            "median must dodge infinite repetitions"
        );
    }

    #[test]
    fn queries_accumulate_across_repetitions() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::random_regular(64, 4, 300, &mut rng).unwrap();
        let alg = Algorithm2::new(10, 5);
        let boosted = median_boosted(alg, &g, 4.0, StartMode::Stationary, 4, 1);
        assert_eq!(boosted.queries.walking, 4 * 10 * 5);
    }

    #[test]
    fn repetition_count_grows_with_confidence() {
        assert!(repetitions_for(0.001) > repetitions_for(0.1));
        assert!(repetitions_for(0.1) % 2 == 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::random_regular(128, 4, 300, &mut rng).unwrap();
        let alg = Algorithm2::new(16, 8);
        let a = median_boosted(alg, &g, 4.0, StartMode::Stationary, 5, 11);
        let b = median_boosted(alg, &g, 4.0, StartMode::Stationary, 5, 11);
        assert_eq!(a, b);
    }
}
