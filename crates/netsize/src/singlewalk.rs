//! Single-walk network-size estimation (the \[LL12\]/\[KBM12\] approach the
//! paper contrasts with in Section 5.1: "One approach is to run a single
//! random walk and count repeat node visits").
//!
//! One walk takes `k` thinned samples (every `gap` steps); colliding
//! sample pairs, degree-weighted, estimate `Σ_v π(v)²`-style mass and
//! hence `|V|` by the same algebra as Algorithm 2:
//! for stationary independent samples,
//! `E[1/deg · 1{Yᵢ = Yⱼ}] = Σ_v π(v)²/deg(v) = 1/(deḡ·|V|)`,
//! so `Â = P/(deḡ·C_w)` with `P` the number of pairs and `C_w` the
//! degree-weighted collision count.
//!
//! The thinning `gap` controls the dependence between samples: small
//! gaps are cheap (fewer link queries per sample) but correlated
//! (under-estimating `|V|` because nearby samples re-collide), large gaps
//! approach independence. The bias-vs-cost trade-off is exactly the
//! local-mixing phenomenon the paper analyses, and is measured in the
//! harness.

use crate::queries::QueryCount;
use antdensity_graphs::{AdjGraph, NodeId, Topology};
use antdensity_stats::rng::SeedSequence;

/// The outcome of a single-walk estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleWalkRun {
    /// The size estimate `Â` (infinite if no sample pairs collided).
    pub estimate: f64,
    /// Number of thinned samples taken.
    pub samples: usize,
    /// Degree-weighted collision mass over sample pairs.
    pub weighted_collisions: f64,
    /// Link queries spent (`samples · gap` walk steps).
    pub queries: QueryCount,
}

/// Configuration: `samples` thinned observations, one every `gap` steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleWalk {
    samples: usize,
    gap: u64,
}

impl SingleWalk {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2` (pairs are needed) or `gap == 0`.
    pub fn new(samples: usize, gap: u64) -> Self {
        assert!(samples >= 2, "need at least two samples to collide");
        assert!(gap > 0, "thinning gap must be positive");
        Self { samples, gap }
    }

    /// Number of samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Thinning gap.
    pub fn gap(&self) -> u64 {
        self.gap
    }

    /// Runs the estimator from `start` (pass a stationary sample for the
    /// idealised analysis, or any seed vertex plus enough initial gap in
    /// the realistic one).
    ///
    /// # Panics
    ///
    /// Panics if `avg_degree <= 0` or `start` is out of range.
    pub fn run(
        &self,
        graph: &AdjGraph,
        avg_degree: f64,
        start: NodeId,
        seed: u64,
    ) -> SingleWalkRun {
        assert!(avg_degree > 0.0, "average degree must be positive");
        assert!(start < graph.num_nodes(), "start node out of range");
        let seq = SeedSequence::new(seed);
        let mut rng = seq.rng(0);
        let mut v = start;
        let mut observed: Vec<NodeId> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            for _ in 0..self.gap {
                v = graph.random_neighbor(v, &mut rng);
            }
            observed.push(v);
        }
        // weighted collision mass over all pairs: group samples by node.
        let mut by_node: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        for &u in &observed {
            *by_node.entry(u).or_insert(0) += 1;
        }
        let weighted: f64 = by_node
            .iter()
            .filter(|(_, &c)| c >= 2)
            .map(|(&u, &c)| {
                let cf = c as f64;
                cf * (cf - 1.0) / 2.0 / graph.degree(u) as f64
            })
            .sum();
        let pairs = self.samples as f64 * (self.samples as f64 - 1.0) / 2.0;
        let estimate = if weighted > 0.0 {
            pairs / (avg_degree * weighted)
        } else {
            f64::INFINITY
        };
        SingleWalkRun {
            estimate,
            samples: self.samples,
            weighted_collisions: weighted,
            queries: QueryCount {
                burnin: 0,
                walking: self.samples as u64 * self.gap,
                degree_sampling: 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    }

    #[test]
    fn recovers_size_with_large_gap() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::random_regular(256, 8, 500, &mut rng).unwrap();
        // gap 32 >> mixing time of an 8-regular expander on 256 nodes
        let sw = SingleWalk::new(200, 32);
        let ests: Vec<f64> = (0..15)
            .map(|s| sw.run(&g, 8.0, g.sample_stationary(&mut rng), s).estimate)
            .filter(|e| e.is_finite())
            .collect();
        assert!(ests.len() >= 12);
        let med = median(ests);
        assert!(
            (med - 256.0).abs() / 256.0 < 0.35,
            "median estimate {med} for |V| = 256"
        );
    }

    #[test]
    fn tiny_gap_biases_low() {
        // gap 1 samples are heavily correlated: nearby samples re-collide,
        // inflating the collision mass and deflating the estimate.
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::random_regular(256, 8, 500, &mut rng).unwrap();
        let tight = SingleWalk::new(200, 1);
        let ests: Vec<f64> = (0..15)
            .map(|s| {
                tight
                    .run(&g, 8.0, g.sample_stationary(&mut rng), s)
                    .estimate
            })
            .filter(|e| e.is_finite())
            .collect();
        let med = median(ests);
        assert!(
            med < 256.0 * 0.8,
            "gap-1 estimate {med} should under-shoot |V| = 256"
        );
    }

    #[test]
    fn query_accounting() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::random_regular(64, 4, 500, &mut rng).unwrap();
        let run = SingleWalk::new(10, 7).run(&g, 4.0, 0, 1);
        assert_eq!(run.queries.walking, 70);
        assert_eq!(run.queries.total(), 70);
        assert_eq!(run.samples, 10);
    }

    #[test]
    fn no_collisions_give_infinity() {
        // 2 samples on a big graph almost surely differ.
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::random_regular(2048, 4, 500, &mut rng).unwrap();
        let run = SingleWalk::new(2, 50).run(&g, 4.0, 0, 5);
        assert!(run.estimate.is_infinite() || run.estimate > 0.0);
    }

    #[test]
    fn works_on_irregular_graphs() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::barabasi_albert(400, 3, &mut rng).unwrap();
        let sw = SingleWalk::new(250, 24);
        let ests: Vec<f64> = (0..15)
            .map(|s| {
                sw.run(&g, g.avg_degree(), g.sample_stationary(&mut rng), s)
                    .estimate
            })
            .filter(|e| e.is_finite())
            .collect();
        let med = median(ests);
        assert!(
            (med - 400.0).abs() / 400.0 < 0.4,
            "median estimate {med} for |V| = 400"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(6);
        let g = generators::random_regular(64, 4, 500, &mut rng).unwrap();
        let sw = SingleWalk::new(20, 5);
        assert_eq!(sw.run(&g, 4.0, 0, 9), sw.run(&g, 4.0, 0, 9));
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn one_sample_rejected() {
        let _ = SingleWalk::new(1, 5);
    }
}
