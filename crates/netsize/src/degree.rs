//! Algorithm 3: average-degree estimation by inverse-degree sampling.
//!
//! Algorithm 2 needs `deḡ = 2|E|/|V|` as an input. The paper estimates
//! `1/deḡ` from stationary samples: a stationary walk sits at `v` with
//! probability `deg(v)/2|E|`, so `E[1/deg(w)] = |V|/2|E| = 1/deḡ`
//! exactly. Theorem 31: `n = Θ(deḡ/(deg_min·ε²·δ))` samples give a
//! `(1±ε)` estimate w.p. `1−δ`.

use antdensity_graphs::{AdjGraph, NodeId, Topology};
use antdensity_stats::rng::SeedSequence;

/// Result of an average-degree estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeEstimate {
    /// Estimate `D` of the *inverse* average degree `1/deḡ`.
    pub inverse_avg_degree: f64,
    /// The implied average-degree estimate `1/D` (infinite if `D = 0`,
    /// which cannot happen for valid graphs).
    pub avg_degree: f64,
    /// Samples used.
    pub samples: usize,
}

/// Estimates `1/deḡ` from explicit stationary positions — the paper's
/// `D := Σ 1/deg(wⱼ) / n`.
///
/// # Panics
///
/// Panics if `positions` is empty or contains an out-of-range node.
pub fn estimate_from_positions(graph: &AdjGraph, positions: &[NodeId]) -> DegreeEstimate {
    assert!(!positions.is_empty(), "need at least one sample");
    let sum: f64 = positions
        .iter()
        .map(|&v| 1.0 / graph.degree(v) as f64)
        .sum();
    let d = sum / positions.len() as f64;
    DegreeEstimate {
        inverse_avg_degree: d,
        avg_degree: 1.0 / d,
        samples: positions.len(),
    }
}

/// Draws `samples` stationary positions and estimates `1/deḡ`.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn estimate_avg_degree(graph: &AdjGraph, samples: usize, seed: u64) -> DegreeEstimate {
    assert!(samples > 0, "need at least one sample");
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng(0);
    let positions: Vec<NodeId> = (0..samples)
        .map(|_| graph.sample_stationary(&mut rng))
        .collect();
    estimate_from_positions(graph, &positions)
}

/// Theorem 31's sample budget `n = c·deḡ/(deg_min·ε²·δ)`.
pub fn required_samples(graph: &AdjGraph, eps: f64, delta: f64, c: f64) -> usize {
    antdensity_stats::bounds::theorem31_walks(
        graph.avg_degree(),
        graph.min_degree() as f64,
        eps,
        delta,
        c,
    )
    .ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_regular_graph_any_sample() {
        // On a d-regular graph every sample contributes 1/d: the estimate
        // is exact with a single sample.
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::random_regular(64, 6, 300, &mut rng).unwrap();
        let est = estimate_avg_degree(&g, 1, 0);
        assert!((est.avg_degree - 6.0).abs() < 1e-12);
    }

    #[test]
    fn unbiased_on_irregular_graph() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::barabasi_albert(300, 3, &mut rng).unwrap();
        let truth = 1.0 / g.avg_degree();
        let est = estimate_avg_degree(&g, 200_000, 1);
        assert!(
            (est.inverse_avg_degree - truth).abs() / truth < 0.02,
            "estimate {} vs truth {truth}",
            est.inverse_avg_degree
        );
    }

    #[test]
    fn theorem31_budget_achieves_accuracy() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::watts_strogatz(200, 6, 0.2, &mut rng).unwrap();
        let (eps, delta) = (0.1, 0.1);
        let n = required_samples(&g, eps, delta, 1.0);
        let truth = 1.0 / g.avg_degree();
        // run 50 independent estimates; at least (1-delta) within (1±eps)
        let ok = (0..50)
            .filter(|&s| {
                let est = estimate_avg_degree(&g, n, s);
                (est.inverse_avg_degree - truth).abs() <= eps * truth
            })
            .count();
        assert!(ok >= 45, "only {ok}/50 estimates within band (n = {n})");
    }

    #[test]
    fn estimate_from_explicit_positions() {
        let g = generators::star_graph(5); // deg(0) = 4, deg(leaf) = 1
        let est = estimate_from_positions(&g, &[0, 1, 2]);
        let expected = (0.25 + 1.0 + 1.0) / 3.0;
        assert!((est.inverse_avg_degree - expected).abs() < 1e-12);
        assert_eq!(est.samples, 3);
    }

    #[test]
    fn required_samples_scale_with_degree_skew() {
        let mut rng = SmallRng::seed_from_u64(4);
        let regular = generators::random_regular(100, 4, 300, &mut rng).unwrap();
        let skewed = generators::barabasi_albert(100, 2, &mut rng).unwrap();
        let n_reg = required_samples(&regular, 0.1, 0.1, 1.0);
        let n_skew = required_samples(&skewed, 0.1, 0.1, 1.0);
        assert!(
            n_skew > n_reg,
            "skewed graphs need more samples: {n_skew} vs {n_reg}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = generators::barabasi_albert(50, 2, &mut rng).unwrap();
        assert_eq!(
            estimate_avg_degree(&g, 100, 9),
            estimate_avg_degree(&g, 100, 9)
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_positions_rejected() {
        let g = generators::cycle_graph(4);
        let _ = estimate_from_positions(&g, &[]);
    }
}
