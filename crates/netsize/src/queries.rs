//! Link-query accounting.
//!
//! The paper's cost model for network-size estimation: "the dominant cost
//! is typically in link queries to the network" — every walker step
//! requires one neighborhood lookup, and burn-in steps count like any
//! other. [`QueryCount`] tracks the three phases separately so
//! experiments can reproduce the Section 5.1.5 comparison.

/// Link queries spent by a network-size estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCount {
    /// Queries spent walking during burn-in.
    pub burnin: u64,
    /// Queries spent during the collision-counting phase.
    pub walking: u64,
    /// Queries spent sampling degrees (Algorithm 3).
    pub degree_sampling: u64,
}

impl QueryCount {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total queries across all phases.
    pub fn total(&self) -> u64 {
        self.burnin + self.walking + self.degree_sampling
    }

    /// Accumulates another counter.
    pub fn add(&mut self, other: &QueryCount) {
        self.burnin += other.burnin;
        self.walking += other.walking;
        self.degree_sampling += other.degree_sampling;
    }
}

impl std::ops::Add for QueryCount {
    type Output = QueryCount;
    fn add(self, rhs: QueryCount) -> QueryCount {
        QueryCount {
            burnin: self.burnin + rhs.burnin,
            walking: self.walking + rhs.walking,
            degree_sampling: self.degree_sampling + rhs.degree_sampling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let q = QueryCount {
            burnin: 10,
            walking: 20,
            degree_sampling: 5,
        };
        assert_eq!(q.total(), 35);
    }

    #[test]
    fn add_combines_fields() {
        let mut a = QueryCount {
            burnin: 1,
            walking: 2,
            degree_sampling: 3,
        };
        let b = QueryCount {
            burnin: 10,
            walking: 20,
            degree_sampling: 30,
        };
        a.add(&b);
        assert_eq!(a.burnin, 11);
        assert_eq!(a.walking, 22);
        assert_eq!(a.degree_sampling, 33);
        let c = a + b;
        assert_eq!(c.total(), a.total() + b.total());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(QueryCount::new().total(), 0);
    }
}
