//! Burn-in: from a seed vertex to (approximate) stationarity.
//!
//! Section 5.1.4 of the paper: random walks cannot start at uniformly
//! random nodes (sampling nodes is the very problem being solved), so all
//! walks start at a known seed vertex and walk `M = O(log(|E|/δ)/(1−λ))`
//! burn-in steps, after which their locations are within total-variation
//! distance `δ` of stationarity and Theorem 27 applies with failure
//! probability `2δ`.

use antdensity_graphs::spectral;
use antdensity_graphs::{AdjGraph, NodeId, Topology, WalkDistribution};
use rand::RngCore;

/// Walks `num_walks` independent walkers from `seed_vertex` for `steps`
/// rounds; returns their final positions.
pub fn burn_in(
    graph: &AdjGraph,
    seed_vertex: NodeId,
    steps: u64,
    num_walks: usize,
    rng: &mut dyn RngCore,
) -> Vec<NodeId> {
    assert!(
        seed_vertex < graph.num_nodes(),
        "seed vertex {seed_vertex} out of range"
    );
    (0..num_walks)
        .map(|_| {
            let mut v = seed_vertex;
            for _ in 0..steps {
                v = graph.random_neighbor(v, rng);
            }
            v
        })
        .collect()
}

/// The paper's burn-in length `M = c·ln(|E|/δ)/(1−λ)` (Section 5.1.4),
/// with λ measured by power iteration if not supplied.
///
/// # Panics
///
/// Panics if `delta ∉ (0,1)` or the measured/supplied λ is ≥ 1 (bipartite
/// or disconnected graphs never mix — burn-in is undefined there).
pub fn recommended_burnin(graph: &AdjGraph, delta: f64, lambda: Option<f64>, c: f64) -> u64 {
    let lambda = lambda.unwrap_or_else(|| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5EED_B112);
        spectral::walk_matrix_lambda(graph, 4000, &mut rng).lambda
    });
    assert!(
        lambda < 1.0,
        "graph does not mix (lambda = {lambda}); burn-in undefined"
    );
    antdensity_stats::bounds::burnin_rounds(lambda, graph.num_edges(), delta, c).ceil() as u64
}

/// Exact total-variation distance to stationarity after each of
/// `0..=max_steps` steps from `seed_vertex` — the burn-in diagnostic
/// curve (computed by distribution evolution, no sampling noise).
pub fn tv_profile(graph: &AdjGraph, seed_vertex: NodeId, max_steps: u64) -> Vec<f64> {
    let stationary = WalkDistribution::stationary(graph);
    let mut dist = WalkDistribution::point(graph, seed_vertex);
    let mut out = Vec::with_capacity(max_steps as usize + 1);
    out.push(dist.tv_distance(&stationary));
    for _ in 0..max_steps {
        dist.step(graph);
        out.push(dist.tv_distance(&stationary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::generators;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn burn_in_positions_approach_stationarity() {
        // On a regular graph stationarity is uniform: after a long burn-in
        // the seed vertex should hold ~1/|V| of the walkers.
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::random_regular(64, 6, 300, &mut rng).unwrap();
        let walks = 20_000;
        let pos = burn_in(&g, 0, 50, walks, &mut rng);
        let at_seed = pos.iter().filter(|&&v| v == 0).count() as f64 / walks as f64;
        assert!(
            (at_seed - 1.0 / 64.0).abs() < 0.01,
            "seed occupancy {at_seed} should be ~1/64"
        );
    }

    #[test]
    fn zero_steps_stay_at_seed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = generators::cycle_graph(11);
        let pos = burn_in(&g, 4, 0, 5, &mut rng);
        assert!(pos.iter().all(|&v| v == 4));
    }

    #[test]
    fn tv_profile_decreases_on_odd_cycle() {
        let g = generators::cycle_graph(9);
        let profile = tv_profile(&g, 0, 300);
        assert!(profile[0] > 0.8, "point mass starts far from uniform");
        assert!(profile[300] < 0.01, "long profile reaches stationarity");
        // monotone on the whole (allow tiny periodic wiggle)
        assert!(profile[100] < profile[10]);
    }

    #[test]
    fn tv_profile_stalls_on_bipartite() {
        let g = generators::star_graph(8);
        let profile = tv_profile(&g, 1, 100);
        // parity oscillation: TV never approaches 0
        assert!(profile[100] > 0.3, "bipartite TV {}", profile[100]);
    }

    #[test]
    fn recommended_burnin_matches_measured_mixing() {
        // The Section 5.1.4 bound must be at least the measured
        // eps-mixing time at the matching accuracy (with constant 1).
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::random_regular(128, 8, 300, &mut rng).unwrap();
        let delta = 0.01;
        let m = recommended_burnin(&g, delta, None, 1.0);
        let profile = tv_profile(&g, 0, m);
        assert!(
            profile[m as usize] <= delta * 2.0,
            "TV after recommended burn-in {} is {}",
            m,
            profile[m as usize]
        );
    }

    #[test]
    fn recommended_burnin_longer_for_slower_graphs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let fast = generators::random_regular(128, 8, 300, &mut rng).unwrap();
        let slow = generators::watts_strogatz(128, 4, 0.05, &mut rng).unwrap();
        let m_fast = recommended_burnin(&fast, 0.05, None, 1.0);
        let m_slow = recommended_burnin(&slow, 0.05, None, 1.0);
        assert!(
            m_slow > m_fast,
            "slow graph burn-in {m_slow} should exceed fast {m_fast}"
        );
    }

    #[test]
    #[should_panic(expected = "does not mix")]
    fn bipartite_burnin_rejected() {
        let g = generators::star_graph(6);
        let _ = recommended_burnin(&g, 0.05, None, 1.0);
    }
}
