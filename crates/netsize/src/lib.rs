//! Section 5.1 of the paper: social-network size estimation via
//! colliding random walks.
//!
//! One cannot count the nodes of a massive network directly — only
//! simulate random walks by following links. The paper's Algorithm 2 runs
//! `n` walks for `t` rounds, counts degree-weighted collisions
//! `C = deḡ·Σcⱼ/(n(n−1)t)`, and returns `Â = 1/C`; Theorem 27 shows
//! `n²t = Θ((B(t)·deḡ + 1)/(ε²δ)·|V|)` suffices. Increasing `t` trades
//! walks for steps, beating the collisions-in-one-round approach of
//! Katzir et al. \[KLSC14\] whenever burn-in (mixing) is expensive —
//! Section 5.1.5 works the comparison on k-dimensional tori.
//!
//! Components:
//!
//! * [`algorithm2`] — the multi-round collision estimator (Algorithm 2).
//! * [`degree`] — Algorithm 3: inverse-degree sampling for `deḡ`
//!   (Theorem 31).
//! * [`burnin`] — seed-vertex starts, burn-in length planning (Section
//!   5.1.4), exact TV-distance profiles.
//! * [`katzir`] — the KLSC14 baseline: collisions in a single
//!   post-burn-in round.
//! * [`queries`] — link-query accounting (the paper's cost model: every
//!   walker step is one neighborhood query).
//! * [`planner`] — solves Theorem 27 for `(n, t)` and predicts total
//!   query cost, including the ours-vs-KLSC14 crossover.
//! * [`median`] — median-of-estimates boosting (Section 5.1.2's remark).
//!
//! # Example
//!
//! ```
//! use antdensity_graphs::generators;
//! use antdensity_netsize::algorithm2::{Algorithm2, StartMode};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(5);
//! let g = generators::random_regular(400, 6, 300, &mut rng).unwrap();
//! let run = Algorithm2::new(120, 60).run(&g, g.avg_degree(), StartMode::Stationary, 1);
//! let err = (run.estimate - 400.0).abs() / 400.0;
//! assert!(err < 0.5, "estimate {} should be within 50% of 400", run.estimate);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod algorithm2;
pub mod burnin;
pub mod degree;
pub mod katzir;
pub mod median;
pub mod planner;
pub mod queries;
pub mod singlewalk;

pub use algorithm2::{Algorithm2, NetSizeRun, StartMode};
pub use planner::NetsizePlan;
pub use queries::QueryCount;
