//! Planning `(n, t)` from Theorem 27 and predicting query costs.
//!
//! Theorem 27: `n²t = Θ((B(t)·|E| + |V|)/(ε²δ))` suffices for a `(1±ε)`
//! size estimate w.p. `1−δ`. Given a burn-in length `M`, total queries
//! are `n·(M + t)`; increasing `t` lets `n` shrink like `1/√t`, so when
//! `M` is large the optimum moves toward long walks — the Section 5.1.5
//! effect (`O(|V|^{(k+1)/2k})` queries for ours vs `Θ(|V|^{2/k+1/2})` for
//! KLSC14 on the k-dimensional torus).

use crate::queries::QueryCount;

/// A planned configuration for Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetsizePlan {
    /// Number of walks `n`.
    pub walks: usize,
    /// Collision-counting rounds `t`.
    pub rounds: u64,
    /// Burn-in steps per walk `M`.
    pub burnin: u64,
    /// Predicted total link queries `n·(M + t)`.
    pub predicted_queries: u64,
}

impl NetsizePlan {
    /// Predicted query breakdown.
    pub fn predicted_query_count(&self) -> QueryCount {
        QueryCount {
            burnin: self.walks as u64 * self.burnin,
            walking: self.walks as u64 * self.rounds,
            degree_sampling: 0,
        }
    }
}

/// Plans `n` for a *fixed* `t` from Theorem 27:
/// `n = √(c·(B(t)·|E| + |V|)/(ε²δ·t))` (at least 2).
///
/// `b_of_t` supplies the graph's re-collision sum `B(t)` — use
/// `antdensity_core::theory::TopologyClass::b_sum` for the analysed
/// families or a measured value for arbitrary graphs.
///
/// # Panics
///
/// Panics if `t == 0`, sizes are zero, or `eps`/`delta` are outside
/// `(0,1)`.
#[allow(clippy::too_many_arguments)] // mirrors Theorem 27's parameter list
pub fn plan_for_rounds(
    t: u64,
    b_of_t: f64,
    edges: u64,
    vertices: u64,
    eps: f64,
    delta: f64,
    burnin: u64,
    c: f64,
) -> NetsizePlan {
    assert!(t > 0, "rounds must be positive");
    assert!(edges > 0 && vertices > 0, "graph sizes must be positive");
    let n2t = antdensity_stats::bounds::theorem27_n2t(
        b_of_t,
        edges as f64,
        vertices as f64,
        eps,
        delta,
        c,
    );
    let n = ((n2t / t as f64).sqrt().ceil() as usize).max(2);
    NetsizePlan {
        walks: n,
        rounds: t,
        burnin,
        predicted_queries: n as u64 * (burnin + t),
    }
}

/// Sweeps `t` over powers of two up to `t_max` and returns the plan with
/// the fewest predicted queries. This is the paper's trade-off: long
/// walks amortise burn-in across fewer walkers.
///
/// # Panics
///
/// Same conditions as [`plan_for_rounds`]; additionally `t_max == 0`.
#[allow(clippy::too_many_arguments)] // mirrors Theorem 27's parameter list
pub fn plan_optimal(
    b_of: &dyn Fn(u64) -> f64,
    edges: u64,
    vertices: u64,
    eps: f64,
    delta: f64,
    burnin: u64,
    t_max: u64,
    c: f64,
) -> NetsizePlan {
    assert!(t_max > 0, "t_max must be positive");
    let mut best: Option<NetsizePlan> = None;
    let mut t = 1u64;
    while t <= t_max {
        let plan = plan_for_rounds(t, b_of(t), edges, vertices, eps, delta, burnin, c);
        if best.is_none_or(|b| plan.predicted_queries < b.predicted_queries) {
            best = Some(plan);
        }
        t = t.saturating_mul(2);
    }
    best.expect("at least one t considered")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// B(t) for a 3-d torus-like graph: bounded constant.
    fn b_const(_t: u64) -> f64 {
        1.2
    }

    #[test]
    fn plan_walks_shrink_with_rounds() {
        let p1 = plan_for_rounds(1, 1.2, 3000, 1000, 0.2, 0.2, 0, 1.0);
        let p64 = plan_for_rounds(64, 1.2, 3000, 1000, 0.2, 0.2, 0, 1.0);
        assert!(p64.walks < p1.walks);
        // n ~ 1/sqrt(t): 64x rounds -> ~8x fewer walks
        let ratio = p1.walks as f64 / p64.walks as f64;
        assert!((ratio - 8.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn optimal_plan_uses_long_walks_when_burnin_expensive() {
        let cheap = plan_optimal(&b_const, 3000, 1000, 0.2, 0.2, 0, 1 << 16, 1.0);
        let pricey = plan_optimal(&b_const, 3000, 1000, 0.2, 0.2, 5000, 1 << 16, 1.0);
        assert!(
            pricey.rounds > cheap.rounds,
            "expensive burn-in should push t up: {} vs {}",
            pricey.rounds,
            cheap.rounds
        );
        assert!(pricey.predicted_queries >= cheap.predicted_queries);
    }

    #[test]
    fn no_burnin_favours_single_round() {
        // With M = 0 and constant B, queries n(M+t) ~ sqrt(n2t * t):
        // minimised at t = 1 (mirroring KLSC14's choice when mixing is
        // free).
        let p = plan_optimal(&b_const, 3000, 1000, 0.2, 0.2, 0, 1 << 16, 1.0);
        assert_eq!(p.rounds, 1);
    }

    #[test]
    fn predicted_queries_add_up() {
        let p = plan_for_rounds(16, 2.0, 500, 250, 0.3, 0.2, 10, 1.0);
        assert_eq!(p.predicted_queries, p.walks as u64 * (p.burnin + p.rounds));
        let qc = p.predicted_query_count();
        assert_eq!(qc.total(), p.predicted_queries);
    }

    #[test]
    fn tighter_accuracy_needs_more_walks() {
        let loose = plan_for_rounds(16, 1.0, 3000, 1000, 0.3, 0.2, 0, 1.0);
        let tight = plan_for_rounds(16, 1.0, 3000, 1000, 0.1, 0.2, 0, 1.0);
        assert!(tight.walks > 2 * loose.walks);
    }

    #[test]
    fn torus_b_log_growth_still_plannable() {
        // 2-d-torus-like B(t) = ln(2t): planner still returns something
        // sensible and monotone in burn-in.
        let b_log = |t: u64| (2.0 * t as f64).ln();
        let p = plan_optimal(&b_log, 20_000, 10_000, 0.2, 0.2, 1000, 1 << 20, 1.0);
        assert!(p.rounds >= 64, "rounds {}", p.rounds);
        assert!(p.walks >= 2);
    }

    #[test]
    #[should_panic(expected = "rounds must be positive")]
    fn zero_rounds_rejected() {
        let _ = plan_for_rounds(0, 1.0, 10, 10, 0.1, 0.1, 0, 1.0);
    }
}
