//! The KLSC14 baseline (Katzir, Liberty, Somekh, Cosma: "Estimating sizes
//! of social networks via biased sampling").
//!
//! Their estimator halts walks immediately after burn-in and counts
//! degree-weighted collisions in that single final round; the paper's
//! Algorithm 2 generalises it to `t` counting rounds. With `t = 1` and a
//! matched query budget the two coincide, so this module is a thin,
//! faithfully-named wrapper plus the sample-size requirement of
//! Section 5.1.5's comparison:
//! `n = Θ(|V|·deḡ/(ε²δ·√(Σ deg(v)²)))`.

use crate::algorithm2::{Algorithm2, NetSizeRun, StartMode};
use antdensity_graphs::{AdjGraph, Topology};

/// The KLSC14 single-round collision estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Katzir {
    num_walks: usize,
}

impl Katzir {
    /// Creates the baseline with `num_walks ≥ 2` walks.
    ///
    /// # Panics
    ///
    /// Panics if `num_walks < 2`.
    pub fn new(num_walks: usize) -> Self {
        assert!(num_walks >= 2, "need at least two walks to collide");
        Self { num_walks }
    }

    /// Number of walks.
    pub fn num_walks(&self) -> usize {
        self.num_walks
    }

    /// Runs the baseline: burn-in (or stationary start), then one
    /// collision-counting round.
    pub fn run(
        &self,
        graph: &AdjGraph,
        avg_degree: f64,
        start: StartMode,
        seed: u64,
    ) -> NetSizeRun {
        Algorithm2::new(self.num_walks, 1).run(graph, avg_degree, start, seed)
    }

    /// The walk budget KLSC14 needs for a `(1±ε)` estimate w.p. `1−δ`
    /// ("for reasonable node degrees they require
    /// `n = Θ(|V|·deḡ/(ε²δ·√Σdeg²))`", Section 5.1.5).
    pub fn required_walks(graph: &AdjGraph, eps: f64, delta: f64, c: f64) -> usize {
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
        let v = graph.num_nodes() as f64;
        let n =
            c * v * graph.avg_degree() / (eps * eps * delta * graph.sum_degree_squared().sqrt());
        n.ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::generators;
    use antdensity_graphs::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn katzir_estimates_size_with_enough_walks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = generators::random_regular(256, 6, 300, &mut rng).unwrap();
        // regular graph: sqrt(sum deg^2) = deg * sqrt(V); requirement
        // n ~ V * d / (eps^2 delta d sqrt(V)) = sqrt(V)/(eps^2 delta).
        let n = Katzir::required_walks(&g, 0.3, 0.2, 1.0);
        let k = Katzir::new(n);
        let mut ests: Vec<f64> = (0..15)
            .map(|s| k.run(&g, 6.0, StartMode::Stationary, s).estimate)
            .filter(|e| e.is_finite())
            .collect();
        assert!(ests.len() >= 10, "most runs must see collisions");
        ests.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = ests[ests.len() / 2];
        assert!(
            (med - 256.0).abs() / 256.0 < 0.5,
            "median estimate {med} for |V| = 256"
        );
    }

    #[test]
    fn required_walks_grow_with_graph_size() {
        let mut rng = SmallRng::seed_from_u64(2);
        let small = generators::random_regular(64, 4, 300, &mut rng).unwrap();
        let large = generators::random_regular(1024, 4, 300, &mut rng).unwrap();
        let n_small = Katzir::required_walks(&small, 0.2, 0.2, 1.0);
        let n_large = Katzir::required_walks(&large, 0.2, 0.2, 1.0);
        // regular graph: requirement scales as sqrt(|V|): x16 nodes -> x4
        let ratio = n_large as f64 / n_small as f64;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "ratio {ratio} should be ~4 for 16x nodes"
        );
    }

    #[test]
    fn single_round_uses_one_query_per_walk() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = generators::random_regular(64, 4, 300, &mut rng).unwrap();
        let run = Katzir::new(30).run(&g, 4.0, StartMode::Stationary, 1);
        assert_eq!(run.queries.walking, 30);
        assert_eq!(run.rounds, 1);
    }

    #[test]
    fn burnin_dominates_katzir_queries() {
        // The motivation for Algorithm 2: with slow mixing, KLSC14 pays
        // the burn-in for every one of its many walks.
        let mut rng = SmallRng::seed_from_u64(4);
        let g = generators::watts_strogatz(256, 4, 0.1, &mut rng).unwrap();
        let run = Katzir::new(50).run(
            &g,
            g.avg_degree(),
            StartMode::SeedWithBurnin {
                seed_vertex: 0,
                steps: 200,
            },
            1,
        );
        assert!(run.queries.burnin > 100 * run.queries.walking);
        let _ = g.num_nodes();
    }

    #[test]
    #[should_panic(expected = "at least two walks")]
    fn rejects_one_walk() {
        let _ = Katzir::new(1);
    }
}
