//! A minimal JSON value model for the line-delimited job protocol.
//!
//! The workspace is offline (no serde), so the wire format gets the
//! same treatment as every other artifact: a hand-rolled, deterministic
//! encoder plus a strict recursive-descent parser. Objects preserve
//! insertion order (they are key/value vectors, not maps), so encoding
//! is byte-deterministic — the property the whole service layer leans
//! on. The parser is strict where it matters for corruption rejection:
//! unbalanced structure, trailing garbage, bad escapes, and truncated
//! input are all errors, never best-effort guesses.

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Stored as `f64`: integers are exact up to 2^53, which
    /// covers every count the protocol carries (job ids, cell counts,
    /// row numbers). Seeds ride inside spec *text*, never as JSON
    /// numbers, so they keep full 64-bit range.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Looks up `key` in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 9e15 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Encodes compactly (no insignificant whitespace). Deterministic:
    /// same value, same bytes.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => encode_num(*v, out),
            Json::Str(s) => encode_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_str(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses exactly one JSON value spanning the whole input
    /// (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first syntax error,
    /// including truncation and trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Numbers print as integers when they are one (`3`, not `3.0`) and
/// otherwise via Rust's shortest-round-trip `f64` formatting. Non-
/// finite values have no JSON spelling; they encode as `null`.
fn encode_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= 9e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn encode_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_str(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {} (want `{lit}`)", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, pos)?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        if (0xD800..0xDC00).contains(&first) {
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".to_string());
                            }
                            *pos += 2;
                            let second = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err("bad low surrogate".to_string());
                            }
                            let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            out.push(char::from_u32(c).ok_or("bad surrogate pair")?);
                        } else {
                            out.push(char::from_u32(first).ok_or("bad \\u escape")?);
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => return Err("raw control byte in string".to_string()),
            Some(_) => {
                // Copy one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses the 4 hex digits after `\u`, leaving `pos` on the last one.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let text = std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?;
    let v = u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))?;
    *pos = end - 1;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let value = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("yes".into(), Json::Bool(true)),
            ("int".into(), Json::num(42.0)),
            ("neg".into(), Json::num(-7.0)),
            ("frac".into(), Json::num(0.125)),
            (
                "text".into(),
                Json::str("spec\nline two\t\"quoted\" \\ back"),
            ),
            (
                "arr".into(),
                Json::Arr(vec![Json::num(1.0), Json::str("x"), Json::Null]),
            ),
            ("obj".into(), Json::Obj(vec![("k".into(), Json::num(3.0))])),
        ]);
        let text = value.encode();
        assert_eq!(Json::parse(&text).unwrap(), value);
        // encoding is deterministic
        assert_eq!(Json::parse(&text).unwrap().encode(), text);
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::num(3.0).encode(), "3");
        assert_eq!(Json::num(-3.0).encode(), "-3");
        assert_eq!(Json::num(0.5).encode(), "0.5");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn accessors_extract_typed_fields() {
        let obj = Json::parse(r#"{"job": 7, "name": "smoke", "ok": true, "x": null}"#).unwrap();
        assert_eq!(obj.get("job").and_then(Json::as_u64), Some(7));
        assert_eq!(obj.get("name").and_then(Json::as_str), Some("smoke"));
        assert_eq!(obj.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(obj.get("x"), Some(&Json::Null));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Json::num(1.5).as_u64(), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""a\u00e9b""#).unwrap(), Json::str("a\u{e9}b"));
        // raw UTF-8 passes through untouched
        assert_eq!(Json::parse("\"a\u{e9}b\"").unwrap(), Json::str("a\u{e9}b"));
        // surrogate pair (U+1F41C, an ant)
        assert_eq!(Json::parse(r#""🐜""#).unwrap(), Json::str("\u{1F41C}"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_corruption() {
        for bad in [
            "",
            "{",
            "[1,2",
            "{\"a\": }",
            "{\"a\": 1,}",
            "tru",
            "\"unterminated",
            "\"bad \\q escape\"",
            "{\"a\": 1} trailing",
            "1e",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn every_single_byte_truncation_is_rejected() {
        let text = Json::Obj(vec![
            ("op".into(), Json::str("submit")),
            ("spec".into(), Json::str("name = s\ntrials = 1")),
            ("quick".into(), Json::Bool(true)),
        ])
        .encode();
        for cut in 1..text.len() {
            assert!(
                Json::parse(&text[..cut]).is_err(),
                "accepted truncation at {cut}"
            );
        }
    }
}
