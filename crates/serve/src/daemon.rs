//! The daemon: connection handling, admission control, job registry,
//! and executor threads.
//!
//! ## Job lifecycle
//!
//! ```text
//!          submit                pop            terminal
//! (wire) ─────────▶ Queued ─────────▶ Running ─────────▶ Done
//!                     │                  │          ╲───▶ Failed
//!                     │ cancel           │ cancel   ╲───▶ Cancelled
//!                     ▼                  ▼
//!                 Cancelled     (flag polled between
//!                (immediate)     shards → Cancelled)
//! ```
//!
//! Admission happens entirely at submit time: the spec is parsed and
//! resolved ([`SweepJob::validate`]) and the bounded queue is checked
//! under one lock, so a job that gets an `accepted` event will run —
//! the only later failures are runner I/O. Rejected submits carry the
//! exact error text the CLI would print for the same spec.
//!
//! ## Determinism
//!
//! Executors share the process-global worker pool, and any number of
//! them may interleave: each shard of each job derives its RNG streams
//! from the job's own resolved spec, so concurrent jobs cannot perturb
//! one another's bytes. The terminal `done` event carries the full
//! report JSON/CSV — byte-identical to what `repro sweep` writes for
//! the equivalent spec — which is what the service property suite and
//! the CI smoke job `cmp` against sequential runs.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

use antdensity_sweep::dist::{run_sweep_distributed_observed, DistOptions, Transport};
use antdensity_sweep::runner::SweepOptions;
use antdensity_sweep::{build_report, build_row, SweepJob, ValidatedJob};
use antdensity_telemetry::registry::LazyCounter;
use antdensity_telemetry::span::SpanMetric;

use crate::json::Json;
use crate::request::{Event, Request, Submit, PROTOCOL};

static JOBS_SUBMITTED: LazyCounter = LazyCounter::new("serve.jobs_submitted");
static JOBS_REJECTED: LazyCounter = LazyCounter::new("serve.jobs_rejected");
static JOBS_COMPLETED: LazyCounter = LazyCounter::new("serve.jobs_completed");
static JOBS_FAILED: LazyCounter = LazyCounter::new("serve.jobs_failed");
static JOBS_CANCELLED: LazyCounter = LazyCounter::new("serve.jobs_cancelled");
static ROWS_STREAMED: LazyCounter = LazyCounter::new("serve.rows_streamed");
static JOB_SPAN: SpanMetric = SpanMetric::new("serve.job");

/// Daemon tuning knobs. Everything here is wall-clock / capacity
/// policy; none of it can change result bytes.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum jobs waiting in the queue; submits beyond this are
    /// rejected (admission control), never silently dropped.
    pub max_queue: usize,
    /// Executor threads — jobs running concurrently. They share the
    /// process-global worker pool.
    pub executors: usize,
    /// Worker threads each job asks the shared pool for.
    pub job_workers: usize,
    /// When set, run each job's shards on the distributed runtime with
    /// this many child-process workers instead of in-process.
    pub dist_workers: Option<usize>,
    /// Shard result cache shared by every executor (`repro serve
    /// --cache DIR`): repeated or grid-overlapping client specs hit
    /// instead of recomputing. Can never change result bytes — cached
    /// blobs are verified and fall back to recompute.
    pub cache: Option<Arc<antdensity_sweep::ShardCache>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_queue: 64,
            executors: 2,
            job_workers: 0, // 0 = the pool's own default
            dist_workers: None,
            cache: None,
        }
    }
}

/// A job's position in the lifecycle state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Registry entry for one admitted job.
#[derive(Debug)]
struct JobEntry {
    job: SweepJob,
    validated: ValidatedJob,
    state: JobState,
    /// Polled by the runner between shards; set by `cancel`.
    cancel: Arc<AtomicBool>,
    /// Rows streamed so far.
    rows: u64,
    /// Shards completed so far.
    shards_done: usize,
    /// Total shards in the plan.
    shards: usize,
    /// The submitting connection's writer; dropped at terminal state
    /// so writer threads shut down once their jobs finish. A closed
    /// connection makes sends fail silently — the job still runs.
    outbox: Option<mpsc::Sender<String>>,
}

/// Mutable daemon state, under one mutex.
#[derive(Debug, Default)]
struct Registry {
    next_id: u64,
    accepting: bool,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    running: usize,
    queue_peak: usize,
}

/// Shared between the acceptor, connection threads, and executors.
#[derive(Debug)]
struct ServerState {
    cfg: ServeConfig,
    inner: Mutex<Registry>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Bound address, used to self-connect and wake the acceptor on
    /// shutdown; `None` in stdio mode.
    local_addr: Option<SocketAddr>,
}

/// A running daemon bound to a TCP address.
///
/// Dropping the handle does *not* stop the daemon; call
/// [`Server::shutdown`] (or have a client send the `shutdown` op) and
/// then [`Server::wait`].
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:4710`, port `0` for ephemeral)
    /// and spawns the acceptor and executor threads.
    ///
    /// # Errors
    ///
    /// Bind failures, as displayable text.
    pub fn bind(addr: &str, cfg: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let state = Arc::new(ServerState {
            cfg,
            inner: Mutex::new(Registry {
                accepting: true,
                ..Registry::default()
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            local_addr: Some(local),
        });
        let mut threads = Vec::new();
        for _ in 0..state.cfg.executors.max(1) {
            let st = Arc::clone(&state);
            threads.push(thread::spawn(move || executor_loop(&st)));
        }
        {
            let st = Arc::clone(&state);
            threads.push(thread::spawn(move || acceptor_loop(&st, &listener)));
        }
        Ok(Server {
            state,
            addr: local,
            threads,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins a graceful shutdown: new submits are rejected, the queue
    /// drains, running jobs finish.
    pub fn shutdown(&self) {
        begin_shutdown(&self.state);
    }

    /// Blocks until every daemon thread has exited (i.e. after a
    /// shutdown has drained the queue).
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Serves a single session over stdin/stdout — `repro serve --stdio`.
/// Returns once the client sends `shutdown` or closes stdin, after
/// running jobs drain.
///
/// # Errors
///
/// Propagates stdin read failures; a closed stdout just ends the
/// session.
pub fn run_stdio(cfg: ServeConfig) -> Result<(), String> {
    let state = Arc::new(ServerState {
        cfg,
        inner: Mutex::new(Registry {
            accepting: true,
            ..Registry::default()
        }),
        work: Condvar::new(),
        shutdown: AtomicBool::new(false),
        local_addr: None,
    });
    let mut executors = Vec::new();
    for _ in 0..state.cfg.executors.max(1) {
        let st = Arc::clone(&state);
        executors.push(thread::spawn(move || executor_loop(&st)));
    }
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let stdout = std::io::stdout();
        for line in rx {
            let mut out = stdout.lock();
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                break;
            }
        }
    });
    let _ = tx.send(
        Event::Hello {
            protocol: PROTOCOL.to_string(),
        }
        .to_line(),
    );
    let stdin = std::io::stdin();
    let mut result = Ok(());
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                result = Err(format!("stdin: {e}"));
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&state, &line, &tx);
        let stop = matches!(reply, Some(Event::Bye));
        if let Some(reply) = reply {
            let _ = tx.send(reply.to_line());
        }
        if stop {
            break;
        }
    }
    begin_shutdown(&state);
    for t in executors {
        let _ = t.join();
    }
    drop(tx);
    let _ = writer.join();
    result
}

fn begin_shutdown(state: &Arc<ServerState>) {
    {
        let mut reg = state.inner.lock().expect("serve registry poisoned");
        reg.accepting = false;
    }
    state.shutdown.store(true, Ordering::SeqCst);
    state.work.notify_all();
    // Wake the acceptor out of its blocking accept.
    if let Some(addr) = state.local_addr {
        let _ = TcpStream::connect(addr);
    }
}

fn acceptor_loop(state: &Arc<ServerState>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let st = Arc::clone(state);
        thread::spawn(move || handle_conn(&st, stream));
    }
}

fn handle_conn(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let mut out = write_half;
        for line in rx {
            if out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .is_err()
            {
                break;
            }
        }
    });
    let _ = tx.send(
        Event::Hello {
            protocol: PROTOCOL.to_string(),
        }
        .to_line(),
    );
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(state, &line, &tx);
        let stop = matches!(reply, Some(Event::Bye));
        if let Some(reply) = reply {
            let _ = tx.send(reply.to_line());
        }
        if stop {
            break;
        }
    }
    // The writer drains until every sender is gone: this connection's
    // handle (now) plus any outbox clone held by a still-running job
    // (dropped at its terminal event).
    drop(tx);
    let _ = writer.join();
}

/// Dispatches one request line. `Some(event)` is a direct reply for
/// the connection thread to send; submit replies `None` because it
/// must put its `accepted` event on the outbox *before* the executor
/// can race a row past it (streamed row/terminal events travel via
/// the job outbox).
fn handle_line(state: &Arc<ServerState>, line: &str, tx: &mpsc::Sender<String>) -> Option<Event> {
    match Request::parse_line(line) {
        Err(reason) => Some(Event::Error { reason }),
        Ok(Request::Hello) => Some(Event::Hello {
            protocol: PROTOCOL.to_string(),
        }),
        Ok(Request::Submit(sub)) => {
            submit(state, &sub, tx);
            None
        }
        Ok(Request::Status { job }) => Some(status(state, job)),
        Ok(Request::Cancel { job }) => Some(cancel(state, job)),
        Ok(Request::Metrics) => Some(metrics_event(state)),
        Ok(Request::Shutdown) => {
            begin_shutdown(state);
            Some(Event::Bye)
        }
    }
}

fn submit(state: &Arc<ServerState>, sub: &Submit, tx: &mpsc::Sender<String>) {
    JOBS_SUBMITTED.incr();
    let reject = |reason: String| {
        JOBS_REJECTED.incr();
        let _ = tx.send(Event::Rejected { reason }.to_line());
    };
    // Validate outside the lock — parsing a spec is pure.
    let validated = match sub.job.validate() {
        Ok(v) => v,
        Err(e) => return reject(e.to_string()),
    };
    let mut reg = state.inner.lock().expect("serve registry poisoned");
    if !reg.accepting {
        return reject("daemon is shutting down".to_string());
    }
    if reg.queue.len() >= state.cfg.max_queue {
        return reject(format!(
            "queue full ({} of {} slots taken)",
            reg.queue.len(),
            state.cfg.max_queue
        ));
    }
    let id = reg.next_id;
    reg.next_id += 1;
    let name = validated.resolved.name.clone();
    let cells = validated.resolved.cells.len();
    let shards = validated.resolved.fused.len();
    reg.jobs.insert(
        id,
        JobEntry {
            job: sub.job.clone(),
            validated,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            rows: 0,
            shards_done: 0,
            shards,
            outbox: Some(tx.clone()),
        },
    );
    // The accepted event goes on the outbox before the executor is
    // woken, so a client never sees a job's rows before its id.
    let _ = tx.send(
        Event::Accepted {
            job: id,
            name,
            cells,
            shards,
        }
        .to_line(),
    );
    reg.queue.push_back(id);
    reg.queue_peak = reg.queue_peak.max(reg.queue.len());
    state.work.notify_one();
}

fn status(state: &Arc<ServerState>, id: u64) -> Event {
    let reg = state.inner.lock().expect("serve registry poisoned");
    match reg.jobs.get(&id) {
        None => Event::Error {
            reason: format!("unknown job {id}"),
        },
        Some(e) => Event::Status {
            job: id,
            state: e.state.name().to_string(),
            rows: e.rows,
            shards_done: e.shards_done,
            shards: e.shards,
        },
    }
}

fn cancel(state: &Arc<ServerState>, id: u64) -> Event {
    let mut reg = state.inner.lock().expect("serve registry poisoned");
    let Some(entry) = reg.jobs.get_mut(&id) else {
        return Event::Error {
            reason: format!("unknown job {id}"),
        };
    };
    entry.cancel.store(true, Ordering::SeqCst);
    match entry.state {
        JobState::Queued => {
            entry.state = JobState::Cancelled;
            entry.outbox = None;
            let rows = entry.rows;
            reg.queue.retain(|&q| q != id);
            JOBS_CANCELLED.incr();
            Event::Cancelled { job: id, rows }
        }
        // Running: the flag is polled between shards; the terminal
        // `cancelled` event arrives via the outbox. Terminal states
        // just echo where the job ended up.
        s => Event::Status {
            job: id,
            state: s.name().to_string(),
            rows: entry.rows,
            shards_done: entry.shards_done,
            shards: entry.shards,
        },
    }
}

fn metrics_event(state: &Arc<ServerState>) -> Event {
    let (depth, running, peak, by_state) = {
        let reg = state.inner.lock().expect("serve registry poisoned");
        let mut by_state = [0u64; 5];
        for e in reg.jobs.values() {
            by_state[e.state as usize] += 1;
        }
        (reg.queue.len(), reg.running, reg.queue_peak, by_state)
    };
    let jobs = Json::Obj(
        [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ]
        .iter()
        .map(|s| {
            (
                s.name().to_string(),
                Json::num(by_state[*s as usize] as f64),
            )
        })
        .collect(),
    );
    let snap = antdensity_telemetry::registry::snapshot();
    let counters = Json::Obj(
        snap.counters
            .into_iter()
            .map(|(name, v)| (name, Json::num(v as f64)))
            .collect(),
    );
    Event::Metrics(Json::Obj(vec![
        ("queue_depth".to_string(), Json::num(depth as f64)),
        ("running".to_string(), Json::num(running as f64)),
        ("queue_peak".to_string(), Json::num(peak as f64)),
        ("jobs".to_string(), jobs),
        ("counters".to_string(), counters),
    ]))
}

fn executor_loop(state: &Arc<ServerState>) {
    loop {
        let id = {
            let mut reg = state.inner.lock().expect("serve registry poisoned");
            loop {
                if let Some(id) = reg.queue.pop_front() {
                    break id;
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                reg = state.work.wait(reg).expect("serve registry poisoned");
            }
        };
        execute(state, id);
    }
}

/// Runs one admitted job to a terminal state, streaming rows through
/// its outbox.
fn execute(state: &Arc<ServerState>, id: u64) {
    let (job, validated, cancel, outbox) = {
        let mut reg = state.inner.lock().expect("serve registry poisoned");
        let Some(entry) = reg.jobs.get_mut(&id) else {
            return;
        };
        // Cancelled-while-queued jobs are pulled off the queue by
        // `cancel`, but a pop can race the retain; skip defensively.
        if entry.state != JobState::Queued {
            return;
        }
        entry.state = JobState::Running;
        reg.running += 1;
        let e = reg.jobs.get(&id).expect("entry just touched");
        (
            e.job.clone(),
            e.validated.clone(),
            Arc::clone(&e.cancel),
            e.outbox.clone(),
        )
    };
    let send = |ev: Event| {
        if let Some(tx) = &outbox {
            let _ = tx.send(ev.to_line());
        }
    };

    let mut span = JOB_SPAN.start();
    span.arg("shards", validated.resolved.fused.len() as f64);
    let mut on_shard = |resolved: &antdensity_sweep::spec::ResolvedSweep,
                        _shard: usize,
                        cells: &[(usize, antdensity_sweep::CellAggregate)]|
     -> bool {
        for (cell_idx, agg) in cells {
            send(Event::row(id, &build_row(resolved, *cell_idx, agg)));
        }
        ROWS_STREAMED.add(cells.len() as u64);
        {
            let mut reg = state.inner.lock().expect("serve registry poisoned");
            if let Some(e) = reg.jobs.get_mut(&id) {
                e.rows += cells.len() as u64;
                e.shards_done += 1;
            }
        }
        !cancel.load(Ordering::SeqCst)
    };

    let cache = state.cfg.cache.clone();
    let result = match state.cfg.dist_workers {
        Some(workers) if workers > 0 => {
            let opts = SweepOptions {
                quick: job.quick,
                fuse: job.fuse,
                workers: state.cfg.job_workers,
                checkpoint_every: 1,
                cache,
                ..SweepOptions::default()
            };
            let dopts = DistOptions {
                transport: Transport::Children { workers },
                spec_text: Some(job.effective_spec_text()),
                ..DistOptions::sim(workers, antdensity_sweep::dist::FaultPlan::none())
            };
            run_sweep_distributed_observed(&validated.spec, &opts, &dopts, &mut on_shard)
                .map(|(outcome, _stats)| outcome)
                .map_err(|e| e.to_string())
        }
        _ => validated.run_streaming_with(&job, state.cfg.job_workers, cache, &mut on_shard),
    };
    drop(span);

    let mut reg = state.inner.lock().expect("serve registry poisoned");
    reg.running -= 1;
    let Some(entry) = reg.jobs.get_mut(&id) else {
        return;
    };
    match result {
        Err(reason) => {
            entry.state = JobState::Failed;
            JOBS_FAILED.incr();
            send(Event::Failed { job: id, reason });
        }
        Ok(outcome) => {
            if !outcome.complete && cancel.load(Ordering::SeqCst) {
                entry.state = JobState::Cancelled;
                JOBS_CANCELLED.incr();
                send(Event::Cancelled {
                    job: id,
                    rows: entry.rows,
                });
            } else {
                entry.state = JobState::Done;
                JOBS_COMPLETED.incr();
                let report = build_report(&outcome);
                send(Event::Done {
                    job: id,
                    complete: outcome.complete,
                    report_json: report.to_json(),
                    report_csv: report.to_csv(),
                });
            }
        }
    }
    entry.outbox = None;
}
