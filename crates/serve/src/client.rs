//! A blocking protocol client: connect, submit a batch, demux the
//! interleaved event stream into per-job results.
//!
//! Used by the `repro serve-submit` CLI, the `serve-bench` load
//! generator, and the service property suite — all three consume the
//! same [`JobResult`], so "what the client saw" means one thing
//! everywhere.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::request::{Event, Request, Submit, PROTOCOL};

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// What one submitted job came to, as seen from the client side.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The daemon's job id.
    pub job: u64,
    /// The resolved sweep's name (from the `accepted` event) — what
    /// the CLI would use in `SWEEP_<name>.{json,csv}` filenames.
    pub name: String,
    /// Terminal state: `done`, `failed`, or `cancelled`.
    pub state: String,
    /// Row events received, in arrival order.
    pub rows: Vec<Event>,
    /// `SWEEP_<name>.json` bytes (empty unless `done`).
    pub report_json: String,
    /// `SWEEP_<name>.csv` bytes (empty unless `done`).
    pub report_csv: String,
    /// Failure reason (empty unless `failed`).
    pub reason: String,
}

impl Client {
    /// Connects and verifies the hello handshake's protocol version.
    ///
    /// # Errors
    ///
    /// Connection failures, a malformed greeting, or a protocol
    /// mismatch.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        match client.read_event()? {
            Event::Hello { protocol } if protocol == PROTOCOL => Ok(client),
            Event::Hello { protocol } => Err(format!(
                "protocol mismatch: server speaks `{protocol}`, client `{PROTOCOL}`"
            )),
            other => Err(format!("expected hello, got {}", other.to_line())),
        }
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, req: &Request) -> Result<(), String> {
        self.writer
            .write_all(req.to_line().as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    }

    /// Reads the next event line (blocking).
    ///
    /// # Errors
    ///
    /// EOF, socket read failures, or an unparseable line.
    pub fn read_event(&mut self) -> Result<Event, String> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self
                .reader
                .read_line(&mut line)
                .map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed".to_string());
            }
            if line.trim().is_empty() {
                continue;
            }
            return Event::parse_line(line.trim_end_matches('\n'));
        }
    }

    /// Submits one job and returns its `accepted` id. Only valid when
    /// no other job of this connection is still streaming (its rows
    /// would interleave with the reply); inside a batch, use
    /// [`Client::run_batch`], which demuxes.
    ///
    /// # Errors
    ///
    /// Transport failures, a `rejected` event (with the daemon's
    /// reason), or an unexpected reply.
    pub fn submit(&mut self, submit: Submit) -> Result<u64, String> {
        self.send(&Request::Submit(submit))?;
        match self.read_event()? {
            Event::Accepted { job, .. } => Ok(job),
            Event::Rejected { reason } => Err(format!("rejected: {reason}")),
            other => Err(format!("expected accepted, got {}", other.to_line())),
        }
    }

    /// Submits `jobs` up front, then reads the interleaved stream —
    /// accepts arrive in submit order, rows and terminal events in
    /// whatever order the executors produce them — until every job
    /// reaches a terminal event. Results come back in submit order.
    ///
    /// # Errors
    ///
    /// Transport failures or any submit being rejected.
    pub fn run_batch(&mut self, jobs: Vec<Submit>) -> Result<Vec<JobResult>, String> {
        let total = jobs.len();
        for sub in jobs {
            self.send(&Request::Submit(sub))?;
        }
        let mut results: Vec<JobResult> = Vec::with_capacity(total);
        let mut accepted = 0usize;
        let mut open = total;
        while open > 0 {
            let ev = self.read_event()?;
            match &ev {
                Event::Accepted { job, name, .. } => {
                    if accepted >= total {
                        return Err("more accepts than submits".to_string());
                    }
                    accepted += 1;
                    results.push(JobResult {
                        job: *job,
                        name: name.clone(),
                        state: String::new(),
                        rows: Vec::new(),
                        report_json: String::new(),
                        report_csv: String::new(),
                        reason: String::new(),
                    });
                    continue;
                }
                Event::Rejected { reason } => {
                    return Err(format!("rejected: {reason}"));
                }
                _ => {}
            }
            let job = match &ev {
                Event::Row { job, .. }
                | Event::Done { job, .. }
                | Event::Failed { job, .. }
                | Event::Cancelled { job, .. }
                | Event::Status { job, .. } => *job,
                Event::Error { reason } => return Err(format!("server error: {reason}")),
                _ => continue,
            };
            let Some(res) = results.iter_mut().find(|r| r.job == job) else {
                continue;
            };
            match ev {
                Event::Row { .. } => res.rows.push(ev),
                Event::Done {
                    report_json,
                    report_csv,
                    ..
                } => {
                    res.state = "done".to_string();
                    res.report_json = report_json;
                    res.report_csv = report_csv;
                    open -= 1;
                }
                Event::Failed { reason, .. } => {
                    res.state = "failed".to_string();
                    res.reason = reason;
                    open -= 1;
                }
                Event::Cancelled { .. } => {
                    res.state = "cancelled".to_string();
                    open -= 1;
                }
                _ => {}
            }
        }
        Ok(results)
    }

    /// Requests a metrics snapshot.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply. Only valid between
    /// batches — mid-batch the reply would interleave with row events.
    pub fn metrics(&mut self) -> Result<crate::json::Json, String> {
        self.send(&Request::Metrics)?;
        match self.read_event()? {
            Event::Metrics(obj) => Ok(obj),
            other => Err(format!("expected metrics, got {}", other.to_line())),
        }
    }

    /// Asks the daemon to shut down gracefully; consumes the `bye`.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        loop {
            match self.read_event()? {
                Event::Bye => return Ok(()),
                // Drain stragglers from jobs still finishing.
                _ => continue,
            }
        }
    }

    /// Sends a cancel for `job` without waiting for a reply (the
    /// terminal event arrives in the normal stream).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn cancel(&mut self, job: u64) -> Result<(), String> {
        self.send(&Request::Cancel { job })
    }
}
