//! Estimation-as-a-service: the `repro serve` daemon.
//!
//! A long-running process that accepts density-estimation jobs over a
//! line-delimited JSON protocol (TCP, or stdio for a single session),
//! streams per-cell estimates as shards land, and answers
//! status/cancel/metrics requests — ROADMAP item 1.
//!
//! The crate is deliberately thin over the sweep layer:
//!
//! - [`request`] — the typed wire protocol. A submit deserializes
//!   into [`antdensity_sweep::SweepJob`], the *same* validated request
//!   type the CLI builds, so wire jobs and argv jobs cannot drift.
//! - [`daemon`] — admission control (bounded queue), the job registry
//!   and lifecycle state machine, executor threads over the shared
//!   process-global worker pool, optional dispatch onto the
//!   distributed runtime.
//! - [`client`] — a blocking client used by `repro serve-submit`, the
//!   property suite, and the load generator.
//! - [`mod@bench`] — `repro serve-bench`: concurrent clients against an
//!   in-process daemon, every delivered report verified byte-for-byte
//!   against the sequential CLI path.
//! - [`json`] — the hand-rolled JSON value model (the workspace is
//!   fully offline; nothing external to depend on).
//!
//! Determinism is inherited, not engineered: every shard's RNG stream
//! derives from its job's resolved spec alone, so any interleaving of
//! any number of concurrent clients produces, per job, the exact
//! bytes of the equivalent `repro sweep` run. The service property
//! suite pins this down.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bench;
pub mod client;
pub mod daemon;
pub mod json;
pub mod request;

pub use bench::{run_serve_bench, ServeBenchConfig, ServeBenchReport};
pub use client::{Client, JobResult};
pub use daemon::{run_stdio, ServeConfig, Server};
pub use json::Json;
pub use request::{Event, Request, Submit, PROTOCOL};
