//! The job wire protocol: typed requests and events over line-
//! delimited JSON.
//!
//! One JSON object per line, client → server ([`Request`]) and server
//! → client ([`Event`]). The submit payload deserializes into the
//! *same* [`SweepJob`] the CLI builds — wire jobs and argv jobs share
//! one validation path and one error vocabulary
//! ([`antdensity_sweep::job`]).
//!
//! Grammar (each line a complete JSON object):
//!
//! ```text
//! client → server
//!   {"op":"hello"}
//!   {"op":"submit","spec":"<spec file text>"
//!        [,"quick":bool][,"fuse":bool][,"seed":N][,"label":"..."]}
//!   {"op":"status","job":N}
//!   {"op":"cancel","job":N}
//!   {"op":"metrics"}
//!   {"op":"shutdown"}
//!
//! server → client
//!   {"event":"hello","protocol":"antdensity-job-protocol v1"}
//!   {"event":"accepted","job":N,"name":"...","cells":N,"shards":N}
//!   {"event":"rejected","reason":"..."}
//!   {"event":"row","job":N,"index":N,"topology":"...","density":F,
//!        "agents":N,"rounds":N,"estimator":"...","est_mean":F,
//!        "err_mean":F,"err_q":F|null,"within":F,"bound":F|null}
//!   {"event":"status","job":N,"state":"queued|running|done|failed|cancelled",
//!        "rows":N,"shards_done":N,"shards":N}
//!   {"event":"done","job":N,"complete":bool,
//!        "report_json":"...","report_csv":"..."}
//!   {"event":"failed","job":N,"reason":"..."}
//!   {"event":"cancelled","job":N,"rows":N}
//!   {"event":"metrics", ...queue/jobs/counters object...}
//!   {"event":"error","reason":"..."}     (malformed request; connection stays up)
//!   {"event":"bye"}
//! ```
//!
//! Encoding is deterministic (fixed key order), parsing is strict
//! (corrupt lines are rejected with an `error` event, never guessed
//! at) — both round-trip-tested in `tests/protocol.rs`.

use crate::json::Json;
use antdensity_sweep::{schema, SweepJob, SweepRow};

/// The protocol version announced in the hello handshake
/// ([`schema::JOB_PROTOCOL`]).
pub const PROTOCOL: &str = schema::JOB_PROTOCOL;

/// A client → server request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Re-request the hello/protocol event.
    Hello,
    /// Submit a job for admission.
    Submit(Submit),
    /// Poll one job's state.
    Status {
        /// The job id from its `accepted` event.
        job: u64,
    },
    /// Cancel a queued or running job.
    Cancel {
        /// The job id from its `accepted` event.
        job: u64,
    },
    /// Request the daemon's metrics snapshot.
    Metrics,
    /// Stop the daemon once running jobs finish.
    Shutdown,
}

/// The submit payload: a [`SweepJob`] plus a client-side label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submit {
    /// The job to run — the same type `repro sweep` validates.
    pub job: SweepJob,
    /// Echoed in nothing, kept for the client's own bookkeeping via
    /// `status`; optional.
    pub label: Option<String>,
}

impl Request {
    /// Encodes as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let obj = match self {
            Request::Hello => vec![("op".into(), Json::str("hello"))],
            Request::Submit(s) => {
                let mut pairs = vec![
                    ("op".into(), Json::str("submit")),
                    ("spec".into(), Json::str(&s.job.spec_text)),
                ];
                if s.job.quick {
                    pairs.push(("quick".into(), Json::Bool(true)));
                }
                if !s.job.fuse {
                    pairs.push(("fuse".into(), Json::Bool(false)));
                }
                if let Some(seed) = s.job.seed_override {
                    pairs.push(("seed".into(), Json::num(seed as f64)));
                }
                if let Some(label) = &s.label {
                    pairs.push(("label".into(), Json::str(label)));
                }
                pairs
            }
            Request::Status { job } => vec![
                ("op".into(), Json::str("status")),
                ("job".into(), Json::num(*job as f64)),
            ],
            Request::Cancel { job } => vec![
                ("op".into(), Json::str("cancel")),
                ("job".into(), Json::num(*job as f64)),
            ],
            Request::Metrics => vec![("op".into(), Json::str("metrics"))],
            Request::Shutdown => vec![("op".into(), Json::str("shutdown"))],
        };
        Json::Obj(obj).encode()
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: bad JSON, a missing
    /// or mistyped field, or an unknown `op`.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let obj = Json::parse(line)?;
        let op = obj
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing string field `op`")?;
        let job_id = |obj: &Json| -> Result<u64, String> {
            obj.get("job")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing integer field `job`".to_string())
        };
        match op {
            "hello" => Ok(Request::Hello),
            "submit" => {
                let spec = obj
                    .get("spec")
                    .and_then(Json::as_str)
                    .ok_or("submit needs a string field `spec`")?;
                let flag = |key: &str, default: bool| -> Result<bool, String> {
                    match obj.get(key) {
                        None => Ok(default),
                        Some(v) => v.as_bool().ok_or(format!("`{key}` must be a boolean")),
                    }
                };
                let seed_override = match obj.get("seed") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or("`seed` must be a non-negative integer")?),
                };
                let label = match obj.get("label") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_str().ok_or("`label` must be a string")?.to_string()),
                };
                Ok(Request::Submit(Submit {
                    job: SweepJob {
                        spec_text: spec.to_string(),
                        quick: flag("quick", false)?,
                        fuse: flag("fuse", true)?,
                        seed_override,
                    },
                    label,
                }))
            }
            "status" => Ok(Request::Status { job: job_id(&obj)? }),
            "cancel" => Ok(Request::Cancel { job: job_id(&obj)? }),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// A server → client event line.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Handshake: sent on connect and in reply to `hello`.
    Hello {
        /// The server's protocol version; clients must match it.
        protocol: String,
    },
    /// A submit passed admission.
    Accepted {
        /// Daemon-wide job id; all later events reference it.
        job: u64,
        /// The resolved sweep's name.
        name: String,
        /// Grid cells the job will produce.
        cells: usize,
        /// Fused shards the job will execute.
        shards: usize,
    },
    /// A submit was refused (queue full, spec invalid, shutting down).
    Rejected {
        /// Why — the same text the CLI would print.
        reason: String,
    },
    /// One cell's estimates, streamed as its shard lands.
    Row {
        /// Owning job.
        job: u64,
        /// Cell index within the sweep grid.
        index: usize,
        /// Topology axis token.
        topology: String,
        /// Density axis value.
        density: f64,
        /// Agents placed.
        agents: usize,
        /// Rounds per trial.
        rounds: u64,
        /// Estimator token.
        estimator: String,
        /// Mean per-agent estimate.
        est_mean: f64,
        /// Mean relative error.
        err_mean: f64,
        /// `(1 − delta)`-quantile of the error, when defined.
        err_q: Option<f64>,
        /// Fraction of samples within the band.
        within: f64,
        /// Paper-predicted bound, where one applies.
        bound: Option<f64>,
    },
    /// Reply to `status`.
    Status {
        /// The queried job.
        job: u64,
        /// `queued` | `running` | `done` | `failed` | `cancelled`.
        state: String,
        /// Rows streamed so far.
        rows: u64,
        /// Shards completed so far.
        shards_done: usize,
        /// Total shards in the job's plan.
        shards: usize,
    },
    /// Terminal: the job ran to its end. The report payloads are the
    /// exact bytes `repro sweep` would have written to
    /// `SWEEP_<name>.json` / `.csv`.
    Done {
        /// The finished job.
        job: u64,
        /// Whether every shard completed.
        complete: bool,
        /// `SWEEP_<name>.json` contents, byte-identical to the CLI's.
        report_json: String,
        /// `SWEEP_<name>.csv` contents, byte-identical to the CLI's.
        report_csv: String,
    },
    /// Terminal: the job errored.
    Failed {
        /// The failed job.
        job: u64,
        /// The runner's error message.
        reason: String,
    },
    /// Terminal: the job was cancelled.
    Cancelled {
        /// The cancelled job.
        job: u64,
        /// Rows that had streamed before the cancel took effect.
        rows: u64,
    },
    /// Reply to `metrics`: a free-form object assembled by the daemon
    /// (queue depth, job states, telemetry counters).
    Metrics(
        /// The snapshot object.
        Json,
    ),
    /// A request line could not be parsed; the connection stays open.
    Error {
        /// What was wrong with the line.
        reason: String,
    },
    /// Reply to `shutdown`; the daemon drains and exits.
    Bye,
}

impl Event {
    /// Builds a [`Event::Row`] from a report row.
    pub fn row(job: u64, r: &SweepRow) -> Event {
        Event::Row {
            job,
            index: r.index,
            topology: r.topology.clone(),
            density: r.density,
            agents: r.agents,
            rounds: r.rounds,
            estimator: r.estimator.clone(),
            est_mean: r.est_mean,
            err_mean: r.err_mean,
            err_q: r.err_q,
            within: r.within,
            bound: r.bound,
        }
    }

    /// Encodes as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        fn opt(v: Option<f64>) -> Json {
            v.map_or(Json::Null, Json::Num)
        }
        let obj = match self {
            Event::Hello { protocol } => vec![
                ("event".into(), Json::str("hello")),
                ("protocol".into(), Json::str(protocol)),
            ],
            Event::Accepted {
                job,
                name,
                cells,
                shards,
            } => vec![
                ("event".into(), Json::str("accepted")),
                ("job".into(), Json::num(*job as f64)),
                ("name".into(), Json::str(name)),
                ("cells".into(), Json::num(*cells as f64)),
                ("shards".into(), Json::num(*shards as f64)),
            ],
            Event::Rejected { reason } => vec![
                ("event".into(), Json::str("rejected")),
                ("reason".into(), Json::str(reason)),
            ],
            Event::Row {
                job,
                index,
                topology,
                density,
                agents,
                rounds,
                estimator,
                est_mean,
                err_mean,
                err_q,
                within,
                bound,
            } => vec![
                ("event".into(), Json::str("row")),
                ("job".into(), Json::num(*job as f64)),
                ("index".into(), Json::num(*index as f64)),
                ("topology".into(), Json::str(topology)),
                ("density".into(), Json::Num(*density)),
                ("agents".into(), Json::num(*agents as f64)),
                ("rounds".into(), Json::num(*rounds as f64)),
                ("estimator".into(), Json::str(estimator)),
                ("est_mean".into(), Json::Num(*est_mean)),
                ("err_mean".into(), Json::Num(*err_mean)),
                ("err_q".into(), opt(*err_q)),
                ("within".into(), Json::Num(*within)),
                ("bound".into(), opt(*bound)),
            ],
            Event::Status {
                job,
                state,
                rows,
                shards_done,
                shards,
            } => vec![
                ("event".into(), Json::str("status")),
                ("job".into(), Json::num(*job as f64)),
                ("state".into(), Json::str(state)),
                ("rows".into(), Json::num(*rows as f64)),
                ("shards_done".into(), Json::num(*shards_done as f64)),
                ("shards".into(), Json::num(*shards as f64)),
            ],
            Event::Done {
                job,
                complete,
                report_json,
                report_csv,
            } => vec![
                ("event".into(), Json::str("done")),
                ("job".into(), Json::num(*job as f64)),
                ("complete".into(), Json::Bool(*complete)),
                ("report_json".into(), Json::str(report_json)),
                ("report_csv".into(), Json::str(report_csv)),
            ],
            Event::Failed { job, reason } => vec![
                ("event".into(), Json::str("failed")),
                ("job".into(), Json::num(*job as f64)),
                ("reason".into(), Json::str(reason)),
            ],
            Event::Cancelled { job, rows } => vec![
                ("event".into(), Json::str("cancelled")),
                ("job".into(), Json::num(*job as f64)),
                ("rows".into(), Json::num(*rows as f64)),
            ],
            Event::Metrics(obj) => {
                let mut pairs = vec![("event".into(), Json::str("metrics"))];
                if let Json::Obj(rest) = obj {
                    pairs.extend(rest.clone());
                }
                pairs
            }
            Event::Error { reason } => vec![
                ("event".into(), Json::str("error")),
                ("reason".into(), Json::str(reason)),
            ],
            Event::Bye => vec![("event".into(), Json::str("bye"))],
        };
        Json::Obj(obj).encode()
    }

    /// Parses one event line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem: bad JSON, a missing
    /// or mistyped field, or an unknown `event`.
    pub fn parse_line(line: &str) -> Result<Event, String> {
        let obj = Json::parse(line)?;
        let kind = obj
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing string field `event`")?
            .to_string();
        let str_field = |key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("missing string field `{key}`"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("missing integer field `{key}`"))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing number field `{key}`"))
        };
        let opt_field = |key: &str| -> Result<Option<f64>, String> {
            match obj.get(key) {
                None => Err(format!("missing field `{key}`")),
                Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or(format!("`{key}` must be a number or null")),
            }
        };
        match kind.as_str() {
            "hello" => Ok(Event::Hello {
                protocol: str_field("protocol")?,
            }),
            "accepted" => Ok(Event::Accepted {
                job: u64_field("job")?,
                name: str_field("name")?,
                cells: u64_field("cells")? as usize,
                shards: u64_field("shards")? as usize,
            }),
            "rejected" => Ok(Event::Rejected {
                reason: str_field("reason")?,
            }),
            "row" => Ok(Event::Row {
                job: u64_field("job")?,
                index: u64_field("index")? as usize,
                topology: str_field("topology")?,
                density: f64_field("density")?,
                agents: u64_field("agents")? as usize,
                rounds: u64_field("rounds")?,
                estimator: str_field("estimator")?,
                est_mean: f64_field("est_mean")?,
                err_mean: f64_field("err_mean")?,
                err_q: opt_field("err_q")?,
                within: f64_field("within")?,
                bound: opt_field("bound")?,
            }),
            "status" => Ok(Event::Status {
                job: u64_field("job")?,
                state: str_field("state")?,
                rows: u64_field("rows")?,
                shards_done: u64_field("shards_done")? as usize,
                shards: u64_field("shards")? as usize,
            }),
            "done" => Ok(Event::Done {
                job: u64_field("job")?,
                complete: obj
                    .get("complete")
                    .and_then(Json::as_bool)
                    .ok_or("missing boolean field `complete`")?,
                report_json: str_field("report_json")?,
                report_csv: str_field("report_csv")?,
            }),
            "failed" => Ok(Event::Failed {
                job: u64_field("job")?,
                reason: str_field("reason")?,
            }),
            "cancelled" => Ok(Event::Cancelled {
                job: u64_field("job")?,
                rows: u64_field("rows")?,
            }),
            "metrics" => {
                let Json::Obj(pairs) = obj else {
                    return Err("metrics event is not an object".to_string());
                };
                let rest: Vec<(String, Json)> =
                    pairs.into_iter().filter(|(k, _)| k != "event").collect();
                Ok(Event::Metrics(Json::Obj(rest)))
            }
            "error" => Ok(Event::Error {
                reason: str_field("reason")?,
            }),
            "bye" => Ok(Event::Bye),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}
