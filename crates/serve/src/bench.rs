//! The `repro serve-bench` load generator: an in-process daemon
//! hammered by concurrent clients, every delivered report checked
//! byte-for-byte against the sequential CLI path.
//!
//! This is a *correctness-checked* benchmark: throughput numbers from
//! a service that returned wrong bytes are meaningless, so the
//! generator first computes each client's reference report via
//! [`run_sweep`] and then fails loudly on the first mismatch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use antdensity_sweep::runner::{run_sweep, SweepOptions};
use antdensity_sweep::{build_report, SweepJob};

use crate::client::Client;
use crate::daemon::{ServeConfig, Server};
use crate::request::Submit;

/// A tiny single-shard spec: admission, queueing, streaming, and
/// teardown dominate, which is exactly what serve-bench measures.
const BENCH_SPEC: &str = "\
name = serve_bench
seed = 11
trials = 1
topology = complete:64
density = 0.25
rounds = 8, 16
estimator = alg1
";

/// Load-generator shape.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs each client submits in one batch.
    pub jobs_per_client: usize,
    /// Daemon executor threads.
    pub executors: usize,
}

impl ServeBenchConfig {
    /// Quick shape for CI: 16 clients × 16 jobs = 256 jobs.
    pub fn quick() -> Self {
        Self {
            clients: 16,
            jobs_per_client: 16,
            executors: 2,
        }
    }

    /// Full shape: 64 clients × 32 jobs = 2048 jobs.
    pub fn full() -> Self {
        Self {
            clients: 64,
            jobs_per_client: 32,
            executors: 4,
        }
    }

    /// Total jobs the run will push through the daemon.
    pub fn total_jobs(&self) -> usize {
        self.clients * self.jobs_per_client
    }
}

/// What one serve-bench run measured.
#[derive(Debug, Clone, Copy)]
pub struct ServeBenchReport {
    /// Jobs delivered (accepted and completed with verified bytes).
    pub jobs: usize,
    /// Wall-clock for the whole run, seconds.
    pub secs: f64,
    /// Jobs per second.
    pub jobs_per_sec: f64,
    /// Agent-steps of simulation work delivered, summed over jobs.
    pub agent_steps: u64,
    /// Peak queue depth the daemon observed.
    pub queue_peak: u64,
}

/// The job every client submits, with its per-client seed. Client `c`
/// overrides the seed to `1000 + c`: distinct streams per client,
/// reproducible across runs, and each equivalent to a CLI run of the
/// same spec with its seed line edited.
fn client_job(client: usize) -> SweepJob {
    let mut job = SweepJob::new(BENCH_SPEC);
    job.quick = false;
    job.seed_override = Some(1000 + client as u64);
    job
}

/// Agent-steps one job's sweep simulates (agents × rounds × trials,
/// summed over cells).
fn job_agent_steps(job: &SweepJob) -> u64 {
    let resolved = job.validate().expect("bench spec validates").resolved;
    let trials = resolved.trials;
    resolved
        .cells
        .iter()
        .map(|c| c.num_agents as u64 * c.rounds * trials)
        .sum()
}

/// Runs the load generator against a fresh in-process daemon and
/// verifies every delivered report byte-for-byte.
///
/// # Errors
///
/// Daemon/bind/transport failures, or the first byte mismatch between
/// a served report and its sequential reference.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
    // Reference bytes per client, computed sequentially first.
    let mut references = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let job = client_job(c);
        let spec = job.parse_spec().map_err(|e| e.to_string())?;
        let opts = SweepOptions {
            quick: job.quick,
            ..SweepOptions::default()
        };
        let outcome = run_sweep(&spec, &opts)?;
        let report = build_report(&outcome);
        references.push((report.to_json(), report.to_csv()));
    }
    let references = Arc::new(references);

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_queue: cfg.total_jobs() + cfg.clients,
            executors: cfg.executors,
            ..ServeConfig::default()
        },
    )?;
    let addr = server.local_addr().to_string();

    let steps_per_job = job_agent_steps(&client_job(0));
    let delivered_steps = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut handles = Vec::with_capacity(cfg.clients);
    for c in 0..cfg.clients {
        let addr = addr.clone();
        let references = Arc::clone(&references);
        let delivered_steps = Arc::clone(&delivered_steps);
        let jobs = cfg.jobs_per_client;
        handles.push(thread::spawn(move || -> Result<usize, String> {
            let mut client = Client::connect(&addr)?;
            let batch: Vec<Submit> = (0..jobs)
                .map(|_| Submit {
                    job: client_job(c),
                    label: None,
                })
                .collect();
            let results = client.run_batch(batch)?;
            let (want_json, want_csv) = &references[c];
            for res in &results {
                if res.state != "done" {
                    return Err(format!(
                        "client {c} job {}: state `{}` ({})",
                        res.job, res.state, res.reason
                    ));
                }
                if &res.report_json != want_json || &res.report_csv != want_csv {
                    return Err(format!(
                        "client {c} job {}: served report differs from sequential CLI bytes",
                        res.job
                    ));
                }
                delivered_steps.fetch_add(steps_per_job, Ordering::Relaxed);
            }
            Ok(results.len())
        }));
    }
    let mut jobs_done = 0usize;
    let mut first_err = None;
    for h in handles {
        match h.join() {
            Ok(Ok(n)) => jobs_done += n,
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => first_err = first_err.or(Some("client thread panicked".to_string())),
        }
    }
    let secs = start.elapsed().as_secs_f64();

    let queue_peak = {
        let mut probe = Client::connect(&addr)?;
        let metrics = probe.metrics()?;
        metrics
            .get("queue_peak")
            .and_then(crate::json::Json::as_u64)
            .unwrap_or(0)
    };
    server.shutdown();
    server.wait();
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(ServeBenchReport {
        jobs: jobs_done,
        secs,
        jobs_per_sec: jobs_done as f64 / secs.max(1e-9),
        agent_steps: delivered_steps.load(Ordering::Relaxed),
        queue_peak,
    })
}
