//! The wire protocol's parse/encode contract: every request and event
//! round-trips through its line form, and corrupt lines are rejected
//! with an error — never guessed at.

use antdensity_serve::json::Json;
use antdensity_serve::request::{Event, Request, Submit, PROTOCOL};
use antdensity_sweep::SweepJob;

fn sample_requests() -> Vec<Request> {
    let mut job = SweepJob::new("name = x\nseed = 3\n");
    job.quick = true;
    job.fuse = false;
    job.seed_override = Some(42);
    vec![
        Request::Hello,
        Request::Submit(Submit {
            job: SweepJob::new("name = y\ntrials = 2\n"),
            label: None,
        }),
        Request::Submit(Submit {
            job,
            label: Some("replica-7".to_string()),
        }),
        Request::Status { job: 9 },
        Request::Cancel { job: 0 },
        Request::Metrics,
        Request::Shutdown,
    ]
}

fn sample_events() -> Vec<Event> {
    vec![
        Event::Hello {
            protocol: PROTOCOL.to_string(),
        },
        Event::Accepted {
            job: 3,
            name: "smoke".to_string(),
            cells: 16,
            shards: 8,
        },
        Event::Rejected {
            reason: "sweep spec: missing required key `name`".to_string(),
        },
        Event::Row {
            job: 3,
            index: 5,
            topology: "torus2d:8".to_string(),
            density: 0.25,
            agents: 16,
            rounds: 64,
            estimator: "alg1".to_string(),
            est_mean: 0.251_3,
            err_mean: 0.017,
            err_q: Some(0.05),
            within: 0.93,
            bound: None,
        },
        Event::Row {
            job: 4,
            index: 0,
            topology: "complete:64".to_string(),
            density: 0.1,
            agents: 6,
            rounds: 8,
            estimator: "quorum:0.05".to_string(),
            est_mean: 0.1,
            err_mean: 0.0,
            err_q: None,
            within: 1.0,
            bound: Some(0.5),
        },
        Event::Status {
            job: 3,
            state: "running".to_string(),
            rows: 5,
            shards_done: 2,
            shards: 8,
        },
        Event::Done {
            job: 3,
            complete: true,
            report_json: "{\"schema\": \"x\"}\n".to_string(),
            report_csv: "a,b\n1,2\n".to_string(),
        },
        Event::Failed {
            job: 3,
            reason: "worker died".to_string(),
        },
        Event::Cancelled { job: 3, rows: 7 },
        Event::Metrics(Json::Obj(vec![
            ("queue_depth".to_string(), Json::num(2.0)),
            (
                "jobs".to_string(),
                Json::Obj(vec![("done".to_string(), Json::num(5.0))]),
            ),
        ])),
        Event::Error {
            reason: "unknown op `frobnicate`".to_string(),
        },
        Event::Bye,
    ]
}

#[test]
fn every_request_round_trips() {
    for req in sample_requests() {
        let line = req.to_line();
        let back = Request::parse_line(&line)
            .unwrap_or_else(|e| panic!("round-trip failed for {line}: {e}"));
        assert_eq!(back, req, "line: {line}");
        // And the re-encoding is byte-stable.
        assert_eq!(back.to_line(), line);
    }
}

#[test]
fn every_event_round_trips() {
    for ev in sample_events() {
        let line = ev.to_line();
        let back = Event::parse_line(&line)
            .unwrap_or_else(|e| panic!("round-trip failed for {line}: {e}"));
        assert_eq!(back, ev, "line: {line}");
        assert_eq!(back.to_line(), line);
    }
}

#[test]
fn corrupt_request_lines_are_rejected() {
    let bad = [
        "",
        "not json",
        "42",
        "[]",
        "{}",
        "{\"op\":7}",
        "{\"op\":\"frobnicate\"}",
        "{\"op\":\"submit\"}",
        "{\"op\":\"submit\",\"spec\":17}",
        "{\"op\":\"submit\",\"spec\":\"x\",\"quick\":\"yes\"}",
        "{\"op\":\"submit\",\"spec\":\"x\",\"seed\":-4}",
        "{\"op\":\"submit\",\"spec\":\"x\",\"seed\":1.5}",
        "{\"op\":\"submit\",\"spec\":\"x\",\"label\":9}",
        "{\"op\":\"status\"}",
        "{\"op\":\"status\",\"job\":\"three\"}",
        "{\"op\":\"cancel\",\"job\":null}",
        "{\"op\":\"hello\"} trailing",
        "{\"op\":\"hello\"",
    ];
    for line in bad {
        assert!(
            Request::parse_line(line).is_err(),
            "should have rejected: {line:?}"
        );
    }
}

#[test]
fn corrupt_event_lines_are_rejected() {
    let bad = [
        "",
        "{}",
        "{\"event\":\"nope\"}",
        "{\"event\":\"accepted\",\"job\":1}",
        "{\"event\":\"row\",\"job\":1}",
        "{\"event\":\"done\",\"job\":1,\"complete\":\"yes\",\"report_json\":\"\",\"report_csv\":\"\"}",
        "{\"event\":\"status\",\"job\":1,\"state\":4,\"rows\":0,\"shards_done\":0,\"shards\":1}",
        "{\"event\":\"cancelled\",\"rows\":1}",
    ];
    for line in bad {
        assert!(
            Event::parse_line(line).is_err(),
            "should have rejected: {line:?}"
        );
    }
    // Every truncation of a valid event line is rejected too.
    let line = sample_events()[3].to_line();
    for cut in 0..line.len() {
        assert!(
            Event::parse_line(&line[..cut]).is_err(),
            "truncation at {cut} should fail: {:?}",
            &line[..cut]
        );
    }
}

#[test]
fn submit_defaults_mirror_the_cli() {
    // A bare submit means exactly `repro sweep SPEC`: full mode,
    // fused, the spec's own seed.
    let req = Request::parse_line("{\"op\":\"submit\",\"spec\":\"name = z\"}").unwrap();
    let Request::Submit(sub) = req else {
        panic!("not a submit")
    };
    assert_eq!(sub.job, SweepJob::new("name = z"));
    assert_eq!(sub.label, None);
}
