//! The service determinism contract: any number of concurrent
//! clients, any thread interleaving, any executor count, with or
//! without mid-job cancels — every job that completes delivers report
//! bytes **identical** to the sequential `repro sweep` run of the
//! equivalent spec.
//!
//! This is the serve-layer extension of `crates/sweep`'s determinism
//! suites: those pin "shard bytes are a pure function of (resolved
//! spec, shard)"; this suite pins that the daemon's queueing,
//! streaming, and cancellation machinery on top cannot perturb them.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::thread;

use antdensity_serve::daemon::{ServeConfig, Server};
use antdensity_serve::request::{Event, Request, Submit};
use antdensity_serve::Client;
use antdensity_sweep::runner::{run_sweep, SweepOptions};
use antdensity_sweep::{build_report, SweepJob};
use proptest::prelude::*;

/// Heterogeneous but small: 4 fused shards (2 topologies × 2
/// densities), 8 cells — enough structure for streaming and mid-job
/// cancels, small enough to run hundreds of jobs in the suite.
const SPEC: &str = "
name = serve_det
seed = 4242
trials = 2
topology = torus2d:8, complete:64
density = 0.1, 0.3
rounds = 4, 6
estimator = alg1
";

const CELLS: usize = 8;

fn job(seed: u64) -> SweepJob {
    let mut job = SweepJob::new(SPEC);
    job.seed_override = Some(seed);
    job
}

/// The sequential CLI bytes for `job(seed)`, memoized across the
/// suite (each distinct seed is one full in-process sweep).
fn reference(seed: u64) -> (String, String) {
    static CACHE: Mutex<BTreeMap<u64, (String, String)>> = Mutex::new(BTreeMap::new());
    let mut cache = CACHE.lock().unwrap();
    cache
        .entry(seed)
        .or_insert_with(|| {
            let spec = job(seed).parse_spec().unwrap();
            let outcome = run_sweep(&spec, &SweepOptions::default()).unwrap();
            let report = build_report(&outcome);
            (report.to_json(), report.to_csv())
        })
        .clone()
}

fn server(executors: usize) -> Server {
    antdensity_telemetry::set_enabled(true);
    Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            executors,
            max_queue: 256,
            ..ServeConfig::default()
        },
    )
    .unwrap()
}

/// The headline acceptance check: 8 concurrent clients, every
/// delivered report byte-identical to its sequential CLI run.
#[test]
fn eight_concurrent_clients_match_sequential_cli_bytes() {
    let server = server(3);
    let addr = server.local_addr().to_string();
    let handles: Vec<_> = (0..8u64)
        .map(|c| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                // Two jobs per client; seeds overlap across clients on
                // purpose — identical jobs must yield identical bytes.
                let seeds = [100 + c, 100 + (c + 1) % 8];
                let batch = seeds
                    .iter()
                    .map(|&s| Submit {
                        job: job(s),
                        label: None,
                    })
                    .collect();
                let results = client.run_batch(batch).unwrap();
                for (res, &seed) in results.iter().zip(&seeds) {
                    assert_eq!(res.state, "done", "client {c} seed {seed}: {}", res.reason);
                    assert_eq!(res.rows.len(), CELLS);
                    let (want_json, want_csv) = reference(seed);
                    assert_eq!(res.report_json, want_json, "client {c} seed {seed} json");
                    assert_eq!(res.report_csv, want_csv, "client {c} seed {seed} csv");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    server.shutdown();
    server.wait();
}

#[test]
fn invalid_specs_and_full_queues_are_rejected_with_cli_error_text() {
    let server = server(1);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let err = client
        .submit(Submit {
            job: SweepJob::new("trials = 1"),
            label: None,
        })
        .unwrap_err();
    // The daemon's rejection carries the same JobError text the CLI
    // prints for the same spec.
    assert!(err.contains("sweep spec:"), "got: {err}");
    assert!(err.contains("missing required key"), "got: {err}");

    // A zero-slot queue rejects every admission deterministically.
    let tiny = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            max_queue: 0,
            executors: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut c2 = Client::connect(&tiny.local_addr().to_string()).unwrap();
    let err = c2
        .submit(Submit {
            job: job(1),
            label: None,
        })
        .unwrap_err();
    assert!(err.contains("queue full"), "got: {err}");
    tiny.shutdown();
    tiny.wait();

    server.shutdown();
    server.wait();
}

#[test]
fn status_metrics_and_unknown_job_errors() {
    let server = server(2);
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    let results = client
        .run_batch(vec![Submit {
            job: job(7),
            label: Some("probe".to_string()),
        }])
        .unwrap();
    assert_eq!(results[0].state, "done");
    let id = results[0].job;

    client.send(&Request::Status { job: id }).unwrap();
    match client.read_event().unwrap() {
        Event::Status {
            job,
            state,
            rows,
            shards_done,
            shards,
        } => {
            assert_eq!(job, id);
            assert_eq!(state, "done");
            assert_eq!(rows as usize, CELLS);
            assert_eq!(shards_done, 4);
            assert_eq!(shards, 4);
        }
        other => panic!("expected status, got {}", other.to_line()),
    }

    client.send(&Request::Status { job: 999 }).unwrap();
    match client.read_event().unwrap() {
        Event::Error { reason } => assert!(reason.contains("unknown job"), "got: {reason}"),
        other => panic!("expected error, got {}", other.to_line()),
    }

    let metrics = client.metrics().unwrap();
    let jobs = metrics.get("jobs").unwrap();
    assert!(jobs.get("done").and_then(|j| j.as_u64()).unwrap() >= 1);
    let counters = metrics.get("counters").unwrap();
    assert!(
        counters
            .get("serve.jobs_completed")
            .and_then(|c| c.as_u64())
            .unwrap()
            >= 1
    );
    client.shutdown().unwrap();
    server.wait();
}

/// Drives one client by hand so a cancel can be injected after `k`
/// rows of the first job. Returns (first job's terminal state and row
/// count, second job's result bytes).
fn run_with_cancel(addr: &str, cancel_after: usize) -> ((String, usize), (String, String)) {
    let mut client = Client::connect(addr).unwrap();
    client
        .send(&Request::Submit(Submit {
            job: job(50),
            label: None,
        }))
        .unwrap();
    client
        .send(&Request::Submit(Submit {
            job: job(51),
            label: None,
        }))
        .unwrap();
    let mut victim = None;
    let mut second = None;
    let mut victim_rows = 0usize;
    let mut victim_state = None;
    let mut second_bytes = None;
    let mut cancel_sent = false;
    while victim_state.is_none() || second_bytes.is_none() {
        match client.read_event().unwrap() {
            Event::Accepted { job, .. } => {
                if victim.is_none() {
                    victim = Some(job);
                    if cancel_after == 0 {
                        client.cancel(job).unwrap();
                        cancel_sent = true;
                    }
                } else {
                    second = Some(job);
                }
            }
            Event::Row { job, .. } => {
                if Some(job) == victim {
                    victim_rows += 1;
                    if !cancel_sent && victim_rows >= cancel_after {
                        client.cancel(job).unwrap();
                        cancel_sent = true;
                    }
                }
            }
            Event::Cancelled { job, .. } if Some(job) == victim => {
                victim_state = Some("cancelled".to_string());
            }
            Event::Done {
                job,
                report_json,
                report_csv,
                ..
            } => {
                if Some(job) == victim {
                    victim_state = Some("done".to_string());
                } else if Some(job) == second {
                    second_bytes = Some((report_json, report_csv));
                }
            }
            Event::Failed { job, reason } => panic!("job {job} failed: {reason}"),
            // Cancel acks for already-running jobs come back as
            // status events; ignore.
            Event::Status { .. } => {}
            other => panic!("unexpected event {}", other.to_line()),
        }
    }
    ((victim_state.unwrap(), victim_rows), second_bytes.unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Arbitrary client/executor/seed shapes: every delivered report
    /// is byte-identical to its sequential reference, regardless of
    /// interleaving.
    #[test]
    fn any_interleaving_is_byte_identical(
        executors in 1usize..4,
        client_seeds in prop::collection::vec(
            prop::collection::vec(0u64..4, 1..3),
            1..4,
        ),
    ) {
        let server = server(executors);
        let addr = server.local_addr().to_string();
        let handles: Vec<_> = client_seeds
            .into_iter()
            .map(|seeds| {
                let addr = addr.clone();
                thread::spawn(move || {
                    let mut client = Client::connect(&addr).unwrap();
                    let batch = seeds
                        .iter()
                        .map(|&s| Submit { job: job(s), label: None })
                        .collect();
                    let results = client.run_batch(batch).unwrap();
                    for (res, &seed) in results.iter().zip(&seeds) {
                        assert_eq!(res.state, "done", "{}", res.reason);
                        let (want_json, want_csv) = reference(seed);
                        assert_eq!(res.report_json, want_json);
                        assert_eq!(res.report_csv, want_csv);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
        server.wait();
    }

    /// A cancel after `k` rows leaves the victim cleanly cancelled (or
    /// already done — the race is inherent) and never perturbs a
    /// concurrent job's bytes.
    #[test]
    fn mid_job_cancel_is_clean_and_isolated(cancel_after in 0usize..6) {
        let server = server(2);
        let addr = server.local_addr().to_string();
        let ((state, rows), (got_json, got_csv)) =
            run_with_cancel(&addr, cancel_after);
        match state.as_str() {
            "cancelled" => prop_assert!(rows < CELLS, "cancelled job streamed all rows"),
            "done" => prop_assert_eq!(rows, CELLS),
            other => prop_assert!(false, "unexpected terminal state {}", other),
        }
        let (want_json, want_csv) = reference(51);
        prop_assert_eq!(got_json, want_json);
        prop_assert_eq!(got_csv, want_csv);
        server.shutdown();
        server.wait();
    }
}
