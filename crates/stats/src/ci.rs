//! Confidence intervals for Monte-Carlo outputs.
//!
//! Two flavours are needed by the harness: a normal-approximation interval
//! for sample means (error magnitudes, fitted constants) and a Wilson score
//! interval for proportions (empirical failure probabilities near 0, where
//! the normal interval misbehaves).

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// The standard-normal quantile `z` such that `Φ(z) = p`.
///
/// Acklam's rational approximation; absolute error below 1.2e-8 over
/// `p ∈ (0, 1)` — far more accuracy than any Monte-Carlo use needs.
///
/// # Panics
///
/// Panics if `p ∉ (0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must lie strictly in (0,1)");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Normal-approximation CI for a mean given its standard error.
///
/// # Panics
///
/// Panics if `confidence ∉ (0, 1)` or `std_error < 0`.
pub fn mean_ci(mean: f64, std_error: f64, confidence: f64) -> ConfidenceInterval {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie in (0,1)"
    );
    assert!(std_error >= 0.0, "standard error must be non-negative");
    let z = normal_quantile(0.5 + confidence / 2.0);
    ConfidenceInterval {
        estimate: mean,
        lo: mean - z * std_error,
        hi: mean + z * std_error,
    }
}

/// Wilson score interval for a proportion with `successes` out of `n`.
///
/// Well behaved at the boundaries (p̂ = 0 or 1), unlike the Wald interval —
/// important when checking failure probabilities that should be ≈ δ ≪ 1.
///
/// # Panics
///
/// Panics if `n == 0`, `successes > n`, or `confidence ∉ (0, 1)`.
pub fn wilson_ci(successes: u64, n: u64, confidence: f64) -> ConfidenceInterval {
    assert!(n > 0, "need at least one trial");
    assert!(successes <= n, "successes cannot exceed trials");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie in (0,1)"
    );
    let z = normal_quantile(0.5 + confidence / 2.0);
    let nf = n as f64;
    let p_hat = successes as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p_hat + z2 / (2.0 * nf)) / denom;
    let half = z * (p_hat * (1.0 - p_hat) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    ConfidenceInterval {
        estimate: p_hat,
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5) - 0.0).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-5);
        // Extreme tails stay finite and monotone.
        assert!(normal_quantile(1e-10) < normal_quantile(1e-5));
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.3, 0.49] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-8);
        }
    }

    #[test]
    fn mean_ci_width_scales_with_z() {
        let narrow = mean_ci(0.0, 1.0, 0.68);
        let wide = mean_ci(0.0, 1.0, 0.99);
        assert!(wide.half_width() > narrow.half_width());
        assert!(narrow.contains(0.0));
        assert!((wide.lo + wide.hi).abs() < 1e-12, "symmetric around mean");
    }

    #[test]
    fn wilson_interval_contains_true_p_for_fair_coin() {
        // 5000 heads out of 10000 — p = 0.5 clearly inside.
        let ci = wilson_ci(5000, 10_000, 0.95);
        assert!(ci.contains(0.5));
        assert!(ci.half_width() < 0.02);
    }

    #[test]
    fn wilson_interval_zero_successes_positive_width() {
        let ci = wilson_ci(0, 100, 0.95);
        assert_eq!(ci.estimate, 0.0);
        assert_eq!(ci.lo, 0.0);
        assert!(ci.hi > 0.0 && ci.hi < 0.1);
    }

    #[test]
    fn wilson_interval_all_successes() {
        let ci = wilson_ci(100, 100, 0.95);
        assert_eq!(ci.estimate, 1.0);
        assert!(ci.lo > 0.9);
        assert_eq!(ci.hi, 1.0);
    }

    #[test]
    fn wilson_bounds_stay_in_unit_interval() {
        for &(s, n) in &[(1u64, 3u64), (2, 5), (999, 1000)] {
            let ci = wilson_ci(s, n, 0.999);
            assert!(ci.lo >= 0.0 && ci.hi <= 1.0);
            assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        }
    }

    #[test]
    #[should_panic(expected = "strictly in (0,1)")]
    fn quantile_rejects_boundary() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed trials")]
    fn wilson_rejects_impossible_counts() {
        let _ = wilson_ci(5, 4, 0.95);
    }
}
