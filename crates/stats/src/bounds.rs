//! Closed forms of the concentration bounds stated in the paper.
//!
//! All bounds are *asymptotic* in the paper ("for some fixed constant c");
//! the functions here expose the constant as a parameter (default 1.0) so
//! experiments can fit it and verify it is stable — which is what
//! "reproducing a Theta-bound" means empirically.
//!
//! Paper references:
//! * Section 1.1 — complete-graph Chernoff baseline.
//! * Theorem 1 — random-walk estimation on the 2-d torus.
//! * Lemma 18 — sub-exponential tail (Wainwright, Prop. 2.3).
//! * Lemma 19 — generic accuracy from a re-collision sum `B(t)`.
//! * Theorem 21 — ring (Chebyshev-based alternative bound).
//! * Theorem 27 — network-size estimation sample complexity.
//! * Theorem 31 — average-degree estimation sample complexity.
//! * Theorem 32 — independent-sampling variant (Algorithm 4).

/// Two-sided multiplicative Chernoff tail for a Binomial(n, p) mean:
/// `P[|X − np| ≥ ε·np] ≤ 2·exp(−ε²·np / 3)`, valid for `0 < ε ≤ 1`.
///
/// # Panics
///
/// Panics if `eps ∉ (0, 1]`, `p ∉ (0, 1]` or `n == 0`.
pub fn chernoff_tail(eps: f64, n: u64, p: f64) -> f64 {
    assert!(eps > 0.0 && eps <= 1.0, "eps must lie in (0, 1]");
    assert!(p > 0.0 && p <= 1.0, "p must lie in (0, 1]");
    assert!(n > 0, "n must be positive");
    (2.0f64) * (-eps * eps * (n as f64) * p / 3.0).exp()
}

/// Rounds needed by the complete-graph (i.i.d. sampling) baseline of
/// Section 1.1: `t = 3·ln(2/δ) / (d·ε²)`.
///
/// Each round is an independent Bernoulli(d) collision sample, so the
/// standard Chernoff bound gives a `(1±ε)` estimate w.p. `1−δ` after this
/// many rounds.
///
/// # Panics
///
/// Panics if any argument is outside `(0, 1)` ranges (`d ≤ 1` is required
/// since a density larger than one agent per node is outside the model).
pub fn chernoff_rounds(eps: f64, delta: f64, d: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0,1]");
    3.0 * (2.0 / delta).ln() / (d * eps * eps)
}

/// Theorem 1, first form: the accuracy reached after `t` rounds on the
/// 2-d torus: `ε(t) = c₁ · √(ln(1/δ)/(t·d)) · ln(2t)`.
///
/// # Panics
///
/// Panics if `t == 0`, `d ∉ (0,1]`, or `delta ∉ (0,1)`.
pub fn theorem1_epsilon(t: u64, d: f64, delta: f64, c1: f64) -> f64 {
    assert!(t > 0, "t must be positive");
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0,1]");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    c1 * ((1.0 / delta).ln() / (t as f64 * d)).sqrt() * (2.0 * t as f64).ln()
}

/// Theorem 1, second form: rounds sufficient for a `(1±ε)` estimate w.p.
/// `1−δ`: `t = c₂ · ln(1/δ) · [ln ln(1/δ) + ln(1/(dε))]² / (d·ε²)`.
///
/// # Panics
///
/// Panics if `eps` or `delta` is outside `(0,1)` or `d ∉ (0,1]`.
pub fn theorem1_rounds(eps: f64, delta: f64, d: f64, c2: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0,1]");
    let log_term = (1.0 / delta).ln().max(1.0);
    let inner = log_term.ln().max(0.0) + (1.0 / (d * eps)).ln().max(0.0);
    c2 * (1.0 / delta).ln() * inner * inner / (d * eps * eps)
}

/// Lemma 18 (Wainwright Prop. 2.3): tail of a sub-exponential variable with
/// parameters `(σ², b)`: `P[|X − E X| ≥ Δ] ≤ 2·exp(−Δ² / (2(σ² + bΔ)))`.
///
/// # Panics
///
/// Panics if `delta_dev < 0`, `sigma2 <= 0`, or `b < 0`.
pub fn subexponential_tail(delta_dev: f64, sigma2: f64, b: f64) -> f64 {
    assert!(delta_dev >= 0.0, "deviation must be non-negative");
    assert!(sigma2 > 0.0, "sigma2 must be positive");
    assert!(b >= 0.0, "b must be non-negative");
    2.0 * (-delta_dev * delta_dev / (2.0 * (sigma2 + b * delta_dev))).exp()
}

/// Lemma 19: accuracy on a general regular graph from the re-collision sum
/// `B(t) = Σ_{m=0..t} β(m)`: `ε = c · √(ln(1/δ)/(t·d)) · B(t)`.
///
/// On the 2-d torus `B(t) = Θ(log 2t)` recovers Theorem 1.
///
/// # Panics
///
/// Panics if `t == 0`, `d ∉ (0,1]`, `delta ∉ (0,1)` or `b_t <= 0`.
pub fn lemma19_epsilon(t: u64, d: f64, delta: f64, b_t: f64, c: f64) -> f64 {
    assert!(t > 0, "t must be positive");
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0,1]");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    assert!(b_t > 0.0, "B(t) must be positive");
    c * ((1.0 / delta).ln() / (t as f64 * d)).sqrt() * b_t
}

/// Theorem 21 (ring, Chebyshev-based): `ε = c·√(1/(√t·d·δ))`.
///
/// Note the linear (not logarithmic) dependence on `1/δ` and the `t^{1/4}`
/// convergence — both consequences of the ring's poor local mixing.
///
/// # Panics
///
/// Panics if `t == 0`, `d ∉ (0,1]`, or `delta ∉ (0,1)`.
pub fn theorem21_epsilon(t: u64, d: f64, delta: f64, c: f64) -> f64 {
    assert!(t > 0, "t must be positive");
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0,1]");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    c * (1.0 / ((t as f64).sqrt() * d * delta)).sqrt()
}

/// Theorem 21, rearranged for `t`: `t = c·(1/(d·ε²·δ))²`.
///
/// # Panics
///
/// Same domains as [`theorem21_epsilon`].
pub fn theorem21_rounds(eps: f64, delta: f64, d: f64, c: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0,1]");
    let x = 1.0 / (d * eps * eps * delta);
    c * x * x
}

/// Theorem 32 (Algorithm 4, independent sampling): `ε = c·√(ln(1/δ)/(t·d))`
/// — the grid bound *without* the `log 2t` factor.
///
/// # Panics
///
/// Panics if `t == 0`, `d ∉ (0,1]`, or `delta ∉ (0,1)`.
pub fn theorem32_epsilon(t: u64, d: f64, delta: f64, c: f64) -> f64 {
    assert!(t > 0, "t must be positive");
    assert!(d > 0.0 && d <= 1.0, "density must lie in (0,1]");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    c * ((1.0 / delta).ln() / (t as f64 * d)).sqrt()
}

/// Theorem 27: required `n²·t` for network-size estimation:
/// `n²t = c·(B(t)·|E| + |V|)/(ε²δ)` (equivalently `(B(t)·deḡ + 1)·|V|`
/// with `deḡ = 2|E|/|V|` up to the factor 2 absorbed in `c`).
///
/// # Panics
///
/// Panics if `eps`/`delta` outside `(0,1)`, or any size is zero/negative.
pub fn theorem27_n2t(b_t: f64, edges: f64, vertices: f64, eps: f64, delta: f64, c: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    assert!(
        edges > 0.0 && vertices > 0.0,
        "graph sizes must be positive"
    );
    assert!(b_t >= 0.0, "B(t) must be non-negative");
    c * (b_t * edges + vertices) / (eps * eps * delta)
}

/// Theorem 31: walks needed to estimate `1/deḡ` to `(1±ε)` w.p. `1−δ`:
/// `n = c·deḡ/(deg_min·ε²·δ)`.
///
/// # Panics
///
/// Panics if degrees are non-positive or `eps`/`delta` outside `(0,1)`.
pub fn theorem31_walks(avg_deg: f64, min_deg: f64, eps: f64, delta: f64, c: f64) -> f64 {
    assert!(avg_deg > 0.0 && min_deg > 0.0, "degrees must be positive");
    assert!(
        min_deg <= avg_deg,
        "min degree cannot exceed average degree"
    );
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    c * avg_deg / (min_deg * eps * eps * delta)
}

/// Burn-in length from Section 5.1.4: `M = c·ln(|E|/δ)/(1−λ)` steps bring a
/// walk within TV distance `δ/(n|E|)`-per-vertex of stationarity.
///
/// # Panics
///
/// Panics if `lambda ∉ [0,1)`, `edges == 0`, or `delta ∉ (0,1)`.
pub fn burnin_rounds(lambda: f64, edges: u64, delta: f64, c: f64) -> f64 {
    assert!((0.0..1.0).contains(&lambda), "lambda must lie in [0,1)");
    assert!(edges > 0, "graph must have edges");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    c * (edges as f64 / delta).ln() / (1.0 - lambda)
}

/// Inverts Lemma 18 for the deviation achieving tail `δ`:
/// smallest `Δ` with `2·exp(−Δ²/(2(σ²+bΔ))) ≤ δ`.
///
/// Closed form: `Δ = b·L + √(b²L² + 2σ²L)` with `L = ln(2/δ)`.
///
/// # Panics
///
/// Panics if `sigma2 <= 0`, `b < 0`, or `delta ∉ (0,1)`.
pub fn subexponential_deviation(sigma2: f64, b: f64, delta: f64) -> f64 {
    assert!(sigma2 > 0.0, "sigma2 must be positive");
    assert!(b >= 0.0, "b must be non-negative");
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    let l = (2.0 / delta).ln();
    b * l + (b * b * l * l + 2.0 * sigma2 * l).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_tail_decreases_in_n() {
        let t1 = chernoff_tail(0.1, 100, 0.5);
        let t2 = chernoff_tail(0.1, 10_000, 0.5);
        assert!(t2 < t1);
        assert!(t2 > 0.0);
    }

    #[test]
    fn chernoff_rounds_scaling() {
        // Halving eps quadruples t; halving d doubles t.
        let base = chernoff_rounds(0.1, 0.05, 0.02);
        assert!((chernoff_rounds(0.05, 0.05, 0.02) / base - 4.0).abs() < 1e-9);
        assert!((chernoff_rounds(0.1, 0.05, 0.01) / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn theorem1_epsilon_decays_like_sqrt_t_logt() {
        // eps(t) * sqrt(t) / log(2t) must be constant in t.
        let f = |t: u64| {
            theorem1_epsilon(t, 0.02, 0.05, 1.0) * (t as f64).sqrt() / (2.0 * t as f64).ln()
        };
        let a = f(1 << 8);
        let b = f(1 << 16);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn theorem1_rounds_monotone() {
        let t1 = theorem1_rounds(0.2, 0.05, 0.02, 1.0);
        let t2 = theorem1_rounds(0.1, 0.05, 0.02, 1.0);
        let t3 = theorem1_rounds(0.1, 0.01, 0.02, 1.0);
        assert!(t2 > t1, "smaller eps needs more rounds");
        assert!(t3 > t2, "smaller delta needs more rounds");
    }

    #[test]
    fn theorem1_roundtrip_is_consistent() {
        // Running for theorem1_rounds(eps) rounds should achieve roughly
        // epsilon <= eps (up to the log-factor slack absorbed in c3).
        let (eps, delta, d) = (0.1, 0.05, 0.02);
        let t = theorem1_rounds(eps, delta, d, 4.0).ceil() as u64;
        let achieved = theorem1_epsilon(t, d, delta, 1.0);
        assert!(
            achieved <= eps * 1.5,
            "achieved {achieved} should be near requested {eps}"
        );
    }

    #[test]
    fn lemma19_recovers_theorem1_on_torus() {
        // With B(t) = ln(2t) Lemma 19 equals Theorem 1 with c1 = c.
        let t = 4096;
        let bt = (2.0 * t as f64).ln();
        let a = lemma19_epsilon(t, 0.02, 0.05, bt, 1.0);
        let b = theorem1_epsilon(t, 0.02, 0.05, 1.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn subexponential_tail_behaviour() {
        // Gaussian regime: small deviations dominated by sigma^2.
        let g = subexponential_tail(1.0, 1.0, 0.0);
        assert!((g - 2.0 * (-0.5f64).exp()).abs() < 1e-12);
        // Tail decreases with deviation.
        assert!(subexponential_tail(3.0, 1.0, 0.5) < subexponential_tail(1.0, 1.0, 0.5));
    }

    #[test]
    fn subexponential_deviation_inverts_tail() {
        for &(s2, b, delta) in &[(1.0, 0.0, 0.05), (4.0, 2.0, 0.01), (0.5, 0.1, 0.2)] {
            let dev = subexponential_deviation(s2, b, delta);
            let tail = subexponential_tail(dev, s2, b);
            assert!(
                (tail - delta).abs() < 1e-9,
                "tail {tail} should equal delta {delta}"
            );
        }
    }

    #[test]
    fn theorem21_quartic_convergence() {
        // eps(t) * t^{1/4} is constant.
        let f = |t: u64| theorem21_epsilon(t, 0.02, 0.1, 1.0) * (t as f64).powf(0.25);
        assert!((f(256) - f(65_536)).abs() < 1e-12);
    }

    #[test]
    fn theorem21_rounds_quadratic_in_inverse_delta() {
        let t1 = theorem21_rounds(0.1, 0.2, 0.02, 1.0);
        let t2 = theorem21_rounds(0.1, 0.1, 0.02, 1.0);
        assert!((t2 / t1 - 4.0).abs() < 1e-9, "delta halved => t x4");
    }

    #[test]
    fn theorem32_has_no_log_factor() {
        // ratio of theorem1 to theorem32 epsilon must equal ln(2t).
        let t = 1 << 12;
        let r = theorem1_epsilon(t, 0.02, 0.05, 1.0) / theorem32_epsilon(t, 0.02, 0.05, 1.0);
        assert!((r - (2.0 * t as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn theorem27_scales_linearly_in_v_for_constant_bt() {
        let n2t_small = theorem27_n2t(1.0, 3.0 * 1000.0, 1000.0, 0.1, 0.1, 1.0);
        let n2t_big = theorem27_n2t(1.0, 3.0 * 8000.0, 8000.0, 0.1, 0.1, 1.0);
        assert!((n2t_big / n2t_small - 8.0).abs() < 1e-9);
    }

    #[test]
    fn theorem31_regular_graph_needs_inverse_eps2_delta() {
        let n = theorem31_walks(6.0, 6.0, 0.1, 0.1, 1.0);
        assert!((n - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn burnin_grows_as_mixing_slows() {
        let fast = burnin_rounds(0.5, 10_000, 0.05, 1.0);
        let slow = burnin_rounds(0.99, 10_000, 0.05, 1.0);
        assert!(slow > fast * 10.0);
    }

    #[test]
    #[should_panic(expected = "eps must lie in (0,1)")]
    fn rejects_bad_eps() {
        let _ = chernoff_rounds(0.0, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0,1)")]
    fn rejects_bad_delta() {
        let _ = theorem1_rounds(0.1, 1.0, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "density must lie in (0,1]")]
    fn rejects_bad_density() {
        let _ = theorem1_epsilon(100, 0.0, 0.1, 1.0);
    }
}
