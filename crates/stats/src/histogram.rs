//! Fixed-width and logarithmic histograms.
//!
//! Used by the harness to render error distributions and collision-count
//! distributions (which the paper shows are heavy-tailed on slow-mixing
//! graphs: the log-binned view makes the tail visible).

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be strictly below hi");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Number of bins (excluding under/overflow).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower bound of the binned range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the binned range (exclusive).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Merges another histogram into this one (streaming parallel
    /// reduction: shard-local histograms combine into the sweep-level
    /// aggregate without retaining samples). Bin counts add, so the
    /// result is identical to having pushed every observation into one
    /// histogram — in any merge order. Counts saturate at `u64::MAX`
    /// instead of overflowing, so merging adversarially large inputs
    /// degrades gracefully rather than panicking (debug) or wrapping
    /// to nonsense (release).
    ///
    /// # Panics
    ///
    /// Panics if the bounds or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi,
            "histogram bounds differ"
        );
        assert_eq!(self.bins.len(), other.bins.len(), "bin counts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a = a.saturating_add(*b);
        }
        self.underflow = self.underflow.saturating_add(other.underflow);
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
    }

    /// Approximate `q`-quantile from the binned counts, interpolating
    /// uniformly within the containing bin. Underflow mass is treated as
    /// sitting at `lo`, overflow mass at `hi` — so the result is always
    /// within `[lo, hi]` and exact to one bin width for in-range data.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
        let target = q * self.count as f64;
        let mut seen = self.underflow as f64;
        if target <= seen {
            return self.lo;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = seen + c as f64;
            if target <= next {
                let (blo, bhi) = self.bin_edges(i);
                let frac = (target - seen) / c as f64;
                return blo + frac * (bhi - blo);
            }
            seen = next;
        }
        self.hi
    }

    /// The exact internal state
    /// `(lo, hi, bins, underflow, overflow, count)` — for bit-exact
    /// persistence. Round-trips through [`Histogram::from_parts`].
    pub fn raw_parts(&self) -> (f64, f64, &[u64], u64, u64, u64) {
        (
            self.lo,
            self.hi,
            &self.bins,
            self.underflow,
            self.overflow,
            self.count,
        )
    }

    /// Reconstructs a histogram from [`Histogram::raw_parts`] output.
    ///
    /// # Panics
    ///
    /// Panics on an empty bin vector, non-finite bounds, `lo >= hi`, or
    /// a total count smaller than the sum of the recorded counts.
    pub fn from_parts(
        lo: f64,
        hi: f64,
        bins: Vec<u64>,
        underflow: u64,
        overflow: u64,
        count: u64,
    ) -> Self {
        assert!(!bins.is_empty(), "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be strictly below hi");
        // Checked arithmetic: an overflowing sum is a mismatch, not UB
        // (counts near u64::MAX are legal after a saturating merge).
        let total = bins
            .iter()
            .try_fold(0u64, |acc, &c| acc.checked_add(c))
            .and_then(|b| b.checked_add(underflow))
            .and_then(|b| b.checked_add(overflow));
        assert!(
            total == Some(count),
            "recorded counts do not sum to the total"
        );
        Self {
            lo,
            hi,
            bins,
            underflow,
            overflow,
            count,
        }
    }

    /// The bin densities normalised so the histogram integrates to 1
    /// (under/overflow excluded from the numerator but included in n).
    pub fn densities(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let n = self.count as f64;
        self.bins.iter().map(|&c| c as f64 / (n * w)).collect()
    }

    /// Renders a compact ASCII bar chart, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("[{lo:>10.4}, {hi:>10.4}) {c:>8} {bar}\n"));
        }
        out
    }
}

/// A histogram with logarithmically spaced bins over `[lo, hi)`,
/// `lo > 0`. Bin `i` covers `[lo·r^i, lo·r^{i+1})`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl LogHistogram {
    /// Creates a log histogram over `[lo, hi)` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo <= 0`, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0, "log histogram requires lo > 0");
        assert!(lo < hi, "lo must be strictly below hi");
        let ratio = (hi / lo).powf(1.0 / bins as f64);
        Self {
            lo,
            ratio,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.lo).ln() / self.ratio.ln()) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Total observations including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bin `i`.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// `[lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin {i} out of range");
        (
            self.lo * self.ratio.powi(i as i32),
            self.lo * self.ratio.powi(i as i32 + 1),
        )
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        for i in 0..10 {
            assert_eq!(h.bin_count(i), 1, "bin {i}");
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn linear_histogram_under_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.0); // hi is exclusive
        h.push(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn linear_histogram_edge_values() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(0.0); // inclusive lower edge -> bin 0
        h.push(0.5); // boundary -> bin 1
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.bin_count(1), 1);
    }

    #[test]
    fn densities_integrate_to_one_without_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 5);
        for i in 0..100 {
            h.push((i as f64 + 0.5) / 100.0);
        }
        let w = 0.2;
        let total: f64 = h.densities().iter().map(|d| d * w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bin_edges_cover_range() {
        let h = Histogram::new(-1.0, 1.0, 4);
        assert_eq!(h.bin_edges(0), (-1.0, -0.5));
        assert_eq!(h.bin_edges(3), (0.5, 1.0));
    }

    #[test]
    fn log_histogram_bins_geometrically() {
        let mut h = LogHistogram::new(1.0, 16.0, 4); // edges 1,2,4,8,16
        h.push(1.5); // bin 0
        h.push(3.0); // bin 1
        h.push(5.0); // bin 2
        h.push(12.0); // bin 3
        for i in 0..4 {
            assert_eq!(h.bin_count(i), 1, "bin {i}");
        }
        let (lo, hi) = h.bin_edges(2);
        assert!((lo - 4.0).abs() < 1e-12);
        assert!((hi - 8.0).abs() < 1e-12);
    }

    #[test]
    fn log_histogram_under_overflow() {
        let mut h = LogHistogram::new(1.0, 16.0, 4);
        h.push(0.5);
        h.push(16.0);
        h.push(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut whole = Histogram::new(0.0, 1.0, 8);
        let mut a = Histogram::new(0.0, 1.0, 8);
        let mut b = Histogram::new(0.0, 1.0, 8);
        for i in 0..200 {
            let x = (i as f64 * 0.7919) % 1.4 - 0.2; // exercises under/overflow
            whole.push(x);
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "bounds differ")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.merge(&Histogram::new(0.0, 2.0, 4));
    }

    #[test]
    fn merge_with_empty_is_identity_in_both_directions() {
        let mut filled = Histogram::new(0.0, 1.0, 4);
        for x in [0.1, 0.4, 0.9, -0.5, 2.0] {
            filled.push(x);
        }
        let before = filled.clone();
        // empty into filled: no-op
        filled.merge(&Histogram::new(0.0, 1.0, 4));
        assert_eq!(filled, before);
        // filled into empty: copy
        let mut empty = Histogram::new(0.0, 1.0, 4);
        empty.merge(&before);
        assert_eq!(empty, before);
        // empty into empty stays empty
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.merge(&Histogram::new(0.0, 1.0, 4));
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn single_bin_histogram_merges_and_interpolates_quantiles() {
        let mut a = Histogram::new(0.0, 1.0, 1);
        let mut b = Histogram::new(0.0, 1.0, 1);
        a.push(0.25);
        b.push(0.5);
        b.push(0.75);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bin_count(0), 3);
        // all mass in the one bin: quantiles interpolate linearly in [0,1)
        assert!((a.quantile(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(a.quantile(1.0), 1.0);
        assert_eq!(a.quantile(0.0), 0.0);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let near_max = u64::MAX - 1;
        let mut a = Histogram::from_parts(0.0, 1.0, vec![near_max], 0, 0, near_max);
        let b = Histogram::from_parts(0.0, 1.0, vec![u64::MAX - 2], 1, 1, u64::MAX);
        a.merge(&b);
        assert_eq!(a.bin_count(0), u64::MAX);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        // a saturated histogram still answers quantile queries sanely
        let q = a.quantile(0.5);
        assert!((0.0..=1.0).contains(&q), "q={q}");
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn quantile_of_empty_histogram_panics() {
        let _ = Histogram::new(0.0, 1.0, 4).quantile(0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_rejects_out_of_range_level() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.5);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn quantile_tracks_exact_quantile_to_bin_width() {
        let mut h = Histogram::new(0.0, 1.0, 1000);
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 + 0.5) / 500.0).collect();
        xs.iter().for_each(|&x| h.push(x));
        for q in [0.1, 0.5, 0.9] {
            let exact = crate::quantile::quantile(&xs, q);
            assert!(
                (h.quantile(q) - exact).abs() < 2.0 / 1000.0,
                "q={q}: {} vs {exact}",
                h.quantile(q)
            );
        }
    }

    #[test]
    fn quantile_clamps_overflow_mass() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(0.5);
        h.push(10.0);
        h.push(20.0);
        assert_eq!(h.quantile(1.0), 1.0);
        assert_eq!(h.quantile(0.9), 1.0);
    }

    #[test]
    fn raw_parts_round_trip() {
        let mut h = Histogram::new(-1.0, 3.0, 16);
        for i in 0..100 {
            h.push(i as f64 * 0.05 - 1.2);
        }
        let (lo, hi, bins, under, over, count) = h.raw_parts();
        let rebuilt = Histogram::from_parts(lo, hi, bins.to_vec(), under, over, count);
        assert_eq!(rebuilt, h);
    }

    #[test]
    #[should_panic(expected = "do not sum")]
    fn from_parts_checks_totals() {
        let _ = Histogram::from_parts(0.0, 1.0, vec![1, 2], 0, 0, 5);
    }

    #[test]
    fn render_is_nonempty() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.push(0.1);
        let s = h.render(20);
        assert!(s.contains('#'));
        assert_eq!(s.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo > 0")]
    fn log_histogram_requires_positive_lo() {
        let _ = LogHistogram::new(0.0, 1.0, 4);
    }
}
