//! Empirical quantiles with linear interpolation.
//!
//! The experiment harness reports the (1−δ)-quantile of the relative
//! estimation error — exactly the quantity Theorem 1 bounds.

/// Quantile of an *unsorted* slice (copies and sorts internally).
///
/// Uses the "linear interpolation of the empirical CDF" convention
/// (type 7 in Hyndman–Fan): `q = 0` is the minimum, `q = 1` the maximum.
///
/// # Panics
///
/// Panics if `samples` is empty, contains NaN, or `q ∉ [0, 1]`.
///
/// # Example
///
/// ```
/// use antdensity_stats::quantile::quantile;
/// let xs = [3.0, 1.0, 2.0];
/// assert_eq!(quantile(&xs, 0.5), 2.0);
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 1.0), 3.0);
/// ```
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice (no allocation).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q ∉ [0, 1]`. Debug builds additionally
/// assert that the input is sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level {q} outside [0,1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted requires sorted input"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Several quantiles at once over one sort.
///
/// # Panics
///
/// Same conditions as [`quantile`].
pub fn quantiles(samples: &[f64], qs: &[f64]) -> Vec<f64> {
    assert!(!samples.is_empty(), "quantile of empty sample");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    qs.iter().map(|&q| quantile_sorted(&v, q)).collect()
}

/// Median convenience wrapper.
///
/// # Panics
///
/// Panics if `samples` is empty or contains NaN.
pub fn median(samples: &[f64]) -> f64 {
    quantile(samples, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.0), 42.0);
        assert_eq!(quantile(&[42.0], 0.37), 42.0);
        assert_eq!(quantile(&[42.0], 1.0), 42.0);
    }

    #[test]
    fn interpolates_between_points() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 0.5), 5.0);
        assert_eq!(quantile(&xs, 0.75), 7.5);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn handles_unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 5.0);
        assert_eq!(quantile(&xs, 1.0), 9.0);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let qs = [0.0, 0.1, 0.5, 0.9, 0.95, 1.0];
        let batch = quantiles(&xs, &qs);
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(batch[i], quantile(&xs, q));
        }
    }

    #[test]
    fn uniform_grid_quantiles_exact() {
        // 0..=100: the q-quantile is exactly 100 q.
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert!((quantile(&xs, q) - 100.0 * q).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_level_panics() {
        let _ = quantile(&[1.0], 1.5);
    }
}
