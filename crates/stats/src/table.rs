//! ASCII table and CSV rendering for experiment output.
//!
//! Every experiment in the harness emits a [`Table`]: a header, rows of
//! cells, and optional free-form notes. The same table renders to an
//! aligned ASCII grid for the terminal and to CSV for `results/*.csv`.

use std::fmt;

/// A simple rectangular table of strings.
///
/// # Example
///
/// ```
/// use antdensity_stats::table::Table;
///
/// let mut t = Table::new("demo", &["t", "epsilon"]);
/// t.row(&["100", "0.31"]);
/// t.row(&["400", "0.16"]);
/// let ascii = t.render();
/// assert!(ascii.contains("epsilon"));
/// assert_eq!(t.to_csv().lines().count(), 3); // header + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given title and column header.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(title: &str, header: &[&str]) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row of string cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a formatted numeric row; floats rendered with `prec`
    /// significant decimal digits.
    pub fn row_f64(&mut self, cells: &[f64], prec: usize) -> &mut Self {
        let formatted: Vec<String> = cells.iter().map(|v| format_sig(*v, prec)).collect();
        self.row_owned(formatted)
    }

    /// Adds a free-form note line printed under the table.
    pub fn note(&mut self, note: &str) -> &mut Self {
        self.notes.push(note.to_string());
        self
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column header.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// All data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Notes attached to the table.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let fmt_row = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, &w) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!(" {cell:>w$} |"));
            }
            s
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Renders RFC-4180-style CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with `prec` decimal places, switching to scientific
/// notation outside `[1e-4, 1e7)` for readability of tiny probabilities.
pub fn format_sig(v: f64, prec: usize) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-4..1e7).contains(&a) {
        format!("{v:.prec$e}")
    } else if v == v.trunc() && a < 1e7 {
        format!("{}", v as i64)
    } else {
        format!("{v:.prec$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_grid() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(&["1", "2"]);
        t.row(&["333", "4"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_column"));
        // all body lines have the same width
        let widths: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with('|') || l.starts_with('+'))
            .map(|l| l.len())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let mut t = Table::new("x", &["c1", "c2"]);
        t.row(&["1", "hello"]);
        let csv = t.to_csv();
        assert_eq!(csv, "c1,c2\n1,hello\n");
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["c"]);
        t.row(&["a,b"]);
        t.row(&["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new("x", &["v"]);
        t.row_f64(&[0.123456], 3);
        t.row_f64(&[1e-9], 3);
        t.row_f64(&[42.0], 3);
        assert_eq!(t.rows()[0][0], "0.123");
        assert!(t.rows()[1][0].contains('e'));
        assert_eq!(t.rows()[2][0], "42");
    }

    #[test]
    fn notes_render() {
        let mut t = Table::new("x", &["v"]);
        t.row(&["1"]).note("paper predicts slope -1");
        assert!(t.render().contains("note: paper predicts slope -1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn format_sig_cases() {
        assert_eq!(format_sig(0.0, 3), "0");
        assert_eq!(format_sig(5.0, 3), "5");
        assert_eq!(format_sig(-2.5, 2), "-2.50");
        assert!(format_sig(1.0e-7, 2).contains('e'));
        assert!(format_sig(3.2e9, 2).contains('e'));
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("d", &["v"]);
        t.row(&["9"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
