//! Ordinary least squares and log–log power-law fitting.
//!
//! The reproduction's shape checks are slope checks: the paper predicts
//! re-collision probability `∝ (m+1)^{−1}` on the 2-d torus, `(m+1)^{−1/2}`
//! on the ring, `(m+1)^{−k/2}` on k-dim tori, geometric `λ^m` decay on
//! expanders, and query-complexity exponents `2/3` vs `7/6` in §5.1.5.
//! A [`LogLogFit`] turns each of those into a fitted exponent with an R².

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LinearFit {
    /// Fits `y ≈ slope·x + intercept` by ordinary least squares.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied, if lengths differ, or
    /// if all x values coincide (the slope would be undefined).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x and y lengths differ");
        assert!(xs.len() >= 2, "need at least two points");
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        assert!(sxx > 0.0, "all x values coincide; slope undefined");
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        let r_squared = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Self {
            slope,
            intercept,
            r_squared,
            n: xs.len(),
        }
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Power-law fit `y ≈ a·x^p` via least squares in log–log space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLogFit {
    /// Fitted exponent `p`.
    pub exponent: f64,
    /// Fitted prefactor `a`.
    pub prefactor: f64,
    /// R² of the underlying log-space linear fit.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl LogLogFit {
    /// Fits `y ≈ a·x^p`. Points with non-positive x or y are *rejected*
    /// (they have no logarithm); filter them out first if expected.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points, mismatched lengths, or any
    /// non-positive coordinate.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x and y lengths differ");
        assert!(
            xs.iter().chain(ys).all(|&v| v > 0.0),
            "log-log fit requires strictly positive data"
        );
        let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
        let lin = LinearFit::fit(&lx, &ly);
        Self {
            exponent: lin.slope,
            prefactor: lin.intercept.exp(),
            r_squared: lin.r_squared,
            n: xs.len(),
        }
    }

    /// Predicted value at `x > 0`.
    pub fn predict(&self, x: f64) -> f64 {
        self.prefactor * x.powf(self.exponent)
    }
}

/// Geometric-decay fit `y ≈ a·r^x` (linear fit in semilog space).
///
/// Used for the expander re-collision bound `λ^m` (Lemma 23) and the
/// hypercube bound `(9/10)^{m−1}` (Lemma 25).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SemiLogFit {
    /// Fitted ratio `r` (decay rate per unit x).
    pub ratio: f64,
    /// Fitted prefactor `a`.
    pub prefactor: f64,
    /// R² of the underlying linear fit.
    pub r_squared: f64,
    /// Number of points fitted.
    pub n: usize,
}

impl SemiLogFit {
    /// Fits `y ≈ a·r^x`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points, mismatched lengths, or any `y ≤ 0`.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "x and y lengths differ");
        assert!(
            ys.iter().all(|&v| v > 0.0),
            "semilog fit requires strictly positive y data"
        );
        let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
        let lin = LinearFit::fit(xs, &ly);
        Self {
            ratio: lin.slope.exp(),
            prefactor: lin.intercept.exp(),
            r_squared: lin.r_squared,
            n: xs.len(),
        }
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.prefactor * self.ratio.powf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = LinearFit::fit(&xs, &ys);
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 58.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_slope_close() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // deterministic "noise"
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x + 1.0 + (x * 12.9898).sin() * 0.5)
            .collect();
        let fit = LinearFit::fit(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn constant_y_has_r2_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = LinearFit::fit(&xs, &ys);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn loglog_recovers_power_law() {
        let xs: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 7.0 * x.powf(-1.0)).collect();
        let fit = LogLogFit::fit(&xs, &ys);
        assert!((fit.exponent + 1.0).abs() < 1e-10);
        assert!((fit.prefactor - 7.0).abs() < 1e-9);
        assert!((fit.predict(100.0) - 0.07).abs() < 1e-9);
    }

    #[test]
    fn loglog_recovers_half_power() {
        let xs: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 / x.sqrt()).collect();
        let fit = LogLogFit::fit(&xs, &ys);
        assert!((fit.exponent + 0.5).abs() < 1e-10);
    }

    #[test]
    fn semilog_recovers_geometric_decay() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * 0.9f64.powf(*x)).collect();
        let fit = SemiLogFit::fit(&xs, &ys);
        assert!((fit.ratio - 0.9).abs() < 1e-10);
        assert!((fit.prefactor - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = LinearFit::fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_panics() {
        let _ = LinearFit::fit(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn vertical_line_panics() {
        let _ = LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn loglog_rejects_nonpositive() {
        let _ = LogLogFit::fit(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
