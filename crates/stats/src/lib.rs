//! Statistics substrate for the `antdensity` reproduction of
//! *Ant-Inspired Density Estimation via Random Walks* (Musco, Su, Lynch;
//! PODC 2016 / PNAS 2017).
//!
//! The paper's results are concentration bounds on random-walk collision
//! statistics. Verifying them empirically requires a small, dependable
//! statistics toolkit:
//!
//! * [`moments`] — streaming mean/variance (Welford) and exact central
//!   moments of arbitrary order, used to test the paper's k-th moment
//!   bounds (Lemma 11, Corollaries 15 and 16).
//! * [`quantile`](mod@quantile) / [`histogram`] — empirical error
//!   distributions.
//! * [`bounds`] — closed forms of every bound stated in the paper
//!   (Theorem 1, Lemma 18/19, Theorem 21, Theorem 27, Theorem 32, and the
//!   complete-graph Chernoff baseline of Section 1.1).
//! * [`regression`] — least-squares and log–log slope fitting, used to
//!   verify decay exponents (−1 on the torus, −1/2 on the ring, −k/2 on
//!   k-dimensional tori, …).
//! * [`ci`] — confidence intervals for Monte-Carlo proportions and means.
//! * [`mom`] — median-of-means boosting (the paper's median-of-estimates
//!   trick from Section 5.1.2).
//! * [`rng`] — SplitMix64 seed derivation so that every simulation in the
//!   workspace is reproducible from a single master seed.
//! * [`schedule`] — checkpoint schedules (the round counts at which a
//!   streaming estimator snapshots): validated sorted sets, sized by
//!   `max`, generated geometrically by `log_spaced` for dense
//!   accuracy-vs-rounds curves.
//! * [`table`] — ASCII table / CSV rendering shared by the experiment
//!   harness and the examples.
//!
//! # Example
//!
//! ```
//! use antdensity_stats::moments::SampleStats;
//!
//! let samples = [1.0, 2.0, 3.0, 4.0];
//! let stats = SampleStats::from_slice(&samples);
//! assert_eq!(stats.mean(), 2.5);
//! assert!((stats.variance() - 5.0 / 3.0).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bounds;
pub mod ci;
pub mod histogram;
pub mod mom;
pub mod moments;
pub mod quantile;
pub mod regression;
pub mod rng;
pub mod schedule;
pub mod table;

pub use bounds::{chernoff_rounds, theorem1_epsilon, theorem1_rounds};
pub use moments::{CentralMoments, SampleStats, StreamingMoments};
pub use quantile::quantile;
pub use regression::{LinearFit, LogLogFit};
pub use rng::SeedSequence;
pub use schedule::Schedule;
pub use table::Table;
