//! Median-of-means estimation.
//!
//! Section 5.1.2 of the paper notes that the Chebyshev-based network-size
//! bound has *linear* dependence on `1/δ`, and that one can "perform
//! log(1/δ) estimates each with failure probability 1/3 and return the
//! median, which will be correct with probability 1−δ". This module
//! implements that boosting step.

/// Number of independent repetitions needed so that the median of
/// estimates, each failing with probability at most `p_fail < 1/2`, fails
/// with probability at most `delta`.
///
/// From the Chernoff bound on Binomial(k, p_fail) exceeding k/2:
/// `k = ln(1/δ) / (2·(1/2 − p_fail)²)` (rounded up to the next odd count
/// so the median is unique).
///
/// # Panics
///
/// Panics if `p_fail ∉ (0, 0.5)` or `delta ∉ (0, 1)`.
pub fn repetitions_for(p_fail: f64, delta: f64) -> usize {
    assert!(
        p_fail > 0.0 && p_fail < 0.5,
        "per-estimate failure probability must lie in (0, 0.5)"
    );
    assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0,1)");
    let gap = 0.5 - p_fail;
    let k = ((1.0 / delta).ln() / (2.0 * gap * gap)).ceil() as usize;
    let k = k.max(1);
    if k.is_multiple_of(2) {
        k + 1
    } else {
        k
    }
}

/// Median of a set of estimates (the boosting combiner).
///
/// # Panics
///
/// Panics if `estimates` is empty or contains NaN.
pub fn median_of_estimates(estimates: &[f64]) -> f64 {
    crate::quantile::median(estimates)
}

/// Median-of-means over a sample: splits `samples` into `groups` blocks,
/// averages each block, returns the median of the block means.
///
/// Tolerates heavy tails: achieves sub-Gaussian deviation with only a
/// finite-variance assumption — exactly the situation for ring collision
/// counts whose higher moments blow up (Theorem 21's setting).
///
/// # Panics
///
/// Panics if `groups == 0` or `samples.len() < groups`.
pub fn median_of_means(samples: &[f64], groups: usize) -> f64 {
    assert!(groups > 0, "need at least one group");
    assert!(
        samples.len() >= groups,
        "need at least one sample per group"
    );
    let base = samples.len() / groups;
    let extra = samples.len() % groups;
    let mut means = Vec::with_capacity(groups);
    let mut idx = 0;
    for g in 0..groups {
        let len = base + usize::from(g < extra);
        let block = &samples[idx..idx + len];
        idx += len;
        means.push(block.iter().sum::<f64>() / block.len() as f64);
    }
    median_of_estimates(&means)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetitions_is_odd_and_grows_with_confidence() {
        let k1 = repetitions_for(1.0 / 3.0, 0.1);
        let k2 = repetitions_for(1.0 / 3.0, 0.001);
        assert!(k1 % 2 == 1 && k2 % 2 == 1);
        assert!(k2 > k1);
    }

    #[test]
    fn repetitions_small_for_weak_targets() {
        // delta = 0.3 with p_fail = 1/3 needs very few repetitions.
        assert!(repetitions_for(1.0 / 3.0, 0.3) <= 45);
    }

    #[test]
    fn median_of_estimates_ignores_outlier_minority() {
        // 2 of 5 estimates are wildly wrong; median is still good.
        let est = [10.0, 10.2, 9.9, 1000.0, -500.0];
        let m = median_of_estimates(&est);
        assert!((m - 10.0).abs() < 0.5);
    }

    #[test]
    fn median_of_means_even_split() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        // groups of 2: means 1.5, 3.5, 5.5 -> median 3.5
        assert_eq!(median_of_means(&xs, 3), 3.5);
    }

    #[test]
    fn median_of_means_uneven_split() {
        let xs = [1.0, 1.0, 1.0, 1.0, 100.0];
        // 2 groups: [1,1,1] mean 1, [1,100] mean 50.5 -> median 25.75
        let m = median_of_means(&xs, 2);
        assert!((m - 25.75).abs() < 1e-12);
    }

    #[test]
    fn median_of_means_single_group_is_mean() {
        let xs = [2.0, 4.0, 6.0];
        assert_eq!(median_of_means(&xs, 1), 4.0);
    }

    #[test]
    fn median_of_means_resists_heavy_tail() {
        // 100 samples: 95 are ~1.0, 5 are enormous. Plain mean is ruined;
        // median of 10 means is not.
        let mut xs = vec![1.0; 95];
        xs.extend([1e6; 5]);
        // interleave the outliers
        xs.swap(0, 95);
        xs.swap(20, 96);
        xs.swap(40, 97);
        xs.swap(60, 98);
        xs.swap(80, 99);
        let plain_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let mom = median_of_means(&xs, 11);
        assert!(plain_mean > 1000.0);
        assert!(mom < plain_mean / 10.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample per group")]
    fn too_many_groups_panics() {
        let _ = median_of_means(&[1.0, 2.0], 3);
    }

    #[test]
    #[should_panic(expected = "(0, 0.5)")]
    fn repetitions_rejects_bad_pfail() {
        let _ = repetitions_for(0.5, 0.1);
    }
}
