//! Checkpoint schedules: the sorted sets of round counts at which a
//! streaming estimator snapshots its state.
//!
//! The observer pipeline runs one simulation pass and reads estimates
//! out at several `rounds` checkpoints; a [`Schedule`] is the canonical
//! representation of those checkpoints — strictly increasing, positive,
//! deduplicated — sized by [`Schedule::max`] (the rounds one fused pass
//! must run) and generated geometrically by [`Schedule::log_spaced`]
//! (the sweep spec grammar's `rounds = log:<lo>:<hi>:<per-doubling>`
//! axis, the natural abscissae for accuracy-vs-rounds curves).

/// A strictly increasing, deduplicated list of positive round
/// checkpoints.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    points: Vec<u64>,
}

impl Schedule {
    /// Builds a schedule from arbitrary checkpoint values: sorted,
    /// deduplicated.
    ///
    /// # Errors
    ///
    /// Returns an error if `points` is empty or contains a zero.
    pub fn new(mut points: Vec<u64>) -> Result<Self, String> {
        if points.is_empty() {
            return Err("schedule needs at least one checkpoint".into());
        }
        if points.contains(&0) {
            return Err("checkpoints must be positive round counts".into());
        }
        points.sort_unstable();
        points.dedup();
        Ok(Self { points })
    }

    /// The one-checkpoint schedule (a classic fixed-`t` run).
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn single(rounds: u64) -> Self {
        assert!(rounds > 0, "checkpoints must be positive round counts");
        Self {
            points: vec![rounds],
        }
    }

    /// Geometrically spaced checkpoints from `lo` to `hi` (both
    /// included): `points_per_doubling` checkpoints per factor of two,
    /// rounded to distinct integers — the natural grid for
    /// accuracy-vs-rounds curves, and cheap to read out of one fused
    /// pass.
    ///
    /// # Panics
    ///
    /// Panics if `lo == 0`, `lo > hi`, or `points_per_doubling == 0`.
    pub fn log_spaced(lo: u64, hi: u64, points_per_doubling: u32) -> Self {
        assert!(lo > 0, "checkpoints must be positive round counts");
        assert!(lo <= hi, "empty range");
        assert!(
            points_per_doubling > 0,
            "need at least one point per doubling"
        );
        let ratio = 2f64.powf(1.0 / f64::from(points_per_doubling));
        let mut points = Vec::new();
        let mut x = lo as f64;
        while x < hi as f64 {
            points.push(x.round() as u64);
            x *= ratio;
        }
        points.push(hi);
        Self::new(points).expect("constructed points are positive and non-empty")
    }

    /// The checkpoints, ascending.
    pub fn points(&self) -> &[u64] {
        &self.points
    }

    /// Number of checkpoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the schedule is empty (never — kept for the usual
    /// `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The final checkpoint — the rounds one fused simulation pass must
    /// execute to serve every snapshot.
    pub fn max(&self) -> u64 {
        *self.points.last().expect("schedules are non-empty")
    }

    /// Whether `rounds` is a checkpoint.
    pub fn contains(&self, rounds: u64) -> bool {
        self.points.binary_search(&rounds).is_ok()
    }
}

impl std::fmt::Display for Schedule {
    /// Comma-separated checkpoint list (`16,32,64`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = Schedule::new(vec![64, 16, 32, 16]).unwrap();
        assert_eq!(s.points(), &[16, 32, 64]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.max(), 64);
        assert!(s.contains(32));
        assert!(!s.contains(33));
    }

    #[test]
    fn rejects_empty_and_zero() {
        assert!(Schedule::new(vec![]).is_err());
        assert!(Schedule::new(vec![8, 0]).is_err());
    }

    #[test]
    fn single_is_one_checkpoint() {
        let s = Schedule::single(128);
        assert_eq!(s.points(), &[128]);
        assert_eq!(s.max(), 128);
    }

    #[test]
    fn log_spaced_hits_endpoints_and_grows_geometrically() {
        let s = Schedule::log_spaced(16, 512, 1);
        assert_eq!(s.points(), &[16, 32, 64, 128, 256, 512]);
        let dense = Schedule::log_spaced(16, 128, 2);
        assert_eq!(dense.points().first(), Some(&16));
        assert_eq!(dense.max(), 128);
        assert!(dense.len() > 4, "{dense}");
        // the committed alg1_accuracy axis: 3 points per doubling
        assert_eq!(
            Schedule::log_spaced(16, 512, 3).points(),
            &[16, 20, 25, 32, 40, 51, 64, 81, 102, 128, 161, 203, 256, 323, 406, 512]
        );
    }

    #[test]
    fn display_is_comma_separated() {
        assert_eq!(Schedule::new(vec![8, 4]).unwrap().to_string(), "4,8");
    }

    #[test]
    #[should_panic(expected = "positive round counts")]
    fn single_zero_panics() {
        let _ = Schedule::single(0);
    }
}
