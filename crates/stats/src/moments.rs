//! Sample moments: streaming (Welford) and exact central moments of
//! arbitrary order.
//!
//! The paper's key technical result (Lemma 11) bounds *all* central moments
//! of the pairwise collision count: `E[c̄ⱼᵏ] ≤ (t/A)·wᵏ·k!·logᵏ(2t)`.
//! Corollaries 15 and 16 give analogous bounds for node visits and
//! equalizations. Testing those claims requires computing empirical k-th
//! central moments for k well beyond 2, which [`CentralMoments`] provides.

/// Streaming mean/variance via Welford's algorithm.
///
/// Numerically stable one-pass computation; O(1) memory. Use this when
/// samples are too numerous to retain.
///
/// # Example
///
/// ```
/// use antdensity_stats::moments::StreamingMoments;
///
/// let mut m = StreamingMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean. Returns 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased (n−1) sample variance. Returns 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population (n) variance. Returns 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (σ/√n).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The exact internal state `(count, mean, m2, min, max)` — for
    /// bit-exact persistence (checkpoint files). Round-trips through
    /// [`StreamingMoments::from_raw`] without losing a single bit, so a
    /// resumed accumulator continues the identical floating-point
    /// trajectory.
    pub fn raw_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Reconstructs an accumulator from [`StreamingMoments::raw_parts`]
    /// output. The caller is responsible for passing state produced by a
    /// real accumulator; no invariants beyond NaN-freeness are checked.
    ///
    /// # Panics
    ///
    /// Panics if `mean` or `m2` is NaN.
    pub fn from_raw(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        assert!(!mean.is_nan() && !m2.is_nan(), "NaN in serialized state");
        Self {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

impl Extend<f64> for StreamingMoments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for StreamingMoments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = StreamingMoments::new();
        m.extend(iter);
        m
    }
}

/// Descriptive statistics over a retained sample.
///
/// Keeps the (sorted) samples so quantiles and arbitrary-order moments are
/// exact. Use for trial-level outputs (thousands to millions of values).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    sorted: Vec<f64>,
    mean: f64,
}

impl SampleStats {
    /// Builds statistics from a slice (copies and sorts it).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_slice(samples: &[f64]) -> Self {
        Self::from_vec(samples.to_vec())
    }

    /// Builds statistics taking ownership of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn from_vec(mut samples: Vec<f64>) -> Self {
        assert!(
            !samples.is_empty(),
            "SampleStats requires at least one sample"
        );
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "SampleStats cannot contain NaN"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Self {
            sorted: samples,
            mean,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty inputs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased (n−1) sample variance; 0 for a single sample.
    pub fn variance(&self) -> f64 {
        if self.sorted.len() < 2 {
            return 0.0;
        }
        let m = self.mean;
        let ss: f64 = self.sorted.iter().map(|x| (x - m) * (x - m)).sum();
        ss / (self.sorted.len() - 1) as f64
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev() / (self.len() as f64).sqrt()
    }

    /// Minimum (first of the sorted samples).
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum (last of the sorted samples).
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Empirical quantile with linear interpolation, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        crate::quantile::quantile_sorted(&self.sorted, q)
    }

    /// The k-th raw moment `E[xᵏ]`.
    pub fn raw_moment(&self, k: u32) -> f64 {
        self.sorted.iter().map(|x| x.powi(k as i32)).sum::<f64>() / self.len() as f64
    }

    /// The k-th central moment `E[(x − mean)ᵏ]`.
    pub fn central_moment(&self, k: u32) -> f64 {
        let m = self.mean;
        self.sorted
            .iter()
            .map(|x| (x - m).powi(k as i32))
            .sum::<f64>()
            / self.len() as f64
    }

    /// The k-th absolute central moment `E[|x − mean|ᵏ]`.
    ///
    /// The paper's moment bounds (Lemma 11) are stated for `c̄ᵏ` with even
    /// and odd k; absolute moments give a sign-free comparison for odd k.
    pub fn abs_central_moment(&self, k: u32) -> f64 {
        let m = self.mean;
        self.sorted
            .iter()
            .map(|x| (x - m).abs().powi(k as i32))
            .sum::<f64>()
            / self.len() as f64
    }

    /// View of the sorted samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples for which `pred` holds.
    pub fn fraction_where<F: Fn(f64) -> bool>(&self, pred: F) -> f64 {
        self.sorted.iter().filter(|&&x| pred(x)).count() as f64 / self.len() as f64
    }
}

/// Central moments about a *known* mean, computed online.
///
/// The paper's Lemma 11 bounds moments of `c̄ⱼ = cⱼ − E[cⱼ|W]` where the
/// conditional expectation `t/A` is known exactly. Centering on the known
/// mean (rather than the sample mean) matches the theorem statement and
/// avoids plug-in bias.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralMoments {
    center: f64,
    max_order: u32,
    count: u64,
    /// sums[k-1] = Σ (x − center)^k for k = 1..=max_order
    sums: Vec<f64>,
    /// abs_sums[k-1] = Σ |x − center|^k
    abs_sums: Vec<f64>,
}

impl CentralMoments {
    /// Accumulator for moments 1..=`max_order` about `center`.
    ///
    /// # Panics
    ///
    /// Panics if `max_order == 0`.
    pub fn new(center: f64, max_order: u32) -> Self {
        assert!(max_order >= 1, "max_order must be at least 1");
        Self {
            center,
            max_order,
            count: 0,
            sums: vec![0.0; max_order as usize],
            abs_sums: vec![0.0; max_order as usize],
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.center;
        let mut p = 1.0;
        let ad = d.abs();
        let mut ap = 1.0;
        for k in 0..self.max_order as usize {
            p *= d;
            ap *= ad;
            self.sums[k] += p;
            self.abs_sums[k] += ap;
        }
    }

    /// Merges another accumulator (must share center and order).
    ///
    /// # Panics
    ///
    /// Panics if centers or orders differ.
    pub fn merge(&mut self, other: &CentralMoments) {
        assert_eq!(self.center, other.center, "centers differ");
        assert_eq!(self.max_order, other.max_order, "orders differ");
        self.count += other.count;
        for k in 0..self.max_order as usize {
            self.sums[k] += other.sums[k];
            self.abs_sums[k] += other.abs_sums[k];
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The centering constant.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// Highest tracked order.
    pub fn max_order(&self) -> u32 {
        self.max_order
    }

    /// `E[(x − center)ᵏ]` for `1 ≤ k ≤ max_order`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds `max_order`, or if no samples were
    /// added.
    pub fn moment(&self, k: u32) -> f64 {
        assert!(k >= 1 && k <= self.max_order, "order {k} out of range");
        assert!(self.count > 0, "no samples");
        self.sums[(k - 1) as usize] / self.count as f64
    }

    /// `E[|x − center|ᵏ]` for `1 ≤ k ≤ max_order`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CentralMoments::moment`].
    pub fn abs_moment(&self, k: u32) -> f64 {
        assert!(k >= 1 && k <= self.max_order, "order {k} out of range");
        assert!(self.count > 0, "no samples");
        self.abs_sums[(k - 1) as usize] / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, -2.0, 3.25, 0.0, 7.5, -1.25];
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.min(), -2.0);
        assert_eq!(m.max(), 7.5);
    }

    #[test]
    fn welford_empty_is_safe() {
        let m = StreamingMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.std_error(), 0.0);
    }

    #[test]
    fn welford_single_sample() {
        let mut m = StreamingMoments::new();
        m.push(3.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingMoments::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = StreamingMoments::new();
        let mut right = StreamingMoments::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: StreamingMoments = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&StreamingMoments::new());
        assert_eq!(a, before);
        let mut empty = StreamingMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn raw_parts_round_trip_is_bit_exact() {
        let mut m = StreamingMoments::new();
        for i in 0..37 {
            m.push((i as f64).sin() * 3.0 + 0.1);
        }
        let (count, mean, m2, min, max) = m.raw_parts();
        let rebuilt = StreamingMoments::from_raw(count, mean, m2, min, max);
        assert_eq!(rebuilt, m);
        // continuing both accumulators stays bit-identical
        let mut a = m;
        let mut b = rebuilt;
        a.push(0.25);
        b.push(0.25);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_stats_basics() {
        let s = SampleStats::from_slice(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.sorted_samples(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn sample_stats_rejects_empty() {
        let _ = SampleStats::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn sample_stats_rejects_nan() {
        let _ = SampleStats::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn central_moment_second_is_population_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = SampleStats::from_slice(&xs);
        assert!((s.central_moment(2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_where_counts_correctly() {
        let s = SampleStats::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.fraction_where(|x| x > 2.5), 0.6);
        assert_eq!(s.fraction_where(|_| true), 1.0);
        assert_eq!(s.fraction_where(|_| false), 0.0);
    }

    #[test]
    fn known_mean_moments_match_naive() {
        let xs = [0.0, 1.0, 2.0, 3.0, 10.0];
        let center = 2.0;
        let mut cm = CentralMoments::new(center, 4);
        xs.iter().for_each(|&x| cm.push(x));
        for k in 1..=4u32 {
            let naive: f64 =
                xs.iter().map(|x| (x - center).powi(k as i32)).sum::<f64>() / xs.len() as f64;
            assert!(
                (cm.moment(k) - naive).abs() < 1e-12,
                "k = {k}: {} vs {naive}",
                cm.moment(k)
            );
            let naive_abs: f64 = xs
                .iter()
                .map(|x| (x - center).abs().powi(k as i32))
                .sum::<f64>()
                / xs.len() as f64;
            assert!((cm.abs_moment(k) - naive_abs).abs() < 1e-12);
        }
    }

    #[test]
    fn central_moments_merge() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let mut whole = CentralMoments::new(1.0, 6);
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = CentralMoments::new(1.0, 6);
        let mut b = CentralMoments::new(1.0, 6);
        xs[..20].iter().for_each(|&x| a.push(x));
        xs[20..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        for k in 1..=6 {
            assert!((a.moment(k) - whole.moment(k)).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn central_moments_order_checked() {
        let mut cm = CentralMoments::new(0.0, 2);
        cm.push(1.0);
        let _ = cm.moment(3);
    }

    #[test]
    #[should_panic(expected = "centers differ")]
    fn central_moments_merge_checks_center() {
        let mut a = CentralMoments::new(0.0, 2);
        let b = CentralMoments::new(1.0, 2);
        a.merge(&b);
    }
}
