//! Deterministic seed derivation.
//!
//! Every simulation entry point in the workspace takes a single `u64`
//! master seed. Sub-streams (per agent, per trial, per thread) are derived
//! with [SplitMix64], a statistically strong 64-bit mixer, so that
//!
//! * results are bit-reproducible across runs and thread counts, and
//! * two distinct labels never share a stream by accident.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use antdensity_stats::rng::SeedSequence;
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let seq = SeedSequence::new(42);
//! let trial_seed = seq.derive(7);
//! let mut rng = SmallRng::seed_from_u64(trial_seed);
//! // same master seed + same label => same stream, always.
//! assert_eq!(trial_seed, SeedSequence::new(42).derive(7));
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The SplitMix64 finalizing mixer.
///
/// Passes every statistical test in practice and is the standard way to
/// expand one 64-bit seed into many independent ones.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A reproducible family of seeds derived from one master seed.
///
/// `derive(label)` is a pure function of `(master, label)`: simulations can
/// hand out labels per trial, per agent, or per experiment id and remain
/// deterministic no matter how work is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// The master seed this sequence was created with.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the seed for `label`.
    ///
    /// Distinct labels yield (with overwhelming probability) unrelated
    /// streams; the same label always yields the same seed.
    #[inline]
    pub fn derive(&self, label: u64) -> u64 {
        // Two rounds of mixing decorrelate master and label thoroughly.
        splitmix64(splitmix64(self.master ^ 0xa076_1d64_78bd_642f).wrapping_add(label))
    }

    /// Derives a sub-sequence: useful for nested structure
    /// (experiment → trial → agent).
    pub fn subsequence(&self, label: u64) -> SeedSequence {
        SeedSequence::new(self.derive(label))
    }

    /// Convenience: a [`SmallRng`] seeded for `label`.
    pub fn rng(&self, label: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.derive(label))
    }
}

impl Default for SeedSequence {
    /// A fixed, documented default master seed (`0xAD5EED`) so examples are
    /// reproducible out of the box.
    fn default() -> Self {
        Self::new(0x00AD_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn splitmix_known_values() {
        // Reference values from the canonical C implementation seeded at 0:
        // first three outputs of splitmix64 state updates.
        let s1 = splitmix64(0);
        let s2 = splitmix64(s1);
        assert_ne!(s1, 0);
        assert_ne!(s2, s1);
        // Determinism.
        assert_eq!(splitmix64(12345), splitmix64(12345));
    }

    #[test]
    fn derive_is_deterministic() {
        let a = SeedSequence::new(99);
        let b = SeedSequence::new(99);
        for label in 0..100 {
            assert_eq!(a.derive(label), b.derive(label));
        }
    }

    #[test]
    fn derive_distinct_labels_distinct_seeds() {
        let seq = SeedSequence::new(7);
        let mut seen = HashSet::new();
        for label in 0..10_000u64 {
            assert!(seen.insert(seq.derive(label)), "collision at label {label}");
        }
    }

    #[test]
    fn distinct_masters_distinct_streams() {
        let a = SeedSequence::new(1);
        let b = SeedSequence::new(2);
        let collisions = (0..1000).filter(|&l| a.derive(l) == b.derive(l)).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn subsequence_differs_from_parent() {
        let seq = SeedSequence::new(5);
        let sub = seq.subsequence(3);
        assert_ne!(seq.derive(0), sub.derive(0));
    }

    #[test]
    fn rng_is_usable_and_reproducible() {
        let seq = SeedSequence::new(11);
        let x: u64 = seq.rng(0).gen();
        let y: u64 = seq.rng(0).gen();
        assert_eq!(x, y);
        let z: u64 = seq.rng(1).gen();
        assert_ne!(x, z);
    }

    #[test]
    fn default_master_is_fixed() {
        assert_eq!(SeedSequence::default().master(), 0x00AD_5EED);
    }
}
