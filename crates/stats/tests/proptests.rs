//! Property-based tests for the statistics substrate.

use antdensity_stats::moments::{CentralMoments, SampleStats, StreamingMoments};
use antdensity_stats::quantile::{quantile, quantile_sorted};
use antdensity_stats::regression::{LinearFit, LogLogFit};
use antdensity_stats::rng::SeedSequence;
use proptest::prelude::*;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6..1e6f64, min_len..200)
}

proptest! {
    #[test]
    fn streaming_mean_matches_naive(xs in finite_vec(1)) {
        let mut m = StreamingMoments::new();
        xs.iter().for_each(|&x| m.push(x));
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        let scale = 1.0 + naive.abs();
        prop_assert!((m.mean() - naive).abs() / scale < 1e-9);
    }

    #[test]
    fn streaming_variance_non_negative(xs in finite_vec(1)) {
        let m: StreamingMoments = xs.iter().copied().collect();
        prop_assert!(m.variance() >= 0.0);
        prop_assert!(m.population_variance() >= 0.0);
    }

    #[test]
    fn streaming_merge_any_split(xs in finite_vec(2), split_frac in 0.0..1.0f64) {
        let split = ((xs.len() as f64) * split_frac) as usize;
        let mut whole = StreamingMoments::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = StreamingMoments::new();
        let mut b = StreamingMoments::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        let scale = 1.0 + whole.mean().abs();
        prop_assert!((a.mean() - whole.mean()).abs() / scale < 1e-9);
        let vscale = 1.0 + whole.variance().abs();
        prop_assert!((a.variance() - whole.variance()).abs() / vscale < 1e-6);
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in finite_vec(1), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-12);
    }

    #[test]
    fn quantile_within_range(xs in finite_vec(1), q in 0.0..1.0f64) {
        let v = quantile(&xs, q);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
    }

    #[test]
    fn quantile_sorted_agrees_with_unsorted(xs in finite_vec(1), q in 0.0..1.0f64) {
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(quantile(&xs, q), quantile_sorted(&sorted, q));
    }

    #[test]
    fn sample_stats_mean_between_min_max(xs in finite_vec(1)) {
        let s = SampleStats::from_slice(&xs);
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn central_moments_even_orders_non_negative(
        xs in finite_vec(1),
        center in -10.0..10.0f64,
    ) {
        let mut cm = CentralMoments::new(center, 6);
        xs.iter().for_each(|&x| cm.push(x));
        for k in [2u32, 4, 6] {
            prop_assert!(cm.moment(k) >= 0.0, "even moment {} negative", k);
        }
        for k in 1..=6u32 {
            prop_assert!(cm.abs_moment(k) >= 0.0);
            prop_assert!(cm.abs_moment(k) >= cm.moment(k).abs() - 1e-9);
        }
    }

    #[test]
    fn linear_fit_residual_orthogonality(
        pairs in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 3..50)
    ) {
        // OLS residuals sum to ~0 (with an intercept fitted).
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        // need x variation
        let mx = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assume!(xs.iter().any(|x| (x - mx).abs() > 1e-6));
        let fit = LinearFit::fit(&xs, &ys);
        let resid_sum: f64 = xs.iter().zip(&ys).map(|(x, y)| y - fit.predict(*x)).sum();
        prop_assert!(resid_sum.abs() / (1.0 + ys.iter().map(|y| y.abs()).sum::<f64>()) < 1e-8);
        prop_assert!(fit.r_squared <= 1.0 + 1e-12);
    }

    #[test]
    fn loglog_fit_exact_on_power_laws(
        a in 0.1..10.0f64,
        p in -3.0..3.0f64,
    ) {
        let xs: Vec<f64> = (1..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| a * x.powf(p)).collect();
        let fit = LogLogFit::fit(&xs, &ys);
        prop_assert!((fit.exponent - p).abs() < 1e-6);
        prop_assert!((fit.prefactor - a).abs() / a < 1e-6);
    }

    #[test]
    fn seed_derivation_never_collides_nearby(master in any::<u64>()) {
        let seq = SeedSequence::new(master);
        let seeds: Vec<u64> = (0..64).map(|l| seq.derive(l)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len());
    }
}
