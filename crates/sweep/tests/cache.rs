//! Result-cache robustness: every way a cache entry can be wrong must
//! degrade to a silent recompute, never to wrong report bytes.
//!
//! The cache's correctness story is *inherited*, not engineered: a
//! shard blob is a pure function of (fingerprint, shard index), so the
//! only thing these tests have to pin is that damaged or foreign
//! entries are never served. Each scenario corrupts the store a
//! different way — truncation, a flipped bit, a blob for a different
//! spec planted under this spec's key, concurrent writers racing one
//! key — and asserts the sweep still produces bytes identical to a
//! cache-off run.

use antdensity_sweep::{build_report, run_sweep, ShardCache, SweepOptions, SweepSpec};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SPEC: &str = "
    name = cache_robustness
    seed = 11
    trials = 2
    topology = torus2d:8, complete:64
    density = 0.1
    rounds = 8, 16
    estimator = alg1
    ";

/// A second spec with a different fingerprint (different seed), used
/// to plant foreign blobs.
const OTHER_SPEC: &str = "
    name = cache_robustness
    seed = 12
    trials = 2
    topology = torus2d:8, complete:64
    density = 0.1
    rounds = 8, 16
    estimator = alg1
    ";

fn tmp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("antdensity_cache_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Report bytes of a cache-off run — the reference every scenario's
/// output must match exactly.
fn reference_bytes(spec: &SweepSpec) -> (String, String) {
    let outcome = run_sweep(spec, &SweepOptions::default()).expect("reference sweep runs");
    let report = build_report(&outcome);
    (report.to_json(), report.to_csv())
}

fn run_with_cache(spec: &SweepSpec, cache: &Arc<ShardCache>) -> (String, String) {
    let opts = SweepOptions {
        cache: Some(Arc::clone(cache)),
        ..SweepOptions::default()
    };
    let outcome = run_sweep(spec, &opts).expect("cached sweep runs");
    let report = build_report(&outcome);
    (report.to_json(), report.to_csv())
}

/// Every `.cas` entry file currently in the store.
fn entry_files(cache: &ShardCache) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(cache.dir())
        .expect("cache dir exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "cas"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "populated cache has entry files");
    files
}

/// Populates a fresh cache at `root` by running the sweep once, then
/// hands each entry file to `damage`, reruns, and asserts the rerun
/// recomputed (no hits served from the damaged entries) with bytes
/// identical to the cache-off reference.
fn corruption_falls_back(tag: &str, damage: impl Fn(&Path)) {
    let spec = SweepSpec::parse(SPEC).expect("spec parses");
    let reference = reference_bytes(&spec);
    let root = tmp_root(tag);

    let cache = Arc::new(ShardCache::open(&root).expect("cache opens"));
    assert_eq!(run_with_cache(&spec, &cache), reference);
    let stats = cache.stats();
    assert_eq!(stats.hits, 0);
    assert!(stats.stores > 0, "cold run publishes its shards");

    for file in entry_files(&cache) {
        damage(&file);
    }

    // A fresh handle: counters start at zero, the store is the damaged
    // directory.
    let cache = Arc::new(ShardCache::open(&root).expect("cache reopens"));
    assert_eq!(run_with_cache(&spec, &cache), reference);
    let stats = cache.stats();
    assert_eq!(stats.hits, 0, "damaged entries must never be served");
    assert!(
        stats.corrupt > 0 || stats.misses > 0,
        "damage surfaces as corrupt or miss, never as a hit"
    );

    // The recompute republished; a third run is all hits.
    let cache = Arc::new(ShardCache::open(&root).expect("cache reopens"));
    assert_eq!(run_with_cache(&spec, &cache), reference);
    let stats = cache.stats();
    assert_eq!(stats.misses + stats.corrupt, 0);
    assert!(stats.hits > 0, "repaired store serves every shard");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_blob_falls_back_to_recompute() {
    corruption_falls_back("truncated", |file| {
        let text = std::fs::read(file).expect("entry readable");
        std::fs::write(file, &text[..text.len() / 2]).expect("truncate");
    });
}

#[test]
fn bit_flipped_blob_falls_back_to_recompute() {
    corruption_falls_back("bitflip", |file| {
        let mut bytes = std::fs::read(file).expect("entry readable");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // payload tail: caught by the checksum
        std::fs::write(file, bytes).expect("rewrite");
    });
}

#[test]
fn wrong_fingerprint_entry_is_rejected_not_served() {
    // Plant, under this spec's entry files, blobs computed for a
    // *different* spec (same shape, different seed). The stored
    // checksums are made internally consistent — `repair`ing the entry
    // is not what saves us; the blob's embedded fingerprint is.
    let other = SweepSpec::parse(OTHER_SPEC).expect("other spec parses");
    let other_root = tmp_root("wrongfp_other");
    let other_cache = Arc::new(ShardCache::open(&other_root).expect("cache opens"));
    run_with_cache(&other, &other_cache);
    let foreign = entry_files(&other_cache);

    corruption_falls_back("wrongfp", |file| {
        // Overwrite the whole entry with a (valid, self-consistent)
        // entry belonging to the other spec: the CAS layer's key check
        // flags it as corrupt before the blob is ever parsed.
        std::fs::copy(&foreign[0], file).expect("plant foreign entry");
    });

    let _ = std::fs::remove_dir_all(&other_root);
}

#[test]
fn concurrent_writers_racing_one_key_never_tear() {
    let spec = SweepSpec::parse(SPEC).expect("spec parses");
    let reference = reference_bytes(&spec);
    let root = tmp_root("race");

    // Eight threads run the identical sweep against one shared store
    // simultaneously: every shard key is raced by every thread, mixing
    // hits, misses, and concurrent puts of the same entry.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let spec = &spec;
            let reference = &reference;
            let root = &root;
            scope.spawn(move || {
                let cache = Arc::new(ShardCache::open(root).expect("cache opens"));
                for _ in 0..3 {
                    assert_eq!(&run_with_cache(spec, &cache), reference);
                }
            });
        }
    });

    // No temp-file litter and a now-fully-warm store.
    let cache = Arc::new(ShardCache::open(&root).expect("cache reopens"));
    for entry in std::fs::read_dir(cache.dir()).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        assert!(
            path.extension().is_some_and(|x| x == "cas"),
            "unexpected file in cache dir: {}",
            path.display()
        );
    }
    assert_eq!(run_with_cache(&spec, &cache), reference);
    let stats = cache.stats();
    assert!(stats.hits > 0);
    assert_eq!(stats.misses + stats.corrupt, 0);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn warm_rerun_is_byte_identical_and_all_hits() {
    let spec = SweepSpec::parse(SPEC).expect("spec parses");
    let reference = reference_bytes(&spec);
    let root = tmp_root("warm");

    let cache = Arc::new(ShardCache::open(&root).expect("cache opens"));
    assert_eq!(run_with_cache(&spec, &cache), reference);
    let cold = cache.stats();
    assert_eq!(cold.hits, 0);
    assert_eq!(
        cold.stores as usize,
        spec.resolve(false).unwrap().fused.len()
    );

    let cache = Arc::new(ShardCache::open(&root).expect("cache reopens"));
    assert_eq!(run_with_cache(&spec, &cache), reference);
    let warm = cache.stats();
    assert_eq!(warm.misses, 0);
    assert_eq!(warm.hits, cold.stores, "every shard served from disk");

    // --cache-verify on a healthy store: recomputes, byte-compares,
    // still succeeds, still counts the hits.
    let cache = Arc::new(ShardCache::open(&root).expect("cache reopens"));
    let opts = SweepOptions {
        cache: Some(Arc::clone(&cache)),
        cache_verify: true,
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&spec, &opts).expect("verify sweep runs");
    let report = build_report(&outcome);
    assert_eq!((report.to_json(), report.to_csv()), reference);
    let verified = cache.stats();
    assert_eq!(verified.hits, cold.stores);
    assert_eq!(verified.verify_failures, 0);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cache_verify_aborts_on_a_forged_consistent_entry() {
    // Forge an entry that passes every CAS-layer check (we rewrite it
    // through the store itself) but whose payload is a doctored blob.
    // Plain reads would serve it if the blob still parses under the
    // right fingerprint — `--cache-verify` is the mode that catches
    // exactly this, by recomputing and byte-comparing.
    let spec = SweepSpec::parse(SPEC).expect("spec parses");
    let root = tmp_root("forge");
    let cache = Arc::new(ShardCache::open(&root).expect("cache opens"));
    run_with_cache(&spec, &cache);

    // Doctor one stored blob via the text layer: flip the last mantissa
    // digit of an `est` line's mean (floats are stored as f64 hex bits)
    // so the blob still parses cleanly with the correct fingerprint,
    // cell count, and histogram invariants — only the statistics lie.
    let file = entry_files(&cache).remove(0);
    let text = std::fs::read_to_string(&file).expect("entry readable");
    let est = text.find("\nest ").expect("blob has an est line") + 1;
    let mean_end = est
        + text[est..]
            .splitn(4, ' ')
            .take(3)
            .map(|f| f.len() + 1)
            .sum::<usize>()
        - 1;
    let mut forged: Vec<u8> = text.into_bytes();
    forged[mean_end - 1] = if forged[mean_end - 1] == b'7' {
        b'8'
    } else {
        b'7'
    };
    // Re-store the doctored entry through the CAS rules: read the
    // original key from line 2, then re-put the doctored payload.
    let forged = String::from_utf8(forged).expect("still utf-8");
    let mut lines = forged.splitn(3, '\n');
    let _header = lines.next().expect("header line");
    let key = lines.next().expect("key line").to_string();
    let payload = lines.next().expect("payload").to_string();
    let store =
        antdensity_cas::Store::open(&root, antdensity_sweep::schema::SHARD_CACHE_V1).unwrap();
    store.put(&key, &payload).expect("forged put");

    let opts = SweepOptions {
        cache: Some(Arc::new(ShardCache::open(&root).expect("cache reopens"))),
        cache_verify: true,
        ..SweepOptions::default()
    };
    let err = run_sweep(&spec, &opts).expect_err("verify must refuse the forged entry");
    assert!(err.contains("cache-verify"), "{err}");

    let _ = std::fs::remove_dir_all(&root);
}
