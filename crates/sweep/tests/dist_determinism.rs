//! The distributed determinism contract: a sweep executed through the
//! coordinator/worker runtime produces **byte-identical** reports to
//! the in-process runner — across worker counts, seeded fault plans
//! (kills, drops, delays, corruption, duplicates), degradation to
//! in-process execution, kill-the-coordinator/resume, and transports.
//!
//! Everything here runs on the discrete-event simulator (virtual
//! clock, zero wall-time dependence) except the TCP loopback test,
//! which drives the real runtime with worker threads in this process.
//! Same `FaultPlan` + seed ⇒ same lease/failure/re-issue schedule ⇒
//! same coordinator log, byte for byte — also pinned here.

use antdensity_sweep::dist::{self, DistConfig, DistOptions, FaultPlan, Transport};
use antdensity_sweep::{
    build_report, run_sweep, run_sweep_distributed, DistError, SweepOptions, SweepSpec,
};
use std::path::PathBuf;

fn spec() -> SweepSpec {
    antdensity_telemetry::set_enabled(true);
    // Same heterogeneous grid as tests/determinism.rs: 4+ fused shards,
    // multiple cells per shard, every aggregate path exercised.
    SweepSpec::parse(
        "
        name = dist_det
        seed = 20160725
        trials = 2
        topology = torus2d:8, complete:64
        density = 0.1, 0.3
        rounds = 4, 6
        estimator = alg1, alg4, quorum:0.05, relfreq:0.5
        noise = none
        ",
    )
    .unwrap()
}

fn tmp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "antdensity_dist_det_{}_{tag}.ckpt",
        std::process::id()
    ))
}

/// Runs the sweep distributed over the simulator and asserts the
/// outcome is byte-identical to `reference`'s report.
fn assert_sim_matches(
    spec: &SweepSpec,
    reference: &antdensity_sweep::SweepOutcome,
    workers: usize,
    plan: &str,
    label: &str,
) -> dist::DistStats {
    let plan = FaultPlan::parse(plan).unwrap();
    let (outcome, stats) = run_sweep_distributed(
        spec,
        &SweepOptions::default(),
        &DistOptions::sim(workers, plan),
    )
    .unwrap_or_else(|e| panic!("{label}: distributed run failed: {e}"));
    assert!(outcome.complete, "{label}");
    assert_eq!(outcome.aggregates, reference.aggregates, "{label}");
    let (r, d) = (build_report(reference), build_report(&outcome));
    assert_eq!(r.to_json(), d.to_json(), "{label}");
    assert_eq!(r.to_csv(), d.to_csv(), "{label}");
    stats
}

#[test]
fn sim_matches_in_process_across_worker_counts() {
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    assert!(reference.complete);
    for workers in [1usize, 2, 4, 8] {
        let stats = assert_sim_matches(&spec, &reference, workers, "", &format!("w={workers}"));
        assert_eq!(stats.reissues, 0);
        assert_eq!(stats.deaths, 0);
        let shards = reference.resolved.fused.len() as u64;
        assert_eq!(stats.leases, shards, "one lease per shard, no faults");
        assert_eq!(
            stats.workers_seen, workers as u64,
            "every worker says HELLO"
        );
    }
}

#[test]
fn seeded_fault_plans_never_change_report_bytes() {
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();

    // Worker kill: the holder of global lease 3 dies mid-compute, is
    // respawned, and the shard is re-issued.
    let stats = assert_sim_matches(&spec, &reference, 3, "kill:lease3", "kill");
    assert_eq!(stats.deaths, 1, "kill plan must fire");
    assert!(stats.reissues >= 1);
    assert_eq!(stats.respawns, 1);

    // Message drop: the first RESULT never arrives; the lease expires
    // by heartbeat silence and the shard is re-issued.
    let stats = assert_sim_matches(&spec, &reference, 3, "drop:RESULT@1", "drop");
    assert!(stats.reissues >= 1, "dropped result must force a re-issue");

    // Duplicate result: the first RESULT is delivered twice; the copy
    // is byte-equal, so it is counted and discarded, never re-merged.
    let stats = assert_sim_matches(&spec, &reference, 3, "dup:RESULT@1", "dup");
    assert_eq!(stats.duplicates, 1);

    // Corrupted frame: detected by checksum, counted, recovered by
    // lease expiry + re-issue.
    let stats = assert_sim_matches(&spec, &reference, 3, "corrupt:RESULT@1", "corrupt");
    assert_eq!(stats.bad_frames, 1);
    assert!(stats.reissues >= 1);

    // Straggler: the first RESULT is delayed past the heartbeat
    // timeout, so its shard is re-issued — but the late answer still
    // arrives first and wins as the first valid result, making the
    // re-issued worker's answer a byte-equal duplicate. The second
    // delay keeps another shard outstanding so the duplicate lands
    // mid-run (a finished coordinator ignores everything).
    let stats = assert_sim_matches(
        &spec,
        &reference,
        3,
        "delay:RESULT@1:2200,delay:RESULT@6:3000",
        "delay",
    );
    assert!(stats.reissues >= 2);
    assert_eq!(
        stats.duplicates, 1,
        "late duplicate must be compared, not merged"
    );

    // Compound schedule across several verbs at once.
    let stats = assert_sim_matches(
        &spec,
        &reference,
        4,
        "kill:lease2,drop:RESULT@3,corrupt:HEARTBEAT@1,dup:RESULT@4",
        "compound",
    );
    assert!(stats.deaths >= 1 && stats.reissues >= 2);
}

#[test]
fn persistent_failure_degrades_to_in_process_with_identical_bytes() {
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    // w0 dies on its first lease in every incarnation (per-process
    // ordinals reset on respawn), exhausting the respawn budget; the
    // sole slot is lost and the coordinator degrades.
    let stats = assert_sim_matches(&spec, &reference, 1, "kill:w0@lease1", "degrade");
    let cfg = DistConfig::default();
    assert_eq!(stats.respawns, cfg.max_respawns);
    assert_eq!(stats.deaths, cfg.max_respawns + 1);
    assert_eq!(
        stats.degraded,
        reference.resolved.fused.len() as u64,
        "every shard must fall back in-process"
    );
}

#[test]
fn same_plan_same_seed_same_schedule() {
    // The determinism of the fault harness itself: identical
    // (plan, seed, config) ⇒ identical coordinator event log and
    // stats, byte for byte — no wall clock anywhere.
    let spec = spec();
    let resolved = spec.resolve(true).unwrap();
    let pending: Vec<usize> = (0..resolved.fused.len()).collect();
    let plan = FaultPlan::parse("kill:lease2,drop:RESULT@2,delay:HEARTBEAT@3:700").unwrap();
    let cfg = DistConfig::default();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut blobs: Vec<(u64, String)> = Vec::new();
        let out = dist::sim::run_sim(&resolved, &pending, true, 3, &plan, &cfg, &mut |s, b| {
            blobs.push((s, b.to_string()));
            Ok(())
        })
        .unwrap();
        runs.push((out.log, out.stats, blobs));
    }
    assert_eq!(
        runs[0].0, runs[1].0,
        "coordinator logs must replay identically"
    );
    assert_eq!(runs[0].1, runs[1].1);
    assert_eq!(
        runs[0].2, runs[1].2,
        "blob completion order must replay identically"
    );
    assert!(!runs[0].0.is_empty());
}

#[test]
fn byzantine_duplicate_aborts_with_mismatch_report() {
    // dup:RESULT@1 re-delivers the first result; lie:RESULT@2 tampers
    // that copy (valid blob, different bytes). With several shards
    // still outstanding the coordinator must abort, naming the shard
    // and the first differing byte — never silently merge either blob.
    let spec = spec();
    let plan = FaultPlan::parse("dup:RESULT@1,lie:RESULT@2").unwrap();
    let err = run_sweep_distributed(&spec, &SweepOptions::default(), &DistOptions::sim(2, plan))
        .unwrap_err();
    match err {
        DistError::Mismatch { report, .. } => {
            assert!(report.contains("first_diff_at="), "report: {report}");
            assert!(report.contains("first_len="), "report: {report}");
        }
        DistError::Failed(e) => panic!("wanted Mismatch, got Failed: {e}"),
    }
}

#[test]
fn kill_coordinator_and_resume_matches_either_way() {
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    let n = reference.resolved.fused.len();
    assert!(n >= 4);

    // Distributed partial (the "coordinator was killed" state is the
    // checkpoint file), resumed in-process.
    let ckpt = tmp_ckpt("dist_then_local");
    let _ = std::fs::remove_file(&ckpt);
    let opts_partial = SweepOptions {
        checkpoint: Some(ckpt.clone()),
        max_shards: Some(2),
        checkpoint_every: 1,
        ..SweepOptions::default()
    };
    let (partial, _) = run_sweep_distributed(
        &spec,
        &opts_partial,
        &DistOptions::sim(2, FaultPlan::parse("kill:lease2").unwrap()),
    )
    .unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.executed, 2);
    let resumed = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint: Some(ckpt.clone()),
            resume: true,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.resumed, 2, "only incomplete shards may re-run");
    assert_eq!(resumed.executed, n - 2);
    assert_eq!(resumed.aggregates, reference.aggregates);
    let _ = std::fs::remove_file(&ckpt);

    // In-process partial, resumed distributed (under a fault plan).
    let ckpt = tmp_ckpt("local_then_dist");
    let _ = std::fs::remove_file(&ckpt);
    let partial = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint: Some(ckpt.clone()),
            max_shards: Some(1),
            checkpoint_every: 1,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(!partial.complete);
    let opts_resume = SweepOptions {
        checkpoint: Some(ckpt.clone()),
        resume: true,
        ..SweepOptions::default()
    };
    let (resumed, stats) = run_sweep_distributed(
        &spec,
        &opts_resume,
        &DistOptions::sim(3, FaultPlan::parse("drop:RESULT@1").unwrap()),
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.resumed, 1);
    assert_eq!(resumed.executed, n - 1);
    assert_eq!(
        stats.leases as usize,
        (n - 1) + stats.reissues as usize,
        "leases only for incomplete shards (plus re-issues)"
    );
    assert_eq!(resumed.aggregates, reference.aggregates);
    let report = build_report(&resumed);
    let ref_report = build_report(&reference);
    assert_eq!(report.to_json(), ref_report.to_json());
    assert_eq!(report.to_csv(), ref_report.to_csv());
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn tcp_loopback_real_runtime_matches_in_process() {
    // The one wall-clock test: a listening coordinator and two worker
    // threads speaking real frames over loopback TCP. Byte-identity
    // must hold on the real transport, not just the simulator.
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    let spec_text = "
        name = dist_det
        seed = 20160725
        trials = 2
        topology = torus2d:8, complete:64
        density = 0.1, 0.3
        rounds = 4, 6
        estimator = alg1, alg4, quorum:0.05, relfreq:0.5
        noise = none
        ";
    let port = 20000 + (std::process::id() % 20000) as u16;
    let addr = format!("127.0.0.1:{port}");
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                // The listener comes up concurrently; retry briefly.
                for _ in 0..100 {
                    match dist::runtime::run_worker_connect(&addr, None) {
                        Ok(()) => return Ok(()),
                        Err(e) if e.contains("cannot connect") => {
                            std::thread::sleep(std::time::Duration::from_millis(20));
                        }
                        Err(e) => return Err(e),
                    }
                }
                Err("listener never came up".to_string())
            })
        })
        .collect();
    let dopts = DistOptions {
        transport: Transport::Listen { addr: addr.clone() },
        plan: FaultPlan::none(),
        config: DistConfig::default(),
        spec_text: Some(spec_text.to_string()),
        worker_argv: None,
    };
    let (outcome, stats) = run_sweep_distributed(&spec, &SweepOptions::default(), &dopts).unwrap();
    for w in workers {
        w.join().unwrap().unwrap();
    }
    assert!(outcome.complete);
    assert_eq!(stats.workers_seen, 2);
    assert_eq!(outcome.aggregates, reference.aggregates);
    let (r, d) = (build_report(&reference), build_report(&outcome));
    assert_eq!(r.to_json(), d.to_json());
    assert_eq!(r.to_csv(), d.to_csv());
}
