//! The sweep determinism contract, post-observer-pipeline:
//!
//! 1. a full run and a run-kill-at-shard-k-then-resume run produce
//!    **bit-identical** aggregates and byte-identical reports, for every
//!    kill point and every worker count (checkpoints never change
//!    science);
//! 2. fused execution (one simulation pass per shard feeding every
//!    estimator and rounds-checkpoint) and unfused execution (one pass
//!    per cell) produce **bit-identical** aggregates and byte-identical
//!    reports (fusion never changes science either — it only deletes
//!    redundant work).

use antdensity_engine::WorkerPool;
use antdensity_sweep::dist::{DistOptions, FaultPlan};
use antdensity_sweep::{
    build_report, run_sweep, run_sweep_distributed, CheckpointLock, DistError, SweepOptions,
    SweepSpec,
};
use std::path::PathBuf;
use std::sync::Arc;

/// Every test in this suite runs with telemetry and trace capture
/// fully enabled: the bit-identity assertions below are the enforcement
/// of the "telemetry observes, never influences" guarantee, exercised
/// on the kill/resume and fusion paths. (The flag is process-global;
/// tests here never turn it off, so concurrent test threads all run
/// instrumented.)
fn spec() -> SweepSpec {
    antdensity_telemetry::set_enabled(true);
    antdensity_telemetry::set_tracing(true);
    // Small but heterogeneous: two topologies, two densities, three
    // estimator families, a rounds axis to fuse, optional noise — every
    // aggregate path (est/err/hist/within/aux) and both fusion families
    // exercised.
    SweepSpec::parse(
        "
        name = determinism
        seed = 20160725
        trials = 2
        topology = torus2d:8, complete:64
        density = 0.1, 0.3
        rounds = 4, 6
        estimator = alg1, alg4, quorum:0.05, relfreq:0.5
        noise = none
        ",
    )
    .unwrap()
}

fn tmp_ckpt(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "antdensity_sweep_det_{}_{tag}.ckpt",
        std::process::id()
    ))
}

#[test]
fn full_equals_kill_and_resume_bit_for_bit_across_worker_counts() {
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    assert!(reference.complete);
    // shards are the unit of kill/resume now — the fused plan
    let n = reference.resolved.fused.len();
    assert!(n >= 4, "grid should fuse into several shards, got {n}");
    assert!(
        reference.aggregates.len() > n,
        "fusion must pack multiple cells per shard"
    );
    let ref_report = build_report(&reference);
    let (ref_json, ref_csv) = (ref_report.to_json(), ref_report.to_csv());

    for workers in [1usize, 2, 4] {
        let pool = Arc::new(WorkerPool::new(workers));
        for k in [1, n / 2, n - 1] {
            let ckpt = tmp_ckpt(&format!("{workers}_{k}"));
            let _ = std::fs::remove_file(&ckpt);

            // phase 1: "killed" after k shards (the checkpoint survives)
            let partial = run_sweep(
                &spec,
                &SweepOptions {
                    workers,
                    pool: Some(Arc::clone(&pool)),
                    checkpoint: Some(ckpt.clone()),
                    max_shards: Some(k),
                    checkpoint_every: 2,
                    ..SweepOptions::default()
                },
            )
            .unwrap();
            assert!(!partial.complete);
            assert_eq!(partial.executed, k);

            // phase 2: resume with a *different* worker count
            let resumed = run_sweep(
                &spec,
                &SweepOptions {
                    workers: workers + 1,
                    pool: Some(Arc::new(WorkerPool::new(workers + 1))),
                    checkpoint: Some(ckpt.clone()),
                    resume: true,
                    checkpoint_every: 3,
                    ..SweepOptions::default()
                },
            )
            .unwrap();
            assert!(resumed.complete, "workers={workers} k={k}");
            assert_eq!(resumed.resumed, k);
            assert_eq!(resumed.executed, n - k);

            // bit-identical aggregates (moments, histograms, counters)…
            assert_eq!(
                resumed.aggregates, reference.aggregates,
                "workers={workers} k={k}"
            );
            // …and byte-identical reports
            let report = build_report(&resumed);
            assert_eq!(report.to_json(), ref_json, "workers={workers} k={k}");
            assert_eq!(report.to_csv(), ref_csv, "workers={workers} k={k}");

            let _ = std::fs::remove_file(&ckpt);
        }
    }
}

#[test]
fn resume_from_every_checkpoint_file_state_is_exact() {
    // Drive the sweep one shard at a time, reloading the checkpoint
    // from disk between every step — the file (not process memory) is
    // the only carrier of state, as after a real kill -9.
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    let n = reference.resolved.fused.len();
    let ckpt = tmp_ckpt("stepwise");
    let _ = std::fs::remove_file(&ckpt);

    let mut last = None;
    for step in 0..n {
        let out = run_sweep(
            &spec,
            &SweepOptions {
                checkpoint: Some(ckpt.clone()),
                resume: true,
                max_shards: Some(1),
                checkpoint_every: 1,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.resumed, step);
        assert_eq!(out.executed, 1);
        last = Some(out);
    }
    let last = last.unwrap();
    assert!(last.complete);
    assert_eq!(last.aggregates, reference.aggregates);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn checkpoint_every_and_pool_choice_never_change_results() {
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    for every in [1usize, 5, 64] {
        let out = run_sweep(
            &spec,
            &SweepOptions {
                checkpoint_every: every,
                workers: 3,
                pool: Some(Arc::new(WorkerPool::new(2))),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(out.aggregates, reference.aggregates, "every={every}");
    }
}

/// The fusion determinism contract, end to end: fused and unfused
/// execution agree bit-for-bit on aggregates and byte-for-byte on
/// reports — across worker counts, and mixed freely with kill/resume
/// (a sweep may even be *started* fused and *finished* unfused).
#[test]
fn fused_equals_unfused_bit_for_bit() {
    let spec = spec();
    let fused = run_sweep(&spec, &SweepOptions::default()).unwrap();
    let unfused = run_sweep(
        &spec,
        &SweepOptions {
            fuse: false,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(fused.complete && unfused.complete);
    assert_eq!(fused.aggregates, unfused.aggregates);
    assert!(
        unfused.simulated_rounds > fused.simulated_rounds,
        "fusion must delete simulation work: {} vs {}",
        fused.simulated_rounds,
        unfused.simulated_rounds
    );
    let (f, u) = (build_report(&fused), build_report(&unfused));
    assert_eq!(f.to_json(), u.to_json());
    assert_eq!(f.to_csv(), u.to_csv());

    // kill fused, resume unfused: still identical
    let ckpt = tmp_ckpt("fuse_mix");
    let _ = std::fs::remove_file(&ckpt);
    let partial = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint: Some(ckpt.clone()),
            max_shards: Some(2),
            checkpoint_every: 1,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(!partial.complete);
    let resumed = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint: Some(ckpt.clone()),
            resume: true,
            fuse: false,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.aggregates, fused.aggregates);
    let _ = std::fs::remove_file(&ckpt);
}

/// Two coordinators must never interleave writes on one checkpoint:
/// whoever holds `<ckpt>.lock` wins, the other fails loudly before
/// touching anything — in-process and distributed runners alike.
#[test]
fn concurrent_coordinators_on_one_checkpoint_fail_loudly() {
    let spec = spec();
    let ckpt = tmp_ckpt("locked");
    let _ = std::fs::remove_file(&ckpt);
    let held = CheckpointLock::acquire(&ckpt).unwrap();

    let opts = SweepOptions {
        checkpoint: Some(ckpt.clone()),
        ..SweepOptions::default()
    };
    let err = run_sweep(&spec, &opts).unwrap_err();
    assert!(err.contains("locked by running process"), "{err}");

    let err =
        run_sweep_distributed(&spec, &opts, &DistOptions::sim(2, FaultPlan::none())).unwrap_err();
    match err {
        DistError::Failed(e) => assert!(e.contains("locked by running process"), "{e}"),
        DistError::Mismatch { .. } => panic!("lock contention is not a mismatch"),
    }

    // Releasing the lock unblocks the next coordinator.
    drop(held);
    let out = run_sweep(&spec, &opts).unwrap();
    assert!(out.complete);
    let _ = std::fs::remove_file(&ckpt);
}

/// The `--max-shards` + `--resume` regression: a budgeted partial run
/// plus a resume re-executes exactly the shards the checkpoint lacks —
/// never finished ones — and a resume of a complete sweep runs nothing.
#[test]
fn max_shards_budget_then_resume_executes_only_the_remainder() {
    let spec = spec();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    let n = reference.resolved.fused.len();
    let ckpt = tmp_ckpt("budget");
    let _ = std::fs::remove_file(&ckpt);

    let partial = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint: Some(ckpt.clone()),
            max_shards: Some(2),
            checkpoint_every: 1,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(!partial.complete);
    assert_eq!(partial.executed, 2);

    let resumed = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint: Some(ckpt.clone()),
            resume: true,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.complete);
    assert_eq!(resumed.resumed, 2, "finished shards must not re-run");
    assert_eq!(resumed.executed, n - 2);
    assert_eq!(resumed.aggregates, reference.aggregates);

    // Resuming a complete sweep is a no-op execution-wise.
    let again = run_sweep(
        &spec,
        &SweepOptions {
            checkpoint: Some(ckpt.clone()),
            resume: true,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(again.complete);
    assert_eq!(again.resumed, n);
    assert_eq!(again.executed, 0);
    assert_eq!(again.aggregates, reference.aggregates);
    let _ = std::fs::remove_file(&ckpt);
}

/// The determinism contract extends unchanged to the pluggable CSR
/// topologies: generated graphs are pure functions of their spec (never
/// of the sweep seed or the process), so kill/resume lands on
/// bit-identical aggregates and byte-identical reports — including the
/// measured-spectral-gap bound column.
#[test]
fn csr_shards_kill_resume_bit_for_bit() {
    let spec = SweepSpec::parse(
        "
        name = csr_det
        seed = 7
        trials = 2
        topology = csr:cliquering:4:4, csr:grid-holes:8:3:0.25, csr:regular:24:4
        density = 0.2
        rounds = 4, 8
        estimator = alg1, quorum:0.1
        ",
    )
    .unwrap();
    let reference = run_sweep(&spec, &SweepOptions::default()).unwrap();
    assert!(reference.complete);
    let n = reference.resolved.fused.len();
    assert!(n >= 3, "one fused shard per csr topology, got {n}");
    let ref_report = build_report(&reference);

    for k in 1..n {
        let ckpt = tmp_ckpt(&format!("csr_{k}"));
        let _ = std::fs::remove_file(&ckpt);
        let partial = run_sweep(
            &spec,
            &SweepOptions {
                checkpoint: Some(ckpt.clone()),
                max_shards: Some(k),
                checkpoint_every: 1,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(!partial.complete);
        let resumed = run_sweep(
            &spec,
            &SweepOptions {
                workers: 3,
                pool: Some(Arc::new(WorkerPool::new(3))),
                checkpoint: Some(ckpt.clone()),
                resume: true,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert!(resumed.complete, "k={k}");
        assert_eq!(resumed.aggregates, reference.aggregates, "k={k}");
        let report = build_report(&resumed);
        assert_eq!(report.to_json(), ref_report.to_json(), "k={k}");
        assert_eq!(report.to_csv(), ref_report.to_csv(), "k={k}");
        let _ = std::fs::remove_file(&ckpt);
    }

    // fused == unfused over CSR topologies too
    let unfused = run_sweep(
        &spec,
        &SweepOptions {
            fuse: false,
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert_eq!(unfused.aggregates, reference.aggregates);
}
