//! Typed sweep jobs: the one validated entry point shared by the CLI
//! and the serve daemon's wire protocol.
//!
//! `repro sweep SPEC --quick` and a `{"op": "submit", ...}` line sent
//! to `repro serve` must mean exactly the same thing — same spec
//! parser, same resolution, same structured errors, and (because a
//! resolved spec carries its own seed and shard streams) the same
//! result bytes. [`SweepJob`] is that shared meaning: both front ends
//! build one, call [`SweepJob::validate`], and hand the
//! [`ValidatedJob`] to a runner. Neither layer re-implements spec
//! handling, so they cannot drift.

use crate::runner::{run_sweep_observed, ShardObserver, SweepOptions, SweepOutcome};
use crate::spec::{ResolvedSweep, SweepSpec};

/// A density-estimation job: everything that determines the result
/// bytes, nothing that doesn't. Transport- and invocation-agnostic —
/// the CLI wraps one in a `SweepRequest` (adding output paths and
/// checkpoint policy), the serve daemon deserializes one straight off
/// the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepJob {
    /// The sweep spec file's text, verbatim.
    pub spec_text: String,
    /// Resolve the quick (CI smoke) grid instead of the full one. Part
    /// of the fingerprint.
    pub quick: bool,
    /// Fused shard execution (default). `false` is the bit-identity
    /// cross-check path — strictly more work, same bytes.
    pub fuse: bool,
    /// Replace the spec's master seed. The equivalent CLI run is the
    /// same spec file with its `seed =` line edited, which is how a
    /// serve client launches independent replicas of one committed
    /// spec without rewriting it.
    pub seed_override: Option<u64>,
}

impl SweepJob {
    /// A job for `spec_text` with CLI-default execution flags (full
    /// mode, fused, the spec's own seed).
    pub fn new(spec_text: impl Into<String>) -> Self {
        Self {
            spec_text: spec_text.into(),
            quick: false,
            fuse: true,
            seed_override: None,
        }
    }

    /// The spec text this job actually runs: verbatim, or with the
    /// `seed =` line rewritten when [`Self::seed_override`] is set.
    /// Materialized as *text* (not a field patch) so the distributed
    /// backend can ship it to workers in the `SPEC` handshake and have
    /// them resolve the identical fingerprint.
    pub fn effective_spec_text(&self) -> String {
        let Some(seed) = self.seed_override else {
            return self.spec_text.clone();
        };
        let mut out = String::new();
        for line in self.spec_text.lines() {
            let key = line.trim_start();
            let is_seed = key
                .strip_prefix("seed")
                .is_some_and(|rest| rest.trim_start().starts_with('='));
            if !is_seed {
                out.push_str(line);
                out.push('\n');
            }
        }
        out.push_str(&format!("seed = {seed}\n"));
        out
    }

    /// Parses the spec text, applying the seed override.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Spec`] with the parser's message.
    pub fn parse_spec(&self) -> Result<SweepSpec, JobError> {
        SweepSpec::parse(&self.effective_spec_text()).map_err(JobError::Spec)
    }

    /// Parses *and* resolves: the full admission check. A job that
    /// validates will run; one that doesn't is rejected with the same
    /// message whether it arrived via argv or the wire.
    ///
    /// # Errors
    ///
    /// [`JobError::Spec`] for parse failures, [`JobError::Resolve`]
    /// when the grid does not resolve (e.g. every combination skipped).
    pub fn validate(&self) -> Result<ValidatedJob, JobError> {
        let spec = self.parse_spec()?;
        let resolved = spec.resolve(self.quick).map_err(JobError::Resolve)?;
        Ok(ValidatedJob { spec, resolved })
    }
}

/// A job that passed admission: the parsed spec plus its resolved grid
/// (cell list, fused shards, fingerprint). Running it is now
/// infallible up to I/O.
#[derive(Debug, Clone)]
pub struct ValidatedJob {
    /// The parsed spec (seed override already applied).
    pub spec: SweepSpec,
    /// The resolved grid the job will execute.
    pub resolved: ResolvedSweep,
}

impl ValidatedJob {
    /// Executes the job in-process on `opts`' pool, streaming each
    /// completed shard's cell aggregates through `on_shard` (return
    /// `false` to cancel between shards). Ephemeral by construction:
    /// no checkpoint, no resume — a serve job that dies is simply
    /// resubmitted, and its bytes are guaranteed by purity, not by
    /// disk state.
    ///
    /// # Errors
    ///
    /// Propagates runner failures as displayable messages.
    pub fn run_streaming(
        &self,
        job: &SweepJob,
        workers: usize,
        on_shard: &mut ShardObserver<'_>,
    ) -> Result<SweepOutcome, String> {
        self.run_streaming_with(job, workers, None, on_shard)
    }

    /// [`ValidatedJob::run_streaming`] with a shard result cache: the
    /// daemon threads its process-wide cache through here so every
    /// executor (and repeated or grid-overlapping client specs) shares
    /// one store. Checkpoint and resume stay off — the cache is the
    /// ephemeral-job replacement for both.
    ///
    /// # Errors
    ///
    /// Propagates runner failures as displayable messages.
    pub fn run_streaming_with(
        &self,
        job: &SweepJob,
        workers: usize,
        cache: Option<std::sync::Arc<crate::cache::ShardCache>>,
        on_shard: &mut ShardObserver<'_>,
    ) -> Result<SweepOutcome, String> {
        let opts = SweepOptions {
            quick: job.quick,
            fuse: job.fuse,
            workers,
            // One shard per wave: cancellation and row streaming both
            // act at shard granularity.
            checkpoint_every: 1,
            cache,
            ..SweepOptions::default()
        };
        run_sweep_observed(&self.spec, &opts, on_shard)
    }
}

/// Why a job was refused at admission. One error vocabulary for both
/// front ends: the CLI maps these to usage exits, the daemon to
/// `rejected` events carrying the same text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The spec text failed to parse.
    Spec(String),
    /// The spec parsed but its grid did not resolve.
    Resolve(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Spec(e) => write!(f, "sweep spec: {e}"),
            JobError::Resolve(e) => write!(f, "sweep spec does not resolve: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_sweep;

    const SPEC: &str = "
        name = job_test
        seed = 5
        trials = 2
        topology = torus2d:8, complete:64
        density = 0.1
        rounds = 8, 16
        estimator = alg1
        ";

    #[test]
    fn validate_accepts_and_rejects_like_the_parser() {
        let ok = SweepJob::new(SPEC).validate().unwrap();
        assert_eq!(ok.resolved.cells.len(), 4);
        assert_eq!(ok.resolved.fused.len(), 2);
        let err = SweepJob::new("trials = 1").validate().unwrap_err();
        assert!(matches!(err, JobError::Spec(_)));
        assert!(err.to_string().contains("missing required key"));
    }

    #[test]
    fn seed_override_changes_fingerprint_like_an_edited_spec() {
        let base = SweepJob::new(SPEC).validate().unwrap();
        let mut job = SweepJob::new(SPEC);
        job.seed_override = Some(99);
        let overridden = job.validate().unwrap();
        assert_ne!(base.resolved.fingerprint, overridden.resolved.fingerprint);
        assert_eq!(overridden.spec.seed, 99);
        // identical to textually editing the seed line
        let edited = SweepJob::new(SPEC.replace("seed = 5", "seed = 99"))
            .validate()
            .unwrap();
        assert_eq!(overridden.resolved.fingerprint, edited.resolved.fingerprint);
    }

    #[test]
    fn streaming_run_matches_run_sweep_and_cancels() {
        let job = SweepJob::new(SPEC);
        let validated = job.validate().unwrap();
        let mut shards_seen = Vec::new();
        let full = validated
            .run_streaming(&job, 2, &mut |_, idx, cells| {
                shards_seen.push((idx, cells.len()));
                true
            })
            .unwrap();
        assert!(full.complete);
        assert_eq!(shards_seen.len(), 2);
        let reference = run_sweep(&validated.spec, &SweepOptions::default()).unwrap();
        assert_eq!(full.aggregates, reference.aggregates);
        // cancelling after the first shard leaves a partial outcome
        let partial = validated
            .run_streaming(&job, 2, &mut |_, _, _| false)
            .unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.executed, 1);
    }
}
