//! Sweep reports: terminal table, CSV, and JSON.
//!
//! One row per completed cell, in shard order. Alongside the measured
//! aggregates each row carries the paper's predicted error bound for
//! the cell (`antdensity_core::theory::predicted_epsilon`, unit
//! constants) where the paper has one — so a committed spec
//! regenerates an accuracy table with theory and measurement side by
//! side. All output is a deterministic function of the aggregates,
//! which is what lets the determinism suite compare resumed runs
//! byte-for-byte.

use crate::runner::SweepOutcome;
use crate::spec::SkippedCell;
use antdensity_core::theory::theory_bound;
use antdensity_stats::table::{format_sig, Table};
use std::path::{Path, PathBuf};

/// One completed cell's report row.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Shard index.
    pub index: usize,
    /// Topology axis token.
    pub topology: String,
    /// Density axis value.
    pub density: f64,
    /// Agents placed.
    pub agents: usize,
    /// Rounds per trial.
    pub rounds: u64,
    /// Estimator token (resolved form).
    pub estimator: String,
    /// Movement token.
    pub movement: String,
    /// Noise token.
    pub noise: String,
    /// Trials recorded.
    pub trials: u64,
    /// Error samples pooled (agents × trials, minus undefined).
    pub samples: u64,
    /// Mean per-agent estimate.
    pub est_mean: f64,
    /// Std-dev of per-agent estimates.
    pub est_sd: f64,
    /// Mean relative error.
    pub err_mean: f64,
    /// Median relative error (histogram resolution); `None` when the
    /// cell recorded no error samples.
    pub err_median: Option<f64>,
    /// `(1 − delta)`-quantile of the relative error; `None` when the
    /// cell recorded no error samples.
    pub err_q: Option<f64>,
    /// Fraction of samples with error within the band.
    pub within: f64,
    /// Paper-predicted error bound (unit constants), where applicable.
    pub bound: Option<f64>,
    /// How the bound was derived: `closed-form` (a paper theorem for
    /// the topology), `measured-gap` (numeric spectral-gap surrogate —
    /// the path every `csr:*` graph takes), or empty when no bound
    /// applies.
    pub bound_src: &'static str,
    /// Estimator-specific mean (quorum accuracy / mean `f̃`).
    pub aux_mean: Option<f64>,
}

/// A rendered-ready sweep report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Sweep name (output-file stem).
    pub name: String,
    /// `quick` or `full`.
    pub mode: &'static str,
    /// Master seed.
    pub seed: u64,
    /// Trials per cell.
    pub trials: u64,
    /// Within-band threshold.
    pub band: f64,
    /// Quantile/bound failure probability.
    pub delta: f64,
    /// Whether every shard completed.
    pub complete: bool,
    /// Total cells in the grid.
    pub total_cells: usize,
    /// Dropped combinations.
    pub skipped: Vec<SkippedCell>,
    /// Completed-cell rows in shard order.
    pub rows: Vec<SweepRow>,
}

/// Builds one cell's report row from its aggregate — the unit
/// [`build_report`] assembles and the serve daemon streams as each
/// shard lands. Deterministic in `(resolved, cell_idx, agg)`.
///
/// # Panics
///
/// Panics if `cell_idx` is out of range.
pub fn build_row(
    resolved: &crate::spec::ResolvedSweep,
    cell_idx: usize,
    agg: &crate::aggregate::CellAggregate,
) -> SweepRow {
    let cell = &resolved.cells[cell_idx];
    let q_hi = 1.0 - resolved.delta;
    let d_true = cell.true_density();
    let bound = theory_bound(
        cell.topology,
        &cell.estimator,
        cell.rounds,
        d_true,
        resolved.delta,
    );
    SweepRow {
        index: cell.index,
        topology: cell.topology.to_string(),
        density: cell.density,
        agents: cell.num_agents,
        rounds: cell.rounds,
        estimator: cell.estimator.to_string(),
        movement: cell.movement.to_string(),
        noise: cell.noise_label(),
        trials: agg.trials,
        samples: agg.err.count(),
        est_mean: agg.est.mean(),
        est_sd: agg.est.std_dev(),
        err_mean: agg.err.mean(),
        // A cell can legitimately record zero error samples
        // (e.g. relative frequency with no observed collisions:
        // every f̃ undefined) — report empty quantiles, don't
        // panic after all the compute is done.
        err_median: (agg.err.count() > 0).then(|| agg.err_quantile(0.5)),
        err_q: (agg.err.count() > 0).then(|| agg.err_quantile(q_hi)),
        within: agg.within_fraction(),
        bound: bound.epsilon,
        bound_src: bound.source.as_str(),
        aux_mean: (agg.aux.count() > 0).then(|| agg.aux.mean()),
    }
}

/// Builds the report for a (possibly partial) sweep outcome.
pub fn build_report(outcome: &SweepOutcome) -> SweepReport {
    let resolved = &outcome.resolved;
    let rows = resolved
        .cells
        .iter()
        .zip(&outcome.aggregates)
        .filter_map(|(cell, agg)| {
            let agg = agg.as_ref()?;
            Some(build_row(resolved, cell.index, agg))
        })
        .collect();
    SweepReport {
        name: resolved.name.clone(),
        mode: resolved.mode,
        seed: resolved.seed,
        trials: resolved.trials,
        band: resolved.band,
        delta: resolved.delta,
        complete: outcome.complete,
        total_cells: resolved.cells.len(),
        skipped: resolved.skipped.clone(),
        rows,
    }
}

impl SweepReport {
    /// Renders the terminal table plus headline lines.
    pub fn render(&self) -> String {
        let q_label = format!("err_q{:02}", ((1.0 - self.delta) * 100.0).round() as u64);
        let mut t = Table::new(
            &format!("sweep {} ({} mode)", self.name, self.mode),
            &[
                "topology",
                "d",
                "t",
                "estimator",
                "movement",
                "noise",
                "est_mean",
                "err_mean",
                q_label.as_str(),
                "within",
                "bound",
                "src",
            ],
        );
        for r in &self.rows {
            t.row_owned(vec![
                r.topology.clone(),
                format_sig(r.density, 3),
                r.rounds.to_string(),
                r.estimator.clone(),
                r.movement.clone(),
                r.noise.clone(),
                format_sig(r.est_mean, 4),
                format_sig(r.err_mean, 4),
                r.err_q.map_or_else(String::new, |v| format_sig(v, 4)),
                format_sig(r.within, 3),
                r.bound.map_or_else(String::new, |b| format_sig(b, 4)),
                r.bound_src.to_string(),
            ]);
        }
        t.note(&format!(
            "band = {}, delta = {}, trials/cell = {}; bound = predicted epsilon (unit constants), \
             src = closed-form | measured-gap",
            self.band, self.delta, self.trials
        ));
        let mut out = t.render();
        out.push_str(&format!(
            "  => {} of {} cells complete ({} skipped combination{})\n",
            self.rows.len(),
            self.total_cells,
            self.skipped.len(),
            if self.skipped.len() == 1 { "" } else { "s" }
        ));
        if !self.complete {
            out.push_str("  => PARTIAL RUN — resume from the checkpoint to finish\n");
        }
        out
    }

    /// CSV: one row per completed cell, full float precision. Axis
    /// tokens containing commas or quotes (e.g. a library-built
    /// `biased:0.5,0.25` movement) are quoted per RFC 4180 so columns
    /// never shift.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(String::new, |x| x.to_string())
        }
        let mut out = String::from(
            "index,topology,density,agents,rounds,estimator,movement,noise,trials,samples,\
             est_mean,est_sd,err_mean,err_median,err_q,within,bound,bound_src,aux_mean\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                r.index,
                field(&r.topology),
                r.density,
                r.agents,
                r.rounds,
                field(&r.estimator),
                field(&r.movement),
                field(&r.noise),
                r.trials,
                r.samples,
                r.est_mean,
                r.est_sd,
                r.err_mean,
                opt(r.err_median),
                opt(r.err_q),
                r.within,
                opt(r.bound),
                r.bound_src,
                opt(r.aux_mean),
            ));
        }
        out
    }

    /// JSON: sweep metadata, skipped combinations, and the rows.
    /// Hand-rolled like `BENCH_engine.json` — the workspace is offline.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn opt(v: Option<f64>) -> String {
            v.map_or_else(|| "null".to_string(), |x| x.to_string())
        }
        let mut out = format!(
            "{{\n  \"sweep\": \"{}\",\n  \"mode\": \"{}\",\n  \"seed\": {},\n  \
             \"trials\": {},\n  \"band\": {},\n  \"delta\": {},\n  \"complete\": {},\n  \
             \"cells\": {},\n",
            esc(&self.name),
            self.mode,
            self.seed,
            self.trials,
            self.band,
            self.delta,
            self.complete,
            self.total_cells
        );
        out.push_str("  \"skipped\": [\n");
        for (i, s) in self.skipped.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"cell\": \"{}\", \"reason\": \"{}\"}}{}\n",
                esc(&s.label),
                esc(&s.reason),
                if i + 1 == self.skipped.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"index\": {}, \"topology\": \"{}\", \"density\": {}, \
                 \"agents\": {}, \"rounds\": {}, \"estimator\": \"{}\", \
                 \"movement\": \"{}\", \"noise\": \"{}\", \"trials\": {}, \
                 \"samples\": {}, \"est_mean\": {}, \"est_sd\": {}, \"err_mean\": {}, \
                 \"err_median\": {}, \"err_q\": {}, \"within\": {}, \"bound\": {}, \"bound_src\": \"{}\", \
                 \"aux_mean\": {}}}{}\n",
                r.index,
                esc(&r.topology),
                r.density,
                r.agents,
                r.rounds,
                esc(&r.estimator),
                esc(&r.movement),
                esc(&r.noise),
                r.trials,
                r.samples,
                r.est_mean,
                r.est_sd,
                r.err_mean,
                opt(r.err_median),
                opt(r.err_q),
                r.within,
                opt(r.bound),
                r.bound_src,
                opt(r.aux_mean),
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `dir/SWEEP_<name>.json` and `dir/SWEEP_<name>.csv`,
    /// returning both paths (JSON first).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or files.
    pub fn write(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let json = dir.join(format!("SWEEP_{}.json", self.name));
        let csv = dir.join(format!("SWEEP_{}.csv", self.name));
        std::fs::write(&json, self.to_json())?;
        std::fs::write(&csv, self.to_csv())?;
        Ok((json, csv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sweep, SweepOptions};
    use crate::spec::SweepSpec;

    fn demo_report() -> SweepReport {
        let spec = SweepSpec::parse(
            "
            name = report_test
            seed = 3
            trials = 2
            topology = torus2d:8
            density = 0.1, 0.3
            rounds = 4, 8   # alg4 needs t < 8 for the second value
            estimator = alg1, alg4, quorum:0.05
            ",
        )
        .unwrap();
        build_report(&run_sweep(&spec, &SweepOptions::default()).unwrap())
    }

    #[test]
    fn report_has_rows_bounds_and_skips() {
        let r = demo_report();
        assert!(r.complete);
        // alg4 keeps t=4 only → 2 densities × (2 + 1 + 2) = 10 rows
        assert_eq!(r.rows.len(), 10);
        assert_eq!(r.skipped.len(), 2);
        // alg1/alg4/quorum all carry a paper bound on the torus
        assert!(r.rows.iter().all(|row| row.bound.is_some()));
        assert!(r.rows.iter().all(|row| row.bound_src == "closed-form"));
        // quorum rows carry an accuracy aux; alg1/alg4 rows do not
        for row in &r.rows {
            assert_eq!(
                row.aux_mean.is_some(),
                row.estimator.starts_with("quorum"),
                "{row:?}"
            );
        }
        let text = r.render();
        assert!(text.contains("report_test"));
        assert!(text.contains("10 of 10 cells"));
    }

    #[test]
    fn csr_cells_report_measured_gap_bounds() {
        let spec = SweepSpec::parse(
            "
            name = csr_bounds
            trials = 1
            topology = csr:cliquering:4:4, csr:grid-holes:8:3:0.2, torus2d:8
            density = 0.2
            rounds = 8
            ",
        )
        .unwrap();
        let r = build_report(&run_sweep(&spec, &SweepOptions::default()).unwrap());
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(row.bound.is_some(), "{row:?}");
            let expect = if row.topology.starts_with("csr:") {
                "measured-gap"
            } else {
                "closed-form"
            };
            assert_eq!(row.bound_src, expect, "{row:?}");
        }
        let csv = r.to_csv();
        assert!(csv.contains("measured-gap"), "{csv}");
        assert!(r.to_json().contains("\"bound_src\": \"measured-gap\""));
        assert!(r.render().contains("measured-gap"));
    }

    #[test]
    fn csv_shape_matches_rows() {
        let r = demo_report();
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + r.rows.len());
        assert!(csv.starts_with("index,topology,density"));
        // every data line has exactly 19 columns
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 19, "{line}");
        }
    }

    #[test]
    fn json_is_balanced_and_complete() {
        let r = demo_report();
        let json = r.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"sweep\": \"report_test\""));
        assert!(json.contains("\"complete\": true"));
        assert_eq!(json.matches("\"index\":").count(), r.rows.len());
        assert_eq!(json.matches("\"reason\":").count(), r.skipped.len());
        // no stray trailing commas before closing brackets
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn zero_error_sample_cells_report_instead_of_panicking() {
        // 3 stationary agents on a big ring essentially never co-locate:
        // every relative-frequency estimate is undefined, so the cell
        // finishes with zero error samples.
        let spec = SweepSpec::parse(
            "
            name = empty_err
            trials = 2
            topology = ring:1024
            density = 0.002
            rounds = 8
            estimator = relfreq:0.5
            movement = stationary
            ",
        )
        .unwrap();
        let r = build_report(&run_sweep(&spec, &SweepOptions::default()).unwrap());
        assert_eq!(r.rows.len(), 1);
        let row = &r.rows[0];
        assert_eq!(row.samples, 0);
        assert_eq!(row.err_median, None);
        assert_eq!(row.err_q, None);
        // empty cells render as blanks / JSON nulls, and stay valid
        assert!(r.render().contains("empty_err"));
        assert!(r.to_json().contains("\"err_median\": null"));
        assert_eq!(r.to_csv().lines().count(), 2);
    }

    #[test]
    fn csv_quotes_axis_tokens_containing_commas() {
        use antdensity_engine::MovementModel;
        // Biased movement is library-only (comma-separated probabilities)
        let mut spec = SweepSpec::parse(
            "
            name = biased
            trials = 1
            topology = ring:16   # degree 2 matches the two move probs
            density = 0.2
            rounds = 8
            ",
        )
        .unwrap();
        spec.movements = vec![MovementModel::Biased {
            move_probs: vec![0.5, 0.25],
        }];
        let r = build_report(&run_sweep(&spec, &SweepOptions::default()).unwrap());
        let csv = r.to_csv();
        assert!(csv.contains("\"biased:0.5,0.25\""), "{csv}");
        // column count is preserved once quoted fields are respected
        let data = csv.lines().nth(1).unwrap();
        let mut fields = 0;
        let mut in_quotes = false;
        for c in data.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        assert_eq!(fields + 1, 19, "{data}");
    }

    #[test]
    fn write_emits_both_files() {
        let dir = std::env::temp_dir().join(format!("antdensity_report_{}", std::process::id()));
        let (json, csv) = demo_report().write(&dir).unwrap();
        assert!(json.ends_with("SWEEP_report_test.json"));
        assert!(csv.ends_with("SWEEP_report_test.csv"));
        assert!(std::fs::read_to_string(&json).unwrap().contains("rows"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
