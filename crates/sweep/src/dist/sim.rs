//! Deterministic discrete-event simulator for the distributed runtime.
//!
//! The property suite's workhorse: virtual workers execute *real*
//! shards ([`crate::run_shard`]) under a virtual millisecond clock, so
//! an entire kill/partition/straggler schedule — leases, heartbeats,
//! expiries, respawns, degradation — replays identically on every run
//! with zero wall-clock dependence. Message faults pass through one
//! [`FaultFilter`]; `kill:` entries fire when a virtual worker receives
//! the matching lease. The coordinator under test is the very same
//! [`Coordinator`] the process/TCP runtime drives.
//!
//! Fixed model parameters: every message takes 1 virtual ms per hop,
//! a shard computes for 500 virtual ms, and the coordinator ticks
//! every 100 virtual ms.

use super::coordinator::{Cmd, Coordinator, DistConfig, Event, FinishKind};
use super::fault::{Delivery, FaultFilter, FaultPlan};
use super::protocol::Msg;
use super::{shard_blob, DistError, DistStats};
use crate::spec::ResolvedSweep;
use std::collections::BTreeMap;

/// Virtual milliseconds one shard computes for.
const COMPUTE_MS: u64 = 500;
/// Virtual coordinator tick period.
const TICK_MS: u64 = 100;
/// Virtual per-hop message latency.
const HOP_MS: u64 = 1;
/// Stall guard: a schedule that runs past this much virtual time is a
/// bug, not a slow run.
const MAX_VIRTUAL_MS: u64 = 100_000_000;

#[derive(Debug)]
enum SimEv {
    /// (Re)spawn virtual worker `w` and have it say HELLO.
    Spawn(u64),
    /// Deliver a coordinator→worker message.
    WorkerRx(u64, Msg),
    /// Deliver a worker→coordinator message.
    CoordRx(u64, Msg),
    /// A corrupted frame arrives at the coordinator from `w`.
    CoordBad(u64),
    /// The coordinator notices worker `w`'s transport died.
    CoordDied(u64),
    /// Worker `w` finishes computing `(lease, shard)`.
    Finish(u64, u64, u64),
    /// Worker `w` heartbeats for `lease` (self-rescheduling).
    Beat(u64, u64),
    /// Coordinator timer.
    Tick,
}

#[derive(Debug, Clone)]
struct SimWorker {
    alive: bool,
    computing: Option<(u64, u64)>, // (lease, shard)
    /// Per-process lease ordinal (resets on respawn, like a real
    /// worker process).
    ordinal: u64,
}

/// What a simulated run produced besides the merged blobs (which went
/// through the caller's sink).
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The coordinator's deterministic event log.
    pub log: Vec<String>,
    /// Run counters (including shards degraded to in-process).
    pub stats: DistStats,
}

#[derive(Debug, Default)]
struct EventQueue {
    q: BTreeMap<(u64, u64), SimEv>,
    seq: u64,
}

impl EventQueue {
    fn push(&mut self, at: u64, ev: SimEv) {
        self.seq += 1;
        self.q.insert((at, self.seq), ev);
    }
    fn pop(&mut self) -> Option<(u64, SimEv)> {
        let (&key, _) = self.q.iter().next()?;
        let ev = self.q.remove(&key).expect("key just observed");
        Some((key.0, ev))
    }
}

/// Runs `pending` (fused-shard indices) to completion under the given
/// worker count, fault plan, and timing config, feeding each shard's
/// blob through `sink` exactly once, in completion order.
///
/// # Errors
///
/// [`DistError::Mismatch`] when a duplicate result disagrees
/// byte-for-byte; [`DistError::Failed`] for sink failures or a stalled
/// schedule.
pub fn run_sim(
    resolved: &ResolvedSweep,
    pending: &[usize],
    fuse: bool,
    workers: usize,
    plan: &FaultPlan,
    cfg: &DistConfig,
    sink: &mut dyn FnMut(u64, &str) -> Result<(), String>,
) -> Result<SimOutcome, DistError> {
    let shards: Vec<u64> = pending.iter().map(|&i| i as u64).collect();
    let mut coord = Coordinator::new(cfg.clone(), resolved.fingerprint, &shards);
    let hb_every = cfg.heartbeat_interval_ms.max(1);
    let mut filter = FaultFilter::new(plan);
    let mut q = EventQueue::default();
    let mut sim_workers: Vec<SimWorker> = vec![
        SimWorker {
            alive: false,
            computing: None,
            ordinal: 0
        };
        workers
    ];
    let mut blob_cache: BTreeMap<u64, String> = BTreeMap::new();
    let mut blob_for = |shard: u64| -> String {
        blob_cache
            .entry(shard)
            .or_insert_with(|| shard_blob(resolved, shard as usize, fuse))
            .clone()
    };
    let mut degraded: Option<Vec<u64>> = None;

    for w in 0..workers as u64 {
        q.push(0, SimEv::Spawn(w));
    }
    q.push(0, SimEv::Tick);

    while let Some((t, ev)) = q.pop() {
        if t > MAX_VIRTUAL_MS {
            return Err(DistError::Failed(
                "simulated schedule stalled (virtual-time guard tripped)".into(),
            ));
        }
        let mut cmds = Vec::new();
        match ev {
            SimEv::Spawn(w) => {
                sim_workers[w as usize] = SimWorker {
                    alive: true,
                    computing: None,
                    ordinal: 0,
                };
                cmds.extend(coord.on_event(t, Event::Connected { worker: w }));
                let hello = Msg::Hello {
                    worker: w,
                    fingerprint: resolved.fingerprint,
                };
                for d in filter.apply(hello) {
                    deliver_to_coord(&mut q, t, w, d);
                }
            }
            SimEv::WorkerRx(w, msg) => {
                let wk = &mut sim_workers[w as usize];
                if wk.alive {
                    match msg {
                        Msg::Lease { lease, shard } => {
                            wk.ordinal += 1;
                            if plan.kills(w, lease, wk.ordinal) {
                                wk.alive = false;
                                wk.computing = None;
                                q.push(t + HOP_MS, SimEv::CoordDied(w));
                            } else {
                                wk.computing = Some((lease, shard));
                                q.push(t + COMPUTE_MS, SimEv::Finish(w, lease, shard));
                                q.push(t + hb_every, SimEv::Beat(w, lease));
                            }
                        }
                        Msg::Shutdown => {
                            wk.alive = false;
                            wk.computing = None;
                        }
                        _ => {}
                    }
                }
            }
            SimEv::Finish(w, lease, shard) => {
                let wk = &mut sim_workers[w as usize];
                if wk.alive && wk.computing == Some((lease, shard)) {
                    wk.computing = None;
                    let blob = blob_for(shard);
                    let msg = Msg::Result { lease, shard, blob };
                    for d in filter.apply(msg) {
                        deliver_to_coord(&mut q, t, w, d);
                    }
                }
            }
            SimEv::Beat(w, lease) => {
                let wk = &sim_workers[w as usize];
                if wk.alive && wk.computing.map(|(l, _)| l) == Some(lease) {
                    let msg = Msg::Heartbeat { worker: w, lease };
                    for d in filter.apply(msg) {
                        deliver_to_coord(&mut q, t, w, d);
                    }
                    q.push(t + hb_every, SimEv::Beat(w, lease));
                }
            }
            SimEv::CoordRx(w, msg) => {
                let event = match msg {
                    Msg::Hello {
                        worker,
                        fingerprint,
                    } => Event::Hello {
                        worker,
                        fingerprint,
                    },
                    Msg::Result { lease, shard, blob } => Event::Result {
                        worker: w,
                        lease,
                        shard,
                        blob,
                    },
                    Msg::Heartbeat { worker, lease } => Event::Heartbeat { worker, lease },
                    Msg::Nack { lease, reason } => Event::Nack {
                        worker: w,
                        lease,
                        reason,
                    },
                    _ => continue,
                };
                cmds.extend(coord.on_event(t, event));
            }
            SimEv::CoordBad(w) => {
                cmds.extend(coord.on_event(
                    t,
                    Event::BadFrame {
                        worker: w,
                        error: "frame checksum mismatch (injected)".into(),
                    },
                ));
            }
            SimEv::CoordDied(w) => {
                cmds.extend(coord.on_event(t, Event::Died { worker: w }));
            }
            SimEv::Tick => {
                cmds.extend(coord.on_event(t, Event::Tick));
                if coord.finished().is_none() {
                    q.push(t + TICK_MS, SimEv::Tick);
                }
            }
        }
        for cmd in cmds {
            match cmd {
                Cmd::SendLease {
                    worker,
                    lease,
                    shard,
                } => {
                    for d in filter.apply(Msg::Lease { lease, shard }) {
                        deliver_to_worker(&mut q, t, worker, d);
                    }
                }
                Cmd::SendShutdown { worker } => {
                    q.push(t + HOP_MS, SimEv::WorkerRx(worker, Msg::Shutdown));
                }
                Cmd::Respawn { worker, at_ms } => {
                    q.push(at_ms.max(t + 1), SimEv::Spawn(worker));
                }
                Cmd::Completed { shard, blob } => {
                    sink(shard, &blob).map_err(DistError::Failed)?;
                }
                Cmd::Degrade { shards } => degraded = Some(shards),
                Cmd::Abort { shard, report } => {
                    return Err(DistError::Mismatch { shard, report });
                }
                Cmd::AllDone => {}
            }
        }
        if coord.finished().is_some() {
            break;
        }
    }

    let mut stats = coord.stats.clone();
    if let Some(shards) = degraded {
        debug_assert_eq!(coord.finished(), Some(FinishKind::Degraded));
        for shard in shards {
            let blob = blob_for(shard);
            sink(shard, &blob).map_err(DistError::Failed)?;
            stats.degraded += 1;
        }
    }
    Ok(SimOutcome {
        log: coord.log.clone(),
        stats,
    })
}

fn deliver_to_coord(q: &mut EventQueue, t: u64, w: u64, d: Delivery) {
    match d {
        Delivery::Now(msg) => q.push(t + HOP_MS, SimEv::CoordRx(w, msg)),
        Delivery::Corrupt => q.push(t + HOP_MS, SimEv::CoordBad(w)),
        Delivery::After(ms, msg) => q.push(t + HOP_MS + ms, SimEv::CoordRx(w, msg)),
    }
}

fn deliver_to_worker(q: &mut EventQueue, t: u64, w: u64, d: Delivery) {
    match d {
        Delivery::Now(msg) => q.push(t + HOP_MS, SimEv::WorkerRx(w, msg)),
        // A worker receiving an undecodable frame ignores it; the
        // lease recovers via coordinator-side expiry.
        Delivery::Corrupt => {}
        Delivery::After(ms, msg) => q.push(t + HOP_MS + ms, SimEv::WorkerRx(w, msg)),
    }
}
