//! Deterministic fault injection for the distributed sweep runtime.
//!
//! A [`FaultPlan`] is a comma-separated list of scripted failures,
//! addressed by *counts within the run* — never by the clock — so the
//! same plan replays the same failure schedule on every execution:
//!
//! ```text
//! kill:w0@lease2        worker 0 exits on the 2nd lease it receives
//! kill:lease3           whichever worker receives global lease id 3 exits
//! drop:result@1         the 1st RESULT message vanishes in transit
//! dup:result@2          the 2nd RESULT is delivered twice
//! corrupt:heartbeat@4   the 4th HEARTBEAT arrives with a bad checksum
//! delay:result@1:900    the 1st RESULT is delivered 900 ms late
//! lie:result@1          the 1st RESULT carries a tampered (but
//!                       well-formed) blob — the byzantine case
//! ```
//!
//! Kill entries are applied by the *worker* (the plan ships in the
//! `SPEC` handshake); message entries are applied by a [`FaultFilter`]
//! sitting on the receive path. Message ordinals are 1-based and
//! counted per verb across the whole run; a duplicated message is
//! itself counted, so `dup:result@1,lie:result@2` delivers the first
//! result honestly and its duplicate tampered — the schedule that
//! exercises the mismatch-abort path.

use crate::checkpoint::Checkpoint;
use crate::dist::protocol::{Msg, Verb};
use std::collections::BTreeMap;

/// One scripted worker death.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Kill {
    /// Worker `worker` exits upon receiving its `ordinal`-th lease
    /// (1-based, counted per worker *process* — a respawned worker
    /// starts counting again, so this entry also scripts persistent
    /// failures that exhaust the respawn budget).
    WorkerOrdinal {
        /// Worker slot id.
        worker: u64,
        /// 1-based per-process lease count that triggers the death.
        ordinal: u64,
    },
    /// Whichever worker receives global lease id `lease` exits.
    GlobalLease {
        /// Global lease id (1-based, ascending issue order).
        lease: u64,
    },
}

/// One scripted message fault: the `nth` message of `verb` (1-based,
/// counted across the run) gets `action`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgFault {
    /// Which verb the count addresses.
    pub verb: Verb,
    /// 1-based ordinal among messages of that verb.
    pub nth: u64,
    /// What happens to it.
    pub action: FaultAction,
}

/// What a matched [`MsgFault`] does to its message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Never delivered.
    Drop,
    /// Delivered twice (the copy is counted as a further message and
    /// can match later entries).
    Dup,
    /// Delivered as an undecodable frame (checksum failure at the
    /// receiver).
    Corrupt,
    /// Delivered after this many extra milliseconds.
    Delay(u64),
    /// Delivered with a well-formed but tampered payload (only
    /// meaningful for `RESULT`; other verbs pass unchanged).
    Lie,
}

/// A parsed, replayable failure schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Scripted worker deaths.
    pub kills: Vec<Kill>,
    /// Scripted message faults.
    pub msgs: Vec<MsgFault>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.msgs.is_empty()
    }

    /// Parses the plan grammar (see module docs). The empty string is
    /// the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for entry in text.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry `{entry}` has no `kind:` prefix"))?;
            match kind {
                "kill" => plan.kills.push(parse_kill(entry, rest)?),
                "drop" | "dup" | "corrupt" | "lie" => {
                    let (verb, nth) = parse_verb_at(entry, rest)?;
                    let action = match kind {
                        "drop" => FaultAction::Drop,
                        "dup" => FaultAction::Dup,
                        "corrupt" => FaultAction::Corrupt,
                        _ => FaultAction::Lie,
                    };
                    plan.msgs.push(MsgFault { verb, nth, action });
                }
                "delay" => {
                    let (spec, ms) = rest
                        .rsplit_once(':')
                        .ok_or_else(|| format!("delay entry `{entry}` needs `:<ms>`"))?;
                    let ms = ms
                        .parse()
                        .map_err(|_| format!("bad delay milliseconds in `{entry}`"))?;
                    let (verb, nth) = parse_verb_at(entry, spec)?;
                    plan.msgs.push(MsgFault {
                        verb,
                        nth,
                        action: FaultAction::Delay(ms),
                    });
                }
                _ => return Err(format!("unknown fault kind `{kind}` in `{entry}`")),
            }
        }
        Ok(plan)
    }

    /// Canonical text form; `parse(to_text())` round-trips.
    pub fn to_text(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for k in &self.kills {
            parts.push(match k {
                Kill::WorkerOrdinal { worker, ordinal } => format!("kill:w{worker}@lease{ordinal}"),
                Kill::GlobalLease { lease } => format!("kill:lease{lease}"),
            });
        }
        for m in &self.msgs {
            let at = format!("{}@{}", m.verb.name(), m.nth);
            parts.push(match m.action {
                FaultAction::Drop => format!("drop:{at}"),
                FaultAction::Dup => format!("dup:{at}"),
                FaultAction::Corrupt => format!("corrupt:{at}"),
                FaultAction::Delay(ms) => format!("delay:{at}:{ms}"),
                FaultAction::Lie => format!("lie:{at}"),
            });
        }
        parts.join(",")
    }

    /// Whether a worker receiving `(global lease id, per-process
    /// ordinal)` is scripted to die.
    pub fn kills(&self, worker: u64, lease: u64, ordinal: u64) -> bool {
        self.kills.iter().any(|k| match *k {
            Kill::WorkerOrdinal {
                worker: w,
                ordinal: o,
            } => w == worker && o == ordinal,
            Kill::GlobalLease { lease: l } => l == lease,
        })
    }
}

fn parse_kill(entry: &str, rest: &str) -> Result<Kill, String> {
    if let Some(lease) = rest.strip_prefix("lease") {
        let lease = lease
            .parse()
            .map_err(|_| format!("bad lease id in `{entry}`"))?;
        return Ok(Kill::GlobalLease { lease });
    }
    let (worker, ordinal) = rest
        .strip_prefix('w')
        .and_then(|r| r.split_once("@lease"))
        .ok_or_else(|| format!("kill entry `{entry}` is neither `w<k>@lease<j>` nor `lease<j>`"))?;
    Ok(Kill::WorkerOrdinal {
        worker: worker
            .parse()
            .map_err(|_| format!("bad worker id in `{entry}`"))?,
        ordinal: ordinal
            .parse()
            .map_err(|_| format!("bad lease ordinal in `{entry}`"))?,
    })
}

fn parse_verb_at(entry: &str, rest: &str) -> Result<(Verb, u64), String> {
    let (verb, nth) = rest
        .split_once('@')
        .ok_or_else(|| format!("fault entry `{entry}` needs `<verb>@<n>`"))?;
    Ok((
        Verb::parse(verb)?,
        nth.parse()
            .map_err(|_| format!("bad message ordinal in `{entry}`"))?,
    ))
}

/// How a filtered message reaches (or fails to reach) the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered normally.
    Now(Msg),
    /// Arrives as an undecodable frame — the receiver sees a checksum
    /// failure, never the message.
    Corrupt,
    /// Delivered after the extra delay.
    After(u64, Msg),
}

/// Stateful per-run message filter applying a plan's [`MsgFault`]s.
#[derive(Debug)]
pub struct FaultFilter {
    plan: FaultPlan,
    counts: BTreeMap<Verb, u64>,
}

impl FaultFilter {
    /// A filter at the start of a run (all ordinals at zero).
    pub fn new(plan: &FaultPlan) -> Self {
        Self {
            plan: plan.clone(),
            counts: BTreeMap::new(),
        }
    }

    /// Passes one message through the schedule, returning zero or more
    /// deliveries. Duplicates re-enter the filter and consume the next
    /// ordinal of their verb.
    pub fn apply(&mut self, msg: Msg) -> Vec<Delivery> {
        let verb = msg.verb();
        let n = self.counts.entry(verb).or_insert(0);
        *n += 1;
        let n = *n;
        let hit = self
            .plan
            .msgs
            .iter()
            .find(|f| f.verb == verb && f.nth == n)
            .map(|f| f.action.clone());
        match hit {
            None => vec![Delivery::Now(msg)],
            Some(FaultAction::Drop) => vec![],
            Some(FaultAction::Corrupt) => vec![Delivery::Corrupt],
            Some(FaultAction::Delay(ms)) => vec![Delivery::After(ms, msg)],
            Some(FaultAction::Lie) => vec![Delivery::Now(tamper(msg))],
            Some(FaultAction::Dup) => {
                let mut out = vec![Delivery::Now(msg.clone())];
                out.extend(self.apply(msg));
                out
            }
        }
    }
}

/// Tampers a RESULT blob while keeping it well-formed: the first
/// cell's `within` count is bumped, so the blob parses and merges
/// cleanly but is byte-unequal to the honest one — exactly what the
/// first-valid-result-wins duplicate check must catch. Non-RESULT
/// messages pass unchanged.
fn tamper(msg: Msg) -> Msg {
    match msg {
        Msg::Result { lease, shard, blob } => {
            let blob = match Checkpoint::parse(&blob) {
                Ok(mut ck) => {
                    if let Some(agg) = ck.shards.values_mut().next() {
                        agg.within += 1;
                    }
                    ck.to_text()
                }
                Err(_) => format!("{blob}!"),
            };
            Msg::Result { lease, shard, blob }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let text = "kill:w0@lease2,kill:lease3,drop:result@1,dup:result@2,\
                    corrupt:heartbeat@4,delay:result@1:900,lie:result@1";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.kills.len(), 2);
        assert_eq!(plan.msgs.len(), 5);
        assert_eq!(FaultPlan::parse(&plan.to_text()).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("  ").unwrap(), FaultPlan::none());
    }

    #[test]
    fn rejects_malformed_entries() {
        for (bad, needle) in [
            ("explode", "no `kind:`"),
            ("kill:leaseX", "bad lease id"),
            ("kill:w1", "neither"),
            ("drop:result", "needs `<verb>@<n>`"),
            ("drop:gossip@1", "unknown message verb"),
            ("delay:result@1", "needs `:<ms>`"),
            ("warp:result@1", "unknown fault kind"),
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains(needle), "`{bad}` → `{err}`");
        }
    }

    #[test]
    fn kill_matching() {
        let plan = FaultPlan::parse("kill:w1@lease2,kill:lease5").unwrap();
        assert!(plan.kills(1, 9, 2), "per-worker ordinal");
        assert!(!plan.kills(1, 9, 1));
        assert!(!plan.kills(0, 9, 2), "other worker unaffected");
        assert!(plan.kills(3, 5, 1), "global lease id");
        assert!(!plan.kills(3, 6, 1));
    }

    #[test]
    fn filter_counts_per_verb() {
        let plan = FaultPlan::parse("drop:result@2,delay:heartbeat@1:50").unwrap();
        let mut f = FaultFilter::new(&plan);
        let hb = Msg::Heartbeat {
            worker: 0,
            lease: 1,
        };
        let res = Msg::Result {
            lease: 1,
            shard: 0,
            blob: "b".into(),
        };
        assert_eq!(
            f.apply(hb.clone()),
            vec![Delivery::After(50, hb.clone())],
            "1st heartbeat delayed"
        );
        assert_eq!(f.apply(hb.clone()), vec![Delivery::Now(hb)]);
        assert_eq!(f.apply(res.clone()), vec![Delivery::Now(res.clone())]);
        assert_eq!(f.apply(res.clone()), vec![], "2nd result dropped");
        assert_eq!(f.apply(res.clone()), vec![Delivery::Now(res)]);
    }

    #[test]
    fn dup_then_lie_tampers_the_copy() {
        let mut ck = Checkpoint::new(7, 4);
        ck.shards.insert(2, crate::CellAggregate::new());
        let honest = Msg::Result {
            lease: 1,
            shard: 0,
            blob: ck.to_text(),
        };
        let plan = FaultPlan::parse("dup:result@1,lie:result@2").unwrap();
        let mut f = FaultFilter::new(&plan);
        let out = f.apply(honest.clone());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Delivery::Now(honest.clone()));
        match &out[1] {
            Delivery::Now(Msg::Result { blob, .. }) => {
                let Msg::Result { blob: orig, .. } = &honest else {
                    unreachable!()
                };
                assert_ne!(blob, orig, "copy must be byte-unequal");
                Checkpoint::parse(blob).expect("tampered blob stays well-formed");
            }
            other => panic!("expected tampered result, got {other:?}"),
        }
    }
}
