//! Length-prefixed frame protocol between the sweep coordinator and
//! its workers.
//!
//! Every message travels as one *frame*:
//!
//! ```text
//! frame <body-len> <checksum-hex16>\n
//! <body-len bytes of body>
//! ```
//!
//! The checksum is a splitmix64 chain over the body bytes, so a
//! receiver detects corruption deterministically (a corrupted frame is
//! reported, the containing lease simply expires and the shard is
//! re-issued). The body is a header line `VERB key=value …` followed by
//! raw payload bytes whose lengths the header declares — the payloads
//! (spec text, fault plan, aggregate blobs) are opaque byte strings and
//! never escaped.
//!
//! The verbs:
//!
//! | verb        | direction      | payloads              |
//! |-------------|----------------|-----------------------|
//! | `SPEC`      | coord → worker | fault plan, spec text |
//! | `HELLO`     | worker → coord | —                     |
//! | `LEASE`     | coord → worker | —                     |
//! | `RESULT`    | worker → coord | aggregate blob        |
//! | `HEARTBEAT` | worker → coord | —                     |
//! | `NACK`      | worker → coord | reason                |
//! | `SHUTDOWN`  | coord → worker | —                     |

use antdensity_stats::rng::splitmix64;
use std::io::{BufRead, Write};

/// Message kind, used by the fault filter to address "the m-th RESULT"
/// and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verb {
    /// Coordinator → worker: resolved-spec handshake.
    Spec,
    /// Worker → coordinator: join, carrying the resolved fingerprint.
    Hello,
    /// Coordinator → worker: shard lease.
    Lease,
    /// Worker → coordinator: completed shard blob.
    Result,
    /// Worker → coordinator: liveness while computing.
    Heartbeat,
    /// Worker → coordinator: lease refused.
    Nack,
    /// Coordinator → worker: drain and exit.
    Shutdown,
}

impl Verb {
    /// All verbs, in wire-name order.
    pub const ALL: [Verb; 7] = [
        Verb::Spec,
        Verb::Hello,
        Verb::Lease,
        Verb::Result,
        Verb::Heartbeat,
        Verb::Nack,
        Verb::Shutdown,
    ];

    /// Lower-case wire/plan name.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Spec => "spec",
            Verb::Hello => "hello",
            Verb::Lease => "lease",
            Verb::Result => "result",
            Verb::Heartbeat => "heartbeat",
            Verb::Nack => "nack",
            Verb::Shutdown => "shutdown",
        }
    }

    /// Parses a verb name, case-insensitively (fault plans convention-
    /// ally write verbs upper-case: `drop:RESULT@2`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown verb.
    pub fn parse(name: &str) -> Result<Verb, String> {
        let lower = name.to_ascii_lowercase();
        Verb::ALL
            .into_iter()
            .find(|v| v.name() == lower)
            .ok_or_else(|| format!("unknown message verb `{name}`"))
    }
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// First frame the coordinator sends on a fresh connection: the
    /// worker's identity, effort mode, fusion setting, heartbeat
    /// interval, the fault plan (workers apply their own `kill:`
    /// entries), and the sweep spec text to resolve.
    Spec {
        /// Worker slot id assigned by the coordinator.
        worker: u64,
        /// Resolve the spec in quick (CI smoke) mode.
        quick: bool,
        /// Execute shards fused (the default path).
        fuse: bool,
        /// Heartbeat interval while computing, milliseconds.
        hb_ms: u64,
        /// Fault plan text ([`super::fault::FaultPlan`] grammar).
        plan: String,
        /// Sweep spec text ([`crate::SweepSpec`] grammar).
        spec: String,
    },
    /// Worker joined; `fingerprint` must match the coordinator's
    /// resolved spec or the worker is shut down.
    Hello {
        /// Worker slot id (echoed from [`Msg::Spec`]).
        worker: u64,
        /// Fingerprint of the worker's resolved spec.
        fingerprint: u64,
    },
    /// Lease of one fused shard to one worker.
    Lease {
        /// Globally unique lease id (1-based, ascending).
        lease: u64,
        /// Fused shard index to execute.
        shard: u64,
    },
    /// Completed shard: the blob is checkpoint text covering exactly
    /// the shard's member cells.
    Result {
        /// Lease this result answers.
        lease: u64,
        /// Shard index (must match the lease).
        shard: u64,
        /// Checkpoint-text aggregate blob.
        blob: String,
    },
    /// Worker liveness while a lease is computing.
    Heartbeat {
        /// Worker slot id.
        worker: u64,
        /// Lease being computed.
        lease: u64,
    },
    /// Lease refused (e.g. shard index out of range).
    Nack {
        /// Refused lease id.
        lease: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Coordinator is done with this worker; drain and exit.
    Shutdown,
}

impl Msg {
    /// This message's verb.
    pub fn verb(&self) -> Verb {
        match self {
            Msg::Spec { .. } => Verb::Spec,
            Msg::Hello { .. } => Verb::Hello,
            Msg::Lease { .. } => Verb::Lease,
            Msg::Result { .. } => Verb::Result,
            Msg::Heartbeat { .. } => Verb::Heartbeat,
            Msg::Nack { .. } => Verb::Nack,
            Msg::Shutdown => Verb::Shutdown,
        }
    }

    /// Renders the frame body (header line + raw payloads).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Msg::Spec {
                worker,
                quick,
                fuse,
                hb_ms,
                plan,
                spec,
            } => {
                out.extend_from_slice(
                    format!(
                        "SPEC worker={worker} quick={} fuse={} hb={hb_ms} plan={} spec={}\n",
                        u8::from(*quick),
                        u8::from(*fuse),
                        plan.len(),
                        spec.len()
                    )
                    .as_bytes(),
                );
                out.extend_from_slice(plan.as_bytes());
                out.extend_from_slice(spec.as_bytes());
            }
            Msg::Hello {
                worker,
                fingerprint,
            } => {
                out.extend_from_slice(
                    format!("HELLO worker={worker} fingerprint={fingerprint:016x}\n").as_bytes(),
                );
            }
            Msg::Lease { lease, shard } => {
                out.extend_from_slice(format!("LEASE lease={lease} shard={shard}\n").as_bytes());
            }
            Msg::Result { lease, shard, blob } => {
                out.extend_from_slice(
                    format!("RESULT lease={lease} shard={shard} blob={}\n", blob.len()).as_bytes(),
                );
                out.extend_from_slice(blob.as_bytes());
            }
            Msg::Heartbeat { worker, lease } => {
                out.extend_from_slice(
                    format!("HEARTBEAT worker={worker} lease={lease}\n").as_bytes(),
                );
            }
            Msg::Nack { lease, reason } => {
                out.extend_from_slice(
                    format!("NACK lease={lease} reason={}\n", reason.len()).as_bytes(),
                );
                out.extend_from_slice(reason.as_bytes());
            }
            Msg::Shutdown => out.extend_from_slice(b"SHUTDOWN\n"),
        }
        out
    }

    /// Parses a frame body produced by [`Msg::encode_body`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem
    /// (unknown verb, missing field, payload length mismatch).
    pub fn decode_body(body: &[u8]) -> Result<Msg, String> {
        let nl = body
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("frame body has no header line")?;
        let header = std::str::from_utf8(&body[..nl])
            .map_err(|_| "frame header is not UTF-8".to_string())?;
        let payload = &body[nl + 1..];
        let toks: Vec<&str> = header.split_whitespace().collect();
        let field = |key: &str| -> Result<&str, String> {
            toks.iter()
                .filter_map(|t| t.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                .next()
                .ok_or_else(|| format!("frame header `{header}` missing `{key}=`"))
        };
        let int = |key: &str| -> Result<u64, String> {
            field(key)?
                .parse()
                .map_err(|_| format!("bad integer for `{key}` in `{header}`"))
        };
        let text = |bytes: &[u8]| -> Result<String, String> {
            String::from_utf8(bytes.to_vec()).map_err(|_| "frame payload is not UTF-8".to_string())
        };
        match toks.first().copied() {
            Some("SPEC") => {
                let plan_len = int("plan")? as usize;
                let spec_len = int("spec")? as usize;
                if payload.len() != plan_len + spec_len {
                    return Err(format!(
                        "SPEC payload is {} bytes, header declares {}",
                        payload.len(),
                        plan_len + spec_len
                    ));
                }
                Ok(Msg::Spec {
                    worker: int("worker")?,
                    quick: int("quick")? != 0,
                    fuse: int("fuse")? != 0,
                    hb_ms: int("hb")?,
                    plan: text(&payload[..plan_len])?,
                    spec: text(&payload[plan_len..])?,
                })
            }
            Some("HELLO") => Ok(Msg::Hello {
                worker: int("worker")?,
                fingerprint: u64::from_str_radix(field("fingerprint")?, 16)
                    .map_err(|_| format!("bad fingerprint in `{header}`"))?,
            }),
            Some("LEASE") => Ok(Msg::Lease {
                lease: int("lease")?,
                shard: int("shard")?,
            }),
            Some("RESULT") => {
                let blob_len = int("blob")? as usize;
                if payload.len() != blob_len {
                    return Err(format!(
                        "RESULT payload is {} bytes, header declares {blob_len}",
                        payload.len()
                    ));
                }
                Ok(Msg::Result {
                    lease: int("lease")?,
                    shard: int("shard")?,
                    blob: text(payload)?,
                })
            }
            Some("HEARTBEAT") => Ok(Msg::Heartbeat {
                worker: int("worker")?,
                lease: int("lease")?,
            }),
            Some("NACK") => Ok(Msg::Nack {
                lease: int("lease")?,
                reason: text(payload)?,
            }),
            Some("SHUTDOWN") => Ok(Msg::Shutdown),
            other => Err(format!("unknown frame verb `{}`", other.unwrap_or(""))),
        }
    }

    /// Renders the complete frame (prefix line + body).
    pub fn encode_frame(&self) -> Vec<u8> {
        let body = self.encode_body();
        let mut out = format!("frame {} {:016x}\n", body.len(), checksum(&body)).into_bytes();
        out.extend_from_slice(&body);
        out
    }
}

/// Splitmix64 chain over the body bytes — cheap, deterministic, and
/// sensitive to any single-byte corruption.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = splitmix64(h ^ u64::from(b));
    }
    h
}

/// Writes one frame and flushes.
///
/// # Errors
///
/// Returns the underlying I/O error (e.g. a broken pipe when the peer
/// died).
pub fn write_frame<W: Write>(w: &mut W, msg: &Msg) -> std::io::Result<()> {
    w.write_all(&msg.encode_frame())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean EOF at a frame boundary;
/// any other failure — truncated frame, bad prefix, checksum mismatch,
/// undecodable body — is an error (the stream may be unrecoverable).
///
/// # Errors
///
/// Returns a message describing the framing problem; checksum failures
/// mention "checksum" so callers can count corruption distinctly.
pub fn read_frame<R: BufRead>(r: &mut R) -> Result<Option<Msg>, String> {
    let mut prefix = String::new();
    match r.read_line(&mut prefix) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(format!("frame read failed: {e}")),
    }
    let toks: Vec<&str> = prefix.split_whitespace().collect();
    let (len, declared) = match toks[..] {
        ["frame", len, sum] => (
            len.parse::<usize>()
                .map_err(|_| format!("bad frame length `{len}`"))?,
            u64::from_str_radix(sum, 16).map_err(|_| format!("bad frame checksum `{sum}`"))?,
        ),
        _ => return Err(format!("bad frame prefix `{}`", prefix.trim_end())),
    };
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| format!("truncated frame body: {e}"))?;
    if checksum(&body) != declared {
        return Err(format!(
            "frame checksum mismatch (declared {declared:016x}, computed {:016x})",
            checksum(&body)
        ));
    }
    Msg::decode_body(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Spec {
                worker: 3,
                quick: true,
                fuse: false,
                hb_ms: 200,
                plan: "kill:w0@lease1".into(),
                spec: "name = x\ntrials = 1\n".into(),
            },
            Msg::Hello {
                worker: 3,
                fingerprint: 0xDEAD_BEEF_0102_0304,
            },
            Msg::Lease { lease: 7, shard: 2 },
            Msg::Result {
                lease: 7,
                shard: 2,
                blob: "antdensity-sweep-checkpoint v1\nbody with\nnewlines".into(),
            },
            Msg::Heartbeat {
                worker: 3,
                lease: 7,
            },
            Msg::Nack {
                lease: 7,
                reason: "shard out of range".into(),
            },
            Msg::Shutdown,
        ]
    }

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        for msg in samples() {
            write_frame(&mut wire, &msg).unwrap();
        }
        let mut r = BufReader::new(&wire[..]);
        for msg in samples() {
            assert_eq!(read_frame(&mut r).unwrap(), Some(msg));
        }
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn corruption_is_detected() {
        let frame = Msg::Lease { lease: 1, shard: 0 }.encode_frame();
        // flip one payload byte: checksum must catch it
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x04;
            let got = read_frame(&mut BufReader::new(&bad[..]));
            assert!(
                got.is_err() || got != Ok(Some(Msg::Lease { lease: 1, shard: 0 })),
                "flipping byte {i} went unnoticed"
            );
        }
        let mut body_flip = frame.clone();
        let body_start = frame.iter().position(|&b| b == b'\n').unwrap() + 1;
        body_flip[body_start] ^= 0x01;
        let err = read_frame(&mut BufReader::new(&body_flip[..])).unwrap_err();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_is_an_error_not_eof() {
        let frame = Msg::Result {
            lease: 1,
            shard: 0,
            blob: "0123456789".into(),
        }
        .encode_frame();
        let cut = &frame[..frame.len() - 3];
        let err = read_frame(&mut BufReader::new(cut)).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn verbs_round_trip_by_name() {
        for v in Verb::ALL {
            assert_eq!(Verb::parse(v.name()).unwrap(), v);
        }
        assert!(Verb::parse("gossip").is_err());
    }
}
