//! The real distributed driver: child processes over stdin/stdout
//! pipes or TCP peers, plus the worker side of the protocol.
//!
//! The driver owns all I/O and the wall clock; every policy decision
//! stays in the shared [`Coordinator`] state machine, which is also
//! what the deterministic simulator drives — so behavior proven there
//! (byte-identical merges, first-valid-result-wins, bounded respawn,
//! degradation) is the behavior here, modulo real-time jitter that the
//! merge path is immune to by construction.
//!
//! Wire fault injection in real mode: `kill:` entries are applied by
//! the workers themselves (the plan ships in `SPEC`), message entries
//! at the coordinator's receive path.

use super::coordinator::{Cmd, Coordinator, Event};
use super::fault::{Delivery, FaultFilter, FaultPlan};
use super::protocol::{read_frame, write_frame, Msg};
use super::{shard_blob, shard_blob_cached, DistError, DistOptions, DistStats, Transport};
use crate::cache::ShardCache;
use crate::runner::SweepOptions;
use crate::spec::{ResolvedSweep, SweepSpec};
use antdensity_telemetry as telemetry;
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Exit status a worker uses when a `kill:` fault entry fires —
/// distinguishable from crashes in CI logs.
pub const KILLED_BY_PLAN_EXIT: i32 = 9;

enum Wire {
    Msg(u64, Msg),
    Bad(u64, String),
    Eof(u64),
    Conn(TcpStream),
}

struct Link {
    writer: Box<dyn Write + Send>,
    child: Option<Child>,
}

fn default_worker_argv(cache: Option<&ShardCache>) -> Result<Vec<String>, String> {
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate current executable for worker spawn: {e}"))?;
    let mut argv = vec![
        exe.to_string_lossy().into_owned(),
        "sweep-worker".into(),
        "--stdio".into(),
    ];
    // Spawned children inherit the coordinator's cache directory so
    // every worker (and the coordinator's degraded path) shares one
    // store. An explicit worker_argv is the caller's responsibility.
    if let Some(cache) = cache {
        argv.push("--cache".into());
        argv.push(cache.root().to_string_lossy().into_owned());
    }
    Ok(argv)
}

fn spawn_reader<R: std::io::Read + Send + 'static>(id: u64, r: R, tx: mpsc::Sender<Wire>) {
    std::thread::spawn(move || {
        let mut r = BufReader::new(r);
        loop {
            match read_frame(&mut r) {
                Ok(Some(msg)) => {
                    if tx.send(Wire::Msg(id, msg)).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Wire::Eof(id));
                    return;
                }
                Err(e) => {
                    // A real corrupted stream may never resync; report
                    // the frame error and treat the link as dead.
                    let _ = tx.send(Wire::Bad(id, e));
                    let _ = tx.send(Wire::Eof(id));
                    return;
                }
            }
        }
    });
}

/// Drives `pending` to completion over child processes or TCP peers,
/// feeding each completed shard's blob through `sink` exactly once.
/// Returns the run's counters (degraded shards already executed).
pub(crate) fn run_real(
    resolved: &ResolvedSweep,
    pending: &[usize],
    opts: &SweepOptions,
    dopts: &DistOptions,
    sink: &mut dyn FnMut(u64, &str) -> Result<(), String>,
) -> Result<DistStats, DistError> {
    let fail = DistError::Failed;
    let spec_text = dopts.spec_text.clone().ok_or_else(|| {
        fail("distributed transports need the spec text (DistOptions::spec_text)".into())
    })?;
    let mut cfg = dopts.config.clone();
    cfg.can_respawn = matches!(dopts.transport, Transport::Children { .. });
    let plan_text = dopts.plan.to_text();
    let hb_ms = cfg.heartbeat_interval_ms;
    let quick = opts.quick;
    let fuse = opts.fuse;
    let spec_msg = |worker: u64| Msg::Spec {
        worker,
        quick,
        fuse,
        hb_ms,
        plan: plan_text.clone(),
        spec: spec_text.clone(),
    };

    let shards: Vec<u64> = pending.iter().map(|&i| i as u64).collect();
    let mut coord = Coordinator::new(cfg.clone(), resolved.fingerprint, &shards);
    let start = Instant::now();
    let now_ms = move || start.elapsed().as_millis() as u64;
    let (tx, rx) = mpsc::channel::<Wire>();
    let mut links: BTreeMap<u64, Link> = BTreeMap::new();
    let mut filter = FaultFilter::new(&dopts.plan);
    let mut delayed: BTreeMap<(u64, u64), (u64, Msg)> = BTreeMap::new();
    let mut delayed_seq = 0u64;
    let mut respawn_at: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut degraded: Option<Vec<u64>> = None;
    let mut abort: Option<(u64, String)> = None;
    let hb_gap = telemetry::duration_histogram("sweep.dist.heartbeat_gap");
    let mut last_hb: BTreeMap<u64, Instant> = BTreeMap::new();

    let argv = match &dopts.worker_argv {
        Some(argv) if !argv.is_empty() => argv.clone(),
        _ => default_worker_argv(opts.cache.as_deref()).map_err(fail)?,
    };
    let spawn_child =
        |id: u64, links: &mut BTreeMap<u64, Link>, tx: &mpsc::Sender<Wire>| -> Result<(), String> {
            let mut child = Command::new(&argv[0])
                .args(&argv[1..])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(|e| format!("spawn {} failed: {e}", argv[0]))?;
            let mut stdin = child.stdin.take().expect("piped stdin");
            let stdout = child.stdout.take().expect("piped stdout");
            write_frame(&mut stdin, &spec_msg(id)).map_err(|e| format!("SPEC send failed: {e}"))?;
            spawn_reader(id, stdout, tx.clone());
            links.insert(
                id,
                Link {
                    writer: Box::new(stdin),
                    child: Some(child),
                },
            );
            Ok(())
        };

    // Bring the transport up.
    let mut cmds: Vec<Cmd> = Vec::new();
    match &dopts.transport {
        Transport::Children { workers } => {
            for id in 0..*workers as u64 {
                match spawn_child(id, &mut links, &tx) {
                    Ok(()) => {
                        cmds.extend(coord.on_event(now_ms(), Event::Connected { worker: id }))
                    }
                    Err(e) => {
                        eprintln!("sweep-dist: {e}");
                        cmds.extend(coord.on_event(now_ms(), Event::SpawnFailed { worker: id }));
                    }
                }
            }
        }
        Transport::Listen { addr } => {
            let listener = TcpListener::bind(addr)
                .map_err(|e| fail(format!("cannot listen on {addr}: {e}")))?;
            let acceptor_tx = tx.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    if acceptor_tx.send(Wire::Conn(stream)).is_err() {
                        return; // run over; listener drops, port freed
                    }
                }
            });
        }
        Transport::Sim { .. } => {
            return Err(fail(
                "Transport::Sim is driven by dist::sim, not the real runtime".into(),
            ))
        }
    }
    let mut next_peer_id = 0u64;

    loop {
        // Execute pending commands before waiting.
        for cmd in std::mem::take(&mut cmds) {
            match cmd {
                Cmd::SendLease {
                    worker,
                    lease,
                    shard,
                } => {
                    if let Some(link) = links.get_mut(&worker) {
                        let _ = write_frame(&mut link.writer, &Msg::Lease { lease, shard });
                    }
                }
                Cmd::SendShutdown { worker } => {
                    if let Some(link) = links.get_mut(&worker) {
                        let _ = write_frame(&mut link.writer, &Msg::Shutdown);
                    }
                }
                Cmd::Respawn { worker, at_ms } => {
                    respawn_at.entry(at_ms).or_default().push(worker);
                }
                Cmd::Completed { shard, blob } => sink(shard, &blob).map_err(fail)?,
                Cmd::Degrade { shards } => degraded = Some(shards),
                Cmd::Abort { shard, report } => abort = Some((shard, report)),
                Cmd::AllDone => {}
            }
        }
        if coord.finished().is_some() {
            break;
        }

        // Wait until the next timer or message, whichever is first.
        let now = now_ms();
        let mut deadline = now + 100;
        if let Some(d) = coord.next_deadline() {
            deadline = deadline.min(d.max(now + 1));
        }
        if let Some((&at, _)) = respawn_at.iter().next() {
            deadline = deadline.min(at.max(now + 1));
        }
        if let Some((&(at, _), _)) = delayed.iter().next() {
            deadline = deadline.min(at.max(now + 1));
        }
        let wait = Duration::from_millis(deadline.saturating_sub(now).clamp(1, 200));
        match rx.recv_timeout(wait) {
            Ok(Wire::Msg(id, msg)) => {
                let now = now_ms();
                for d in filter.apply(msg) {
                    match d {
                        Delivery::Now(m) => {
                            cmds.extend(deliver(&mut coord, now, id, m, &hb_gap, &mut last_hb));
                        }
                        Delivery::Corrupt => cmds.extend(coord.on_event(
                            now,
                            Event::BadFrame {
                                worker: id,
                                error: "frame checksum mismatch (injected)".into(),
                            },
                        )),
                        Delivery::After(ms, m) => {
                            delayed_seq += 1;
                            delayed.insert((now + ms, delayed_seq), (id, m));
                        }
                    }
                }
            }
            Ok(Wire::Bad(id, e)) => {
                cmds.extend(coord.on_event(
                    now_ms(),
                    Event::BadFrame {
                        worker: id,
                        error: e,
                    },
                ));
            }
            Ok(Wire::Eof(id)) => {
                if let Some(mut link) = links.remove(&id) {
                    if let Some(mut child) = link.child.take() {
                        let _ = child.wait();
                    }
                }
                cmds.extend(coord.on_event(now_ms(), Event::Died { worker: id }));
            }
            Ok(Wire::Conn(stream)) => {
                let id = next_peer_id;
                next_peer_id += 1;
                let _ = stream.set_nodelay(true);
                if let Ok(read_half) = stream.try_clone() {
                    let mut writer: Box<dyn Write + Send> = Box::new(stream);
                    if write_frame(&mut writer, &spec_msg(id)).is_ok() {
                        spawn_reader(id, read_half, tx.clone());
                        links.insert(
                            id,
                            Link {
                                writer,
                                child: None,
                            },
                        );
                        cmds.extend(coord.on_event(now_ms(), Event::Connected { worker: id }));
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // All senders gone (should not happen: we hold `tx`).
                break;
            }
        }

        // Fire due respawns and delayed deliveries, then tick.
        let now = now_ms();
        let due: Vec<u64> = respawn_at.range(..=now).map(|(&at, _)| at).collect();
        for at in due {
            for worker in respawn_at.remove(&at).unwrap_or_default() {
                match spawn_child(worker, &mut links, &tx) {
                    Ok(()) => {
                        cmds.extend(coord.on_event(now, Event::Connected { worker }));
                    }
                    Err(e) => {
                        eprintln!("sweep-dist: respawn w{worker}: {e}");
                        cmds.extend(coord.on_event(now, Event::SpawnFailed { worker }));
                    }
                }
            }
        }
        let due: Vec<(u64, u64)> = delayed.range(..=(now, u64::MAX)).map(|(&k, _)| k).collect();
        for key in due {
            if let Some((id, m)) = delayed.remove(&key) {
                cmds.extend(deliver(&mut coord, now, id, m, &hb_gap, &mut last_hb));
            }
        }
        cmds.extend(coord.on_event(now_ms(), Event::Tick));
    }

    // Tear the transport down: shutdown frames, closed stdins, and a
    // hard kill for any child that ignores both.
    for (_, link) in links.iter_mut() {
        let _ = write_frame(&mut link.writer, &Msg::Shutdown);
    }
    for (_, mut link) in std::mem::take(&mut links) {
        drop(link.writer);
        if let Some(mut child) = link.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
    drop(tx);

    if let Some((shard, report)) = abort {
        return Err(DistError::Mismatch { shard, report });
    }
    let mut stats = coord.stats.clone();
    if let Some(shards) = degraded {
        for shard in shards {
            let blob = match opts.cache.as_deref() {
                Some(cache) => shard_blob_cached(resolved, shard as usize, fuse, cache),
                None => shard_blob(resolved, shard as usize, fuse),
            };
            sink(shard, &blob).map_err(fail)?;
            stats.degraded += 1;
        }
    }
    Ok(stats)
}

/// Maps one delivered message to a coordinator event, recording
/// heartbeat-gap telemetry on the way.
fn deliver(
    coord: &mut Coordinator,
    now: u64,
    id: u64,
    msg: Msg,
    hb_gap: &telemetry::registry::DurationHistogram,
    last_hb: &mut BTreeMap<u64, Instant>,
) -> Vec<Cmd> {
    let event = match msg {
        Msg::Hello {
            worker,
            fingerprint,
        } => Event::Hello {
            worker,
            fingerprint,
        },
        Msg::Result { lease, shard, blob } => {
            last_hb.remove(&lease);
            Event::Result {
                worker: id,
                lease,
                shard,
                blob,
            }
        }
        Msg::Heartbeat { worker, lease } => {
            if telemetry::enabled() {
                let at = Instant::now();
                if let Some(prev) = last_hb.insert(lease, at) {
                    hb_gap.record_ns(at.duration_since(prev).as_nanos() as u64);
                }
            }
            Event::Heartbeat { worker, lease }
        }
        Msg::Nack { lease, reason } => Event::Nack {
            worker: id,
            lease,
            reason,
        },
        // SPEC/LEASE/SHUTDOWN never flow worker → coordinator.
        _ => {
            return coord.on_event(
                now,
                Event::BadFrame {
                    worker: id,
                    error: "unexpected coordinator-bound verb".into(),
                },
            )
        }
    };
    coord.on_event(now, event)
}

/// The worker side of the protocol, generic over the transport.
/// Reads `SPEC`, answers `HELLO`, then serves leases until `SHUTDOWN`
/// or EOF; heartbeats ride a helper thread while a shard computes.
/// With a `cache`, each lease consults the worker-local store before
/// stepping — a verified hit is returned as the result blob without
/// simulating (the bytes are identical either way, so the coordinator's
/// first-valid-wins and mismatch-abort logic are untouched).
///
/// # Errors
///
/// Returns protocol violations and I/O failures as displayable
/// messages; a scripted `kill:` fault exits the process with
/// [`KILLED_BY_PLAN_EXIT`] instead of returning.
pub fn worker_loop<R: std::io::BufRead>(
    mut r: R,
    w: Arc<Mutex<Box<dyn Write + Send>>>,
    cache: Option<&ShardCache>,
) -> Result<(), String> {
    let first = read_frame(&mut r)?.ok_or("connection closed before SPEC")?;
    let Msg::Spec {
        worker,
        quick,
        fuse,
        hb_ms,
        plan,
        spec,
    } = first
    else {
        return Err(format!("expected SPEC, got {}", first_verb(&first)));
    };
    let plan = FaultPlan::parse(&plan)?;
    let resolved = SweepSpec::parse(&spec)?.resolve(quick)?;
    send(
        &w,
        &Msg::Hello {
            worker,
            fingerprint: resolved.fingerprint,
        },
    )?;
    let mut ordinal = 0u64;
    loop {
        match read_frame(&mut r) {
            Ok(None) | Ok(Some(Msg::Shutdown)) => return Ok(()),
            Ok(Some(Msg::Lease { lease, shard })) => {
                ordinal += 1;
                if plan.kills(worker, lease, ordinal) {
                    // Scripted abrupt death: no shutdown handshake, no
                    // flush — the coordinator sees EOF.
                    std::process::exit(KILLED_BY_PLAN_EXIT);
                }
                if shard as usize >= resolved.fused.len() {
                    send(
                        &w,
                        &Msg::Nack {
                            lease,
                            reason: format!(
                                "shard {shard} out of range ({} fused shards)",
                                resolved.fused.len()
                            ),
                        },
                    )?;
                    continue;
                }
                let blob = compute_with_heartbeats(
                    &w, &resolved, worker, lease, shard, fuse, hb_ms, cache,
                );
                send(&w, &Msg::Result { lease, shard, blob })?;
            }
            Ok(Some(other)) => return Err(format!("unexpected {} frame", first_verb(&other))),
            Err(e) => return Err(e),
        }
    }
}

fn first_verb(msg: &Msg) -> &'static str {
    msg.verb().name()
}

fn send(w: &Arc<Mutex<Box<dyn Write + Send>>>, msg: &Msg) -> Result<(), String> {
    let mut guard = w.lock().map_err(|_| "writer poisoned".to_string())?;
    write_frame(&mut *guard, msg).map_err(|e| format!("send failed: {e}"))
}

#[allow(clippy::too_many_arguments)]
fn compute_with_heartbeats(
    w: &Arc<Mutex<Box<dyn Write + Send>>>,
    resolved: &ResolvedSweep,
    worker: u64,
    lease: u64,
    shard: u64,
    fuse: bool,
    hb_ms: u64,
    cache: Option<&ShardCache>,
) -> String {
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let w = Arc::clone(w);
        let stop = Arc::clone(&stop);
        let every = Duration::from_millis(hb_ms.max(10));
        std::thread::spawn(move || {
            let mut since_beat = Duration::ZERO;
            let step = Duration::from_millis(10);
            loop {
                std::thread::sleep(step);
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                since_beat += step;
                if since_beat >= every {
                    since_beat = Duration::ZERO;
                    if send(&w, &Msg::Heartbeat { worker, lease }).is_err() {
                        return; // coordinator gone; computation finishes anyway
                    }
                }
            }
        })
    };
    let blob = match cache {
        Some(cache) => shard_blob_cached(resolved, shard as usize, fuse, cache),
        None => shard_blob(resolved, shard as usize, fuse),
    };
    stop.store(true, Ordering::Relaxed);
    let _ = pump.join();
    blob
}

/// Runs a worker speaking frames on stdin/stdout — the child half of
/// `repro sweep … --serve-shards` (`repro sweep-worker --stdio`).
/// Anything the worker wants to say to a human goes to stderr; stdout
/// carries only frames. `cache` is the worker-local shard result
/// store (`repro sweep-worker --cache DIR`; forwarded automatically to
/// spawned children when the coordinator runs with `--cache`).
///
/// # Errors
///
/// Returns protocol violations and I/O failures as displayable
/// messages.
pub fn run_worker_stdio(cache: Option<&ShardCache>) -> Result<(), String> {
    let stdin = std::io::stdin();
    let writer: Arc<Mutex<Box<dyn Write + Send>>> =
        Arc::new(Mutex::new(Box::new(std::io::stdout())));
    worker_loop(BufReader::new(stdin.lock()), writer, cache)
}

/// Runs a worker that dials a listening coordinator — the peer half of
/// `repro sweep … --listen ADDR` (`repro sweep-worker --connect ADDR`).
/// `cache` as in [`run_worker_stdio`].
///
/// # Errors
///
/// Returns connection failures, protocol violations, and I/O failures
/// as displayable messages.
pub fn run_worker_connect(addr: &str, cache: Option<&ShardCache>) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let writer: Arc<Mutex<Box<dyn Write + Send>>> = Arc::new(Mutex::new(Box::new(stream)));
    worker_loop(BufReader::new(read_half), writer, cache)
}
