//! Fault-tolerant distributed sweep execution.
//!
//! A coordinator/worker split over the already-deterministic,
//! bit-exactly-checkpointed fused shards: the coordinator leases shard
//! ids to workers (child processes over stdin/stdout pipes, TCP peers,
//! or the in-process simulator), workers return aggregate blobs in the
//! checkpoint text format, and the coordinator merges them through the
//! same cell-keyed path the in-process runner uses. Because shard `i`
//! is a pure function of `(resolved spec, i)` and blobs carry raw
//! f64 bit patterns, the final report is **byte-identical regardless
//! of worker count, topology, failure schedule, or re-issue order** —
//! the property `tests/dist_determinism.rs` pins across seeded
//! [`FaultPlan`]s.
//!
//! Layering:
//!
//! - [`protocol`] — length-prefixed, checksummed frames
//!   (`SPEC`/`HELLO`/`LEASE`/`RESULT`/`HEARTBEAT`/`NACK`/`SHUTDOWN`).
//! - [`fault`] — the deterministic fault-injection grammar and filter.
//! - [`coordinator`] — the clock-agnostic policy state machine
//!   (leases, expiry, re-issue, respawn backoff, degradation, abort).
//! - [`sim`] — the discrete-event driver under a virtual clock (the
//!   property suite's workhorse).
//! - [`runtime`] — the real driver: spawned children or TCP peers,
//!   plus the worker side of the protocol.
//!
//! Entry point: [`run_sweep_distributed`], the distributed sibling of
//! [`crate::run_sweep`].

pub mod coordinator;
pub mod fault;
pub mod protocol;
pub mod runtime;
pub mod sim;

pub use coordinator::{Cmd, Coordinator, DistConfig, Event, FinishKind, WorkerId};
pub use fault::{FaultAction, FaultFilter, FaultPlan};
pub use protocol::{Msg, Verb};
pub use sim::SimOutcome;

use crate::aggregate::CellAggregate;
use crate::checkpoint::{self, Checkpoint, CheckpointLock};
use crate::runner::{load_resume, partition_pending, ShardObserver, SweepOptions, SweepOutcome};
use crate::spec::{ResolvedSweep, SweepSpec};
use antdensity_telemetry as telemetry;
use std::collections::BTreeMap;

// Distributed-layer telemetry: lease/retry/re-issue counters surfaced
// in METRICS schema v2; the heartbeat-gap histogram is recorded by the
// real runtime (the simulator's virtual clock would poison it).
static TM_LEASES: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.dist.leases");
static TM_REISSUES: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.dist.reissues");
static TM_RESPAWNS: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.dist.respawns");
static TM_DUPLICATES: telemetry::LazyCounter =
    telemetry::LazyCounter::new("sweep.dist.duplicate_results");
static TM_DEATHS: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.dist.worker_deaths");
static TM_DEGRADED: telemetry::LazyCounter =
    telemetry::LazyCounter::new("sweep.dist.degraded_shards");

/// Counters one distributed run accumulated; surfaced in METRICS v2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistStats {
    /// Distinct worker slots that completed the HELLO handshake.
    pub workers_seen: u64,
    /// Leases issued (re-issues included).
    pub leases: u64,
    /// Shards re-queued after lease expiry or holder death.
    pub reissues: u64,
    /// Worker respawns attempted.
    pub respawns: u64,
    /// Duplicate results received (bit-equal ones; an unequal one
    /// aborts the run before it is counted here twice).
    pub duplicates: u64,
    /// Worker transports that died.
    pub deaths: u64,
    /// Leases refused by workers.
    pub nacks: u64,
    /// Frames that failed checksum/decode (includes injected
    /// corruption).
    pub bad_frames: u64,
    /// Shards executed in-process after degradation.
    pub degraded: u64,
}

/// How worker processes are reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// The deterministic discrete-event simulator (no processes, no
    /// wall clock) — what the property suite drives.
    Sim {
        /// Virtual worker count.
        workers: usize,
    },
    /// Child processes speaking frames over stdin/stdout pipes
    /// (`repro sweep … --serve-shards`).
    Children {
        /// Children to spawn.
        workers: usize,
    },
    /// TCP peers that connect to us (`repro sweep … --listen ADDR`;
    /// peers run `repro sweep-worker --connect ADDR`).
    Listen {
        /// Address to bind, e.g. `127.0.0.1:4700`.
        addr: String,
    },
}

/// Options for [`run_sweep_distributed`] beyond the shared
/// [`SweepOptions`].
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// How workers are reached.
    pub transport: Transport,
    /// Injected failure schedule (empty in production).
    pub plan: FaultPlan,
    /// Timing and retry policy.
    pub config: DistConfig,
    /// The spec file's text, shipped verbatim to real workers in the
    /// `SPEC` handshake. Required for [`Transport::Children`] and
    /// [`Transport::Listen`]; unused by [`Transport::Sim`].
    pub spec_text: Option<String>,
    /// Worker command line for [`Transport::Children`]; defaults to
    /// `[current_exe, "sweep-worker", "--stdio"]`.
    pub worker_argv: Option<Vec<String>>,
}

impl DistOptions {
    /// Simulator options with the given virtual worker count and fault
    /// plan — the property suite's constructor.
    pub fn sim(workers: usize, plan: FaultPlan) -> Self {
        Self {
            transport: Transport::Sim { workers },
            plan,
            config: DistConfig::default(),
            spec_text: None,
            worker_argv: None,
        }
    }
}

/// Why a distributed run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// Setup, I/O, spec, or merge failure.
    Failed(String),
    /// A duplicate result disagreed byte-for-byte — the structured
    /// report names the shard and the first differing byte. Maps to
    /// exit code 4 in the CLI.
    Mismatch {
        /// The disputed shard.
        shard: u64,
        /// `key=value` mismatch report.
        report: String,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Failed(msg) => write!(f, "{msg}"),
            DistError::Mismatch { shard, report } => {
                write!(f, "result mismatch on shard {shard}: {report}")
            }
        }
    }
}

/// Executes fused shard `index` and renders its aggregates as a
/// checkpoint-text blob covering exactly the shard's member cells —
/// the unit workers return over the wire. Byte-deterministic: every
/// worker (or re-execution) produces the identical blob.
pub fn shard_blob(resolved: &ResolvedSweep, index: usize, fuse: bool) -> String {
    let cells = if fuse {
        crate::runner::run_shard(resolved, index)
    } else {
        crate::runner::run_shard_unfused(resolved, index)
    };
    let ck = Checkpoint {
        fingerprint: resolved.fingerprint,
        cells: resolved.cells.len(),
        shards: cells.into_iter().collect(),
    };
    ck.to_text()
}

/// [`shard_blob`] through the shard result cache: a verified hit is
/// returned as-is (cached blobs *are* the bytes [`shard_blob`] would
/// produce — the cache publishes only computed blobs and verifies
/// checksum, fingerprint, and cell count on read); a miss computes and
/// publishes. Workers holding a local cache serve leases through this,
/// and the coordinator cannot tell the difference: first-valid-wins
/// and the byzantine-mismatch abort compare the same bytes either way.
pub fn shard_blob_cached(
    resolved: &ResolvedSweep,
    index: usize,
    fuse: bool,
    cache: &crate::cache::ShardCache,
) -> String {
    if let Some(blob) = cache.blob_get(resolved, index) {
        return blob;
    }
    let blob = shard_blob(resolved, index, fuse);
    cache.blob_put(resolved, index, &blob);
    blob
}

/// Parses a returned blob into its `(cell index, aggregate)` pairs
/// after checking it answers for *this* spec.
///
/// # Errors
///
/// Returns parse failures and fingerprint/cell-count mismatches (a
/// worker answering for a different spec).
pub fn parse_blob(
    resolved: &ResolvedSweep,
    blob: &str,
) -> Result<Vec<(usize, CellAggregate)>, String> {
    let ck = Checkpoint::parse(blob)?;
    if ck.fingerprint != resolved.fingerprint {
        return Err(format!(
            "result blob fingerprint {:016x} does not match the resolved spec ({:016x})",
            ck.fingerprint, resolved.fingerprint
        ));
    }
    if ck.cells != resolved.cells.len() {
        return Err(format!(
            "result blob records {} cells, spec resolves to {}",
            ck.cells,
            resolved.cells.len()
        ));
    }
    Ok(ck.shards.into_iter().collect())
}

/// Parses a returned blob and merges its cell aggregates into `done`.
///
/// # Errors
///
/// Exactly [`parse_blob`]'s error conditions.
pub fn merge_blob(
    resolved: &ResolvedSweep,
    blob: &str,
    done: &mut BTreeMap<usize, CellAggregate>,
) -> Result<(), String> {
    for (cell, agg) in parse_blob(resolved, blob)? {
        done.insert(cell, agg);
    }
    Ok(())
}

/// Sentinel error message the merge sink raises when an observer
/// cancels a distributed run; [`run_sweep_distributed_observed`]
/// intercepts it and returns the partial outcome instead of an error.
const CANCELLED_SENTINEL: &str = "sweep cancelled by observer";

/// The distributed sibling of [`crate::run_sweep`]: resolves `spec`,
/// hands pending fused shards to workers over the chosen transport,
/// merges returned blobs through the cell-keyed checkpoint path, and
/// assembles the same [`SweepOutcome`] the in-process runner would —
/// bit-identical aggregates included. Resume, `max_shards` budgets,
/// and checkpoint cadence behave exactly as in [`crate::run_sweep`].
///
/// # Errors
///
/// [`DistError::Mismatch`] when two workers returned byte-unequal
/// blobs for one shard; [`DistError::Failed`] for everything else
/// (spec, checkpoint, lock, transport, or merge failures).
pub fn run_sweep_distributed(
    spec: &SweepSpec,
    opts: &SweepOptions,
    dopts: &DistOptions,
) -> Result<(SweepOutcome, DistStats), DistError> {
    run_sweep_distributed_observed(spec, opts, dopts, &mut |_, _, _| true)
}

/// [`run_sweep_distributed`] with a per-shard observer, the distributed
/// sibling of [`crate::runner::run_sweep_observed`]: each accepted
/// result blob is parsed once, observed as `(cell index, aggregate)`
/// pairs, then merged. Returning `false` cancels the run — the
/// transport is torn down (children see EOF and exit) and the partial
/// outcome comes back `Ok` with `complete == false`. Stats from a
/// cancelled run are the default (the coordinator aborted before its
/// final accounting).
///
/// # Errors
///
/// Exactly [`run_sweep_distributed`]'s error conditions.
pub fn run_sweep_distributed_observed(
    spec: &SweepSpec,
    opts: &SweepOptions,
    dopts: &DistOptions,
    on_shard: &mut ShardObserver<'_>,
) -> Result<(SweepOutcome, DistStats), DistError> {
    let resolved = spec.resolve(opts.quick).map_err(DistError::Failed)?;
    let _lock = match &opts.checkpoint {
        Some(path) => Some(CheckpointLock::acquire(path).map_err(DistError::Failed)?),
        None => None,
    };
    let mut done = load_resume(&resolved, opts.checkpoint.as_deref(), opts.resume)
        .map_err(DistError::Failed)?;
    let (resumed, mut pending) = partition_pending(&resolved, &done);
    if let Some(budget) = opts.max_shards {
        pending.truncate(budget);
    }

    let mut executed_shards: Vec<usize> = Vec::new();
    let mut stats = DistStats::default();
    if !pending.is_empty() {
        let ckpt = opts.checkpoint.clone();
        let every = opts.checkpoint_every.max(1);
        let fingerprint = resolved.fingerprint;
        let cells_len = resolved.cells.len();
        {
            let resolved_ref = &resolved;
            let done_ref = &mut done;
            let executed_ref = &mut executed_shards;
            let observer = &mut *on_shard;
            let mut sink = move |shard: u64, blob: &str| -> Result<(), String> {
                let cells = parse_blob(resolved_ref, blob)?;
                let go = observer(resolved_ref, shard as usize, &cells);
                for (cell, agg) in cells {
                    done_ref.insert(cell, agg);
                }
                executed_ref.push(shard as usize);
                if let Some(path) = &ckpt {
                    if executed_ref.len().is_multiple_of(every) {
                        checkpoint::save_shards(path, fingerprint, cells_len, done_ref)
                            .map_err(|e| format!("checkpoint write failed: {e}"))?;
                    }
                }
                if go {
                    Ok(())
                } else {
                    Err(CANCELLED_SENTINEL.to_string())
                }
            };
            let run = match &dopts.transport {
                Transport::Sim { workers } => sim::run_sim(
                    &resolved,
                    &pending,
                    opts.fuse,
                    *workers,
                    &dopts.plan,
                    &dopts.config,
                    &mut sink,
                )
                .map(|outcome| outcome.stats),
                Transport::Children { .. } | Transport::Listen { .. } => {
                    runtime::run_real(&resolved, &pending, opts, dopts, &mut sink)
                }
            };
            match run {
                Ok(s) => stats = s,
                // A cancel is a clean early stop, not a failure: keep
                // what was merged, fall through to assemble the
                // partial outcome.
                Err(DistError::Failed(msg)) if msg.contains(CANCELLED_SENTINEL) => {}
                Err(e) => return Err(e),
            }
        }
        if let Some(path) = &opts.checkpoint {
            checkpoint::save_shards(path, resolved.fingerprint, resolved.cells.len(), &done)
                .map_err(|e| DistError::Failed(format!("checkpoint write failed: {e}")))?;
        }
    }

    TM_LEASES.add(stats.leases);
    TM_REISSUES.add(stats.reissues);
    TM_RESPAWNS.add(stats.respawns);
    TM_DUPLICATES.add(stats.duplicates);
    TM_DEATHS.add(stats.deaths);
    TM_DEGRADED.add(stats.degraded);

    let mut simulations = 0u64;
    let mut simulated_rounds = 0u64;
    for &i in &executed_shards {
        let shard = &resolved.fused[i];
        if opts.fuse {
            simulations += resolved.trials;
            simulated_rounds += shard.max_rounds() * resolved.trials;
        } else {
            simulations += resolved.trials * shard.cells.len() as u64;
            simulated_rounds += shard.unfused_rounds() * resolved.trials;
        }
    }
    let executed = executed_shards.len();
    let workers_requested = match &dopts.transport {
        Transport::Sim { workers } | Transport::Children { workers } => *workers,
        Transport::Listen { .. } => stats.workers_seen as usize,
    };
    let aggregates: Vec<Option<CellAggregate>> =
        (0..resolved.cells.len()).map(|i| done.remove(&i)).collect();
    let complete = aggregates.iter().all(Option::is_some);
    let outcome = SweepOutcome {
        resolved,
        aggregates,
        complete,
        executed,
        resumed,
        simulations,
        simulated_rounds,
        workers_requested,
        workers_effective: stats.workers_seen as usize,
    };
    Ok((outcome, stats))
}
