//! The clock-agnostic coordinator state machine.
//!
//! [`Coordinator`] owns every distributed-sweep policy decision —
//! lease issue, heartbeat liveness, straggler re-issue, first-valid-
//! result-wins deduplication, respawn backoff, degradation, mismatch
//! abort — but performs **no I/O and reads no clock**. Drivers (the
//! discrete-event simulator in [`super::sim`], the process/TCP runtime
//! in [`super::runtime`]) feed it [`Event`]s stamped with *their*
//! notion of "now" in milliseconds and execute the returned [`Cmd`]s.
//! That inversion is what makes the fault-injection property suite
//! deterministic: the same events in the same order produce the same
//! leases, re-issues, and log, regardless of wall clock.
//!
//! Failure policy (the "failure matrix" — DESIGN.md renders the prose
//! version):
//!
//! - **Lease expiry**: a lease with no heartbeat for
//!   `heartbeat_timeout_ms`, or older than `lease_timeout_ms`
//!   outright, is moved to the stale set and its shard re-queued at
//!   the front. The holder becomes a *straggler*: it gets no new work,
//!   but a result it eventually returns is still merged (first valid
//!   result wins; a byte-unequal duplicate aborts the run).
//! - **Worker death**: its active lease is re-queued immediately; the
//!   slot respawns with exponential backoff + deterministic jitter up
//!   to `max_respawns` times, then is lost for good.
//! - **NACK**: the shard is re-queued at the back; a shard refused
//!   more than `max_respawns` times aborts (it would never finish).
//! - **Degradation**: when every slot is lost (or nothing ever said
//!   HELLO within `spawn_grace_ms`), the remaining shards are handed
//!   back to the driver for in-process execution.

use super::DistStats;
use antdensity_stats::rng::SeedSequence;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Worker slot identifier (stable across respawns of that slot).
pub type WorkerId = u64;

/// Stream label separating respawn-jitter derivation from every other
/// consumer of the distributed seed.
const JITTER_STREAM: u64 = 0x4A49_5454_4552_0000; // "JITTER"

/// Timing and retry policy for a distributed run. All values are
/// milliseconds in the *driver's* clock (virtual for the simulator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistConfig {
    /// How often workers heartbeat while computing (shipped to workers
    /// in the `SPEC` handshake).
    pub heartbeat_interval_ms: u64,
    /// A lease with no heartbeat for this long is expired and
    /// re-issued.
    pub heartbeat_timeout_ms: u64,
    /// Hard cap on a lease's age regardless of heartbeats.
    pub lease_timeout_ms: u64,
    /// Respawn attempts per worker slot before it is lost for good;
    /// also the per-shard NACK budget.
    pub max_respawns: u64,
    /// First respawn backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_max_ms: u64,
    /// If nothing ever says HELLO within this window, degrade to
    /// in-process execution.
    pub spawn_grace_ms: u64,
    /// Seed for deterministic respawn jitter (derived per
    /// `(slot, attempt)` — never from the clock).
    pub seed: u64,
    /// Whether dead workers can be respawned (child processes: yes;
    /// TCP peers that connect to us: no).
    pub can_respawn: bool,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval_ms: 200,
            heartbeat_timeout_ms: 2_000,
            lease_timeout_ms: 60_000,
            max_respawns: 3,
            backoff_base_ms: 100,
            backoff_max_ms: 5_000,
            spawn_grace_ms: 30_000,
            seed: 0,
            can_respawn: true,
        }
    }
}

/// An input to the state machine, stamped by the driver with its
/// current time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A transport to worker slot `worker` now exists (child spawned /
    /// peer accepted); the driver has sent `SPEC`.
    Connected {
        /// The slot.
        worker: WorkerId,
    },
    /// The worker's `HELLO` arrived.
    Hello {
        /// The slot.
        worker: WorkerId,
        /// Fingerprint of the worker's resolved spec.
        fingerprint: u64,
    },
    /// A `RESULT` arrived.
    Result {
        /// Sending slot.
        worker: WorkerId,
        /// Lease the result answers.
        lease: u64,
        /// Shard the worker claims it executed.
        shard: u64,
        /// Checkpoint-text aggregate blob.
        blob: String,
    },
    /// A `HEARTBEAT` arrived.
    Heartbeat {
        /// Sending slot.
        worker: WorkerId,
        /// Lease being computed.
        lease: u64,
    },
    /// A `NACK` arrived.
    Nack {
        /// Sending slot.
        worker: WorkerId,
        /// Refused lease.
        lease: u64,
        /// Worker's reason.
        reason: String,
    },
    /// A frame from `worker` failed checksum or decode.
    BadFrame {
        /// The slot.
        worker: WorkerId,
        /// The framing error.
        error: String,
    },
    /// The worker's transport died (EOF / process exit).
    Died {
        /// The slot.
        worker: WorkerId,
    },
    /// A scheduled respawn could not be executed.
    SpawnFailed {
        /// The slot.
        worker: WorkerId,
    },
    /// Periodic timer: expire leases, check grace, hand out work.
    Tick,
}

/// An action the driver must execute on the state machine's behalf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cmd {
    /// Send a `LEASE` frame to the worker.
    SendLease {
        /// Target slot.
        worker: WorkerId,
        /// Lease id.
        lease: u64,
        /// Shard index.
        shard: u64,
    },
    /// Send a `SHUTDOWN` frame to the worker.
    SendShutdown {
        /// Target slot.
        worker: WorkerId,
    },
    /// Respawn the slot's worker at the given driver time.
    Respawn {
        /// The slot.
        worker: WorkerId,
        /// Driver time (ms) at which to respawn.
        at_ms: u64,
    },
    /// A shard completed for the first time: merge its blob.
    Completed {
        /// The shard.
        shard: u64,
        /// Its checkpoint-text blob.
        blob: String,
    },
    /// All workers are gone: execute these shards in-process.
    Degrade {
        /// Remaining shards, ascending.
        shards: Vec<u64>,
    },
    /// A duplicate result disagreed byte-for-byte: stop everything.
    Abort {
        /// The disputed shard.
        shard: u64,
        /// Structured mismatch report.
        report: String,
    },
    /// Every shard has completed.
    AllDone,
}

/// How a finished run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishKind {
    /// Every shard completed via workers.
    Done,
    /// Remaining shards were handed back for in-process execution.
    Degraded,
    /// A byte-unequal duplicate result forced an abort.
    Aborted,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum SlotState {
    /// Transport exists, HELLO not yet seen.
    Joining,
    /// Ready for work.
    Idle,
    /// Computing an active lease.
    Busy { lease: u64 },
    /// Still computing a lease that already expired; gets no new work
    /// but its late result is still merged.
    Straggling { lease: u64 },
    /// Dead, respawn scheduled.
    Respawning,
    /// Dead for good.
    Lost,
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    respawns: u64,
}

#[derive(Debug)]
struct LeaseRec {
    shard: u64,
    worker: WorkerId,
    issued_ms: u64,
    last_seen_ms: u64,
}

/// The coordinator state machine. See the module docs for the policy
/// it implements.
#[derive(Debug)]
pub struct Coordinator {
    cfg: DistConfig,
    fingerprint: u64,
    pending: VecDeque<u64>,
    expected: BTreeSet<u64>,
    active: BTreeMap<u64, LeaseRec>,
    stale: BTreeMap<u64, u64>, // expired lease -> shard
    done: BTreeMap<u64, String>,
    nack_counts: BTreeMap<u64, u64>,
    hello_seen: BTreeSet<WorkerId>,
    next_lease: u64,
    workers: BTreeMap<WorkerId, Slot>,
    finish: Option<FinishKind>,
    /// Human-readable event log, deterministic under the simulator —
    /// the property suite asserts it byte-for-byte across replays.
    pub log: Vec<String>,
    /// Run counters, surfaced in METRICS v2.
    pub stats: DistStats,
}

impl Coordinator {
    /// A coordinator that must complete `shards` (fused-shard indices)
    /// for the spec with fingerprint `fingerprint`.
    pub fn new(cfg: DistConfig, fingerprint: u64, shards: &[u64]) -> Self {
        Self {
            cfg,
            fingerprint,
            pending: shards.iter().copied().collect(),
            expected: shards.iter().copied().collect(),
            active: BTreeMap::new(),
            stale: BTreeMap::new(),
            done: BTreeMap::new(),
            nack_counts: BTreeMap::new(),
            hello_seen: BTreeSet::new(),
            next_lease: 1,
            workers: BTreeMap::new(),
            finish: None,
            log: Vec::new(),
            stats: DistStats::default(),
        }
    }

    /// How the run finished, if it has.
    pub fn finished(&self) -> Option<FinishKind> {
        self.finish
    }

    /// The earliest driver time at which a timer could fire (lease
    /// expiry or the spawn-grace deadline); `None` once finished or
    /// when no timer is pending.
    pub fn next_deadline(&self) -> Option<u64> {
        if self.finish.is_some() {
            return None;
        }
        let mut deadline: Option<u64> = None;
        let mut push = |t: u64| deadline = Some(deadline.map_or(t, |d| d.min(t)));
        for rec in self.active.values() {
            push(rec.last_seen_ms + self.cfg.heartbeat_timeout_ms);
            push(rec.issued_ms + self.cfg.lease_timeout_ms);
        }
        if self.stats.workers_seen == 0 {
            push(self.cfg.spawn_grace_ms);
        }
        deadline
    }

    fn log(&mut self, now: u64, line: String) {
        self.log.push(format!("[t={now}] {line}"));
    }

    fn work_done(&self) -> bool {
        self.expected.iter().all(|s| self.done.contains_key(s))
    }

    fn slot(&mut self, worker: WorkerId) -> &mut Slot {
        self.workers.entry(worker).or_insert(Slot {
            state: SlotState::Lost,
            respawns: 0,
        })
    }

    /// Deterministic respawn backoff: exponential with a jitter term
    /// derived from `(seed, slot, attempt)` — never from the clock.
    fn backoff_ms(&self, worker: WorkerId, attempt: u64) -> u64 {
        let exp = self
            .cfg
            .backoff_base_ms
            .saturating_shl(attempt.saturating_sub(1).min(32) as u32)
            .min(self.cfg.backoff_max_ms);
        let jitter_span = self.cfg.backoff_base_ms.max(1);
        let jitter = SeedSequence::new(self.cfg.seed ^ JITTER_STREAM)
            .subsequence(worker)
            .derive(attempt)
            % jitter_span;
        exp + jitter
    }

    fn assign(&mut self, now: u64, cmds: &mut Vec<Cmd>) {
        if self.finish.is_some() {
            return;
        }
        loop {
            if self.pending.is_empty() {
                return;
            }
            let Some(worker) = self
                .workers
                .iter()
                .find(|(_, s)| s.state == SlotState::Idle)
                .map(|(&w, _)| w)
            else {
                return;
            };
            let shard = self.pending.pop_front().expect("checked non-empty");
            // A re-queued shard may have completed via a straggler
            // while it waited; never lease finished work.
            if self.done.contains_key(&shard) {
                continue;
            }
            let lease = self.next_lease;
            self.next_lease += 1;
            self.active.insert(
                lease,
                LeaseRec {
                    shard,
                    worker,
                    issued_ms: now,
                    last_seen_ms: now,
                },
            );
            self.slot(worker).state = SlotState::Busy { lease };
            self.stats.leases += 1;
            self.log(now, format!("lease {lease} shard {shard} -> w{worker}"));
            cmds.push(Cmd::SendLease {
                worker,
                lease,
                shard,
            });
        }
    }

    fn finish_if_done(&mut self, now: u64, cmds: &mut Vec<Cmd>) {
        if self.finish.is_some() || !self.work_done() {
            return;
        }
        self.finish = Some(FinishKind::Done);
        self.log(now, "all shards done".into());
        let alive: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, s)| {
                !matches!(
                    s.state,
                    SlotState::Lost | SlotState::Respawning | SlotState::Joining
                )
            })
            .map(|(&w, _)| w)
            .collect();
        for w in alive {
            cmds.push(Cmd::SendShutdown { worker: w });
        }
        cmds.push(Cmd::AllDone);
    }

    /// Degrade when no slot can ever work again: every known slot is
    /// lost (and at least one slot ever existed), or nothing said
    /// HELLO within the grace window.
    fn check_degrade(&mut self, now: u64, cmds: &mut Vec<Cmd>) {
        if self.finish.is_some() || self.work_done() {
            return;
        }
        let any_alive = self
            .workers
            .values()
            .any(|s| !matches!(s.state, SlotState::Lost));
        let all_lost = !self.workers.is_empty() && !any_alive;
        let grace_expired = self.stats.workers_seen == 0 && now >= self.cfg.spawn_grace_ms;
        if !(all_lost || grace_expired) {
            return;
        }
        self.finish = Some(FinishKind::Degraded);
        // Everything not yet done comes back: queued shards plus those
        // still out on active/stale leases.
        let shards: Vec<u64> = self
            .expected
            .iter()
            .copied()
            .filter(|s| !self.done.contains_key(s))
            .collect();
        self.log(
            now,
            format!(
                "degrading to in-process execution ({} shards)",
                shards.len()
            ),
        );
        cmds.push(Cmd::Degrade { shards });
    }

    /// Feeds one event through the state machine. `now_ms` is the
    /// driver's current time; it must be non-decreasing across calls.
    pub fn on_event(&mut self, now_ms: u64, ev: Event) -> Vec<Cmd> {
        let mut cmds = Vec::new();
        if self.finish.is_some() {
            return cmds;
        }
        match ev {
            Event::Connected { worker } => {
                let slot = self.slot(worker);
                slot.state = SlotState::Joining;
                self.log(now_ms, format!("w{worker} connected"));
            }
            Event::Hello {
                worker,
                fingerprint,
            } => {
                self.hello_seen.insert(worker);
                self.stats.workers_seen = self.hello_seen.len() as u64;
                if fingerprint != self.fingerprint {
                    self.slot(worker).state = SlotState::Lost;
                    self.log(
                        now_ms,
                        format!(
                            "w{worker} resolved fingerprint {fingerprint:016x}, \
                             expected {:016x} — shutting it down",
                            self.fingerprint
                        ),
                    );
                    cmds.push(Cmd::SendShutdown { worker });
                    self.check_degrade(now_ms, &mut cmds);
                } else {
                    self.slot(worker).state = SlotState::Idle;
                    self.log(now_ms, format!("w{worker} hello"));
                    self.assign(now_ms, &mut cmds);
                }
            }
            Event::Result {
                worker,
                lease,
                shard,
                blob,
            } => {
                let known = self
                    .active
                    .remove(&lease)
                    .map(|r| r.shard)
                    .or_else(|| self.stale.remove(&lease));
                match known {
                    None => {
                        // A replayed/duplicated frame for a concluded
                        // lease: never re-merge, but still byte-compare
                        // against the accepted result — a disagreeing
                        // replay is a determinism violation like any
                        // other duplicate.
                        if let Some(prev) = self.done.get(&shard) {
                            self.stats.duplicates += 1;
                            if *prev != blob {
                                let report = mismatch_report(shard, lease, prev, &blob);
                                self.log(
                                    now_ms,
                                    format!("duplicate result for shard {shard} DISAGREES"),
                                );
                                self.finish = Some(FinishKind::Aborted);
                                cmds.push(Cmd::Abort { shard, report });
                                return cmds;
                            }
                            self.log(
                                now_ms,
                                format!("duplicate result for shard {shard} (bit-equal, ignored)"),
                            );
                        } else {
                            self.log(
                                now_ms,
                                format!("w{worker} result for unknown lease {lease}"),
                            );
                        }
                    }
                    Some(expected_shard) if expected_shard != shard => {
                        self.stats.bad_frames += 1;
                        self.log(
                            now_ms,
                            format!(
                                "w{worker} answered lease {lease} with shard {shard}, \
                                 leased {expected_shard} — re-queueing"
                            ),
                        );
                        if !self.done.contains_key(&expected_shard) {
                            self.pending.push_front(expected_shard);
                            self.stats.reissues += 1;
                        }
                        self.release_slot(worker, lease);
                    }
                    Some(_) => {
                        if let Some(prev) = self.done.get(&shard) {
                            self.stats.duplicates += 1;
                            if *prev != blob {
                                let report = mismatch_report(shard, lease, prev, &blob);
                                self.log(
                                    now_ms,
                                    format!("duplicate result for shard {shard} DISAGREES"),
                                );
                                self.finish = Some(FinishKind::Aborted);
                                cmds.push(Cmd::Abort { shard, report });
                                return cmds;
                            }
                            self.log(
                                now_ms,
                                format!("duplicate result for shard {shard} (bit-equal, ignored)"),
                            );
                        } else {
                            self.done.insert(shard, blob.clone());
                            self.log(
                                now_ms,
                                format!("shard {shard} done (lease {lease}, w{worker})"),
                            );
                            cmds.push(Cmd::Completed { shard, blob });
                        }
                        self.release_slot(worker, lease);
                    }
                }
                self.finish_if_done(now_ms, &mut cmds);
                self.assign(now_ms, &mut cmds);
            }
            Event::Heartbeat { worker, lease } => {
                if let Some(rec) = self.active.get_mut(&lease) {
                    rec.last_seen_ms = now_ms;
                } else if self.stale.contains_key(&lease) {
                    // Straggler still alive; it keeps its (stale) lease.
                    self.log(
                        now_ms,
                        format!("w{worker} straggler heartbeat lease {lease}"),
                    );
                }
            }
            Event::Nack {
                worker,
                lease,
                reason,
            } => {
                self.stats.nacks += 1;
                if let Some(rec) = self.active.remove(&lease) {
                    self.log(
                        now_ms,
                        format!(
                            "w{worker} nack lease {lease} shard {} ({reason})",
                            rec.shard
                        ),
                    );
                    if !self.done.contains_key(&rec.shard) {
                        let count = self.nack_counts.entry(rec.shard).or_insert(0);
                        *count += 1;
                        if *count > self.cfg.max_respawns {
                            let shard = rec.shard;
                            self.finish = Some(FinishKind::Aborted);
                            cmds.push(Cmd::Abort {
                                shard,
                                report: format!(
                                    "shard {shard} refused {count} times (last reason: {reason})"
                                ),
                            });
                            return cmds;
                        }
                        self.pending.push_back(rec.shard);
                    }
                }
                self.release_slot(worker, lease);
                self.assign(now_ms, &mut cmds);
            }
            Event::BadFrame { worker, error } => {
                self.stats.bad_frames += 1;
                self.log(now_ms, format!("w{worker} bad frame: {error}"));
                // The lease (if the lost frame was its RESULT) recovers
                // via expiry; nothing else to do.
            }
            Event::Died { worker } => {
                self.stats.deaths += 1;
                let state = self.slot(worker).state.clone();
                match state {
                    SlotState::Busy { lease } => {
                        if let Some(rec) = self.active.remove(&lease) {
                            if !self.done.contains_key(&rec.shard) {
                                self.pending.push_front(rec.shard);
                                self.stats.reissues += 1;
                            }
                            self.log(
                                now_ms,
                                format!(
                                    "w{worker} died holding lease {lease} — \
                                     re-queueing shard {}",
                                    rec.shard
                                ),
                            );
                        }
                    }
                    SlotState::Straggling { lease } => {
                        self.stale.remove(&lease);
                        self.log(now_ms, format!("w{worker} (straggler) died"));
                    }
                    _ => self.log(now_ms, format!("w{worker} died")),
                }
                let (can, attempts, max) = (
                    self.cfg.can_respawn,
                    self.slot(worker).respawns,
                    self.cfg.max_respawns,
                );
                if can && attempts < max {
                    let attempt = attempts + 1;
                    self.slot(worker).respawns = attempt;
                    self.slot(worker).state = SlotState::Respawning;
                    self.stats.respawns += 1;
                    let at_ms = now_ms + self.backoff_ms(worker, attempt);
                    self.log(
                        now_ms,
                        format!("respawning w{worker} (attempt {attempt}) at t={at_ms}"),
                    );
                    cmds.push(Cmd::Respawn { worker, at_ms });
                } else {
                    self.slot(worker).state = SlotState::Lost;
                    self.log(now_ms, format!("w{worker} lost for good"));
                }
                self.finish_if_done(now_ms, &mut cmds);
                self.check_degrade(now_ms, &mut cmds);
                self.assign(now_ms, &mut cmds);
            }
            Event::SpawnFailed { worker } => {
                self.slot(worker).state = SlotState::Lost;
                self.log(now_ms, format!("w{worker} respawn failed — lost for good"));
                self.check_degrade(now_ms, &mut cmds);
            }
            Event::Tick => {
                let expired: Vec<(u64, u64, WorkerId)> = self
                    .active
                    .iter()
                    .filter(|(_, rec)| {
                        now_ms.saturating_sub(rec.last_seen_ms) > self.cfg.heartbeat_timeout_ms
                            || now_ms.saturating_sub(rec.issued_ms) > self.cfg.lease_timeout_ms
                    })
                    .map(|(&l, rec)| (l, rec.shard, rec.worker))
                    .collect();
                // Earliest-issued expired shard ends up at the very
                // front of the queue.
                for &(lease, shard, worker) in expired.iter().rev() {
                    self.active.remove(&lease);
                    self.stale.insert(lease, shard);
                    if !self.done.contains_key(&shard) {
                        self.pending.push_front(shard);
                        self.stats.reissues += 1;
                    }
                    self.log(
                        now_ms,
                        format!("lease {lease} shard {shard} (w{worker}) expired — re-queueing"),
                    );
                    let slot = self.slot(worker);
                    if slot.state == (SlotState::Busy { lease }) {
                        slot.state = SlotState::Straggling { lease };
                    }
                }
                self.check_degrade(now_ms, &mut cmds);
                self.assign(now_ms, &mut cmds);
            }
        }
        cmds
    }

    /// Returns a busy/straggling slot to idle once `lease` concluded.
    fn release_slot(&mut self, worker: WorkerId, lease: u64) {
        let slot = self.slot(worker);
        match slot.state {
            SlotState::Busy { lease: l } | SlotState::Straggling { lease: l } if l == lease => {
                slot.state = SlotState::Idle;
            }
            _ => {}
        }
    }
}

/// Renders the structured mismatch report for a byte-unequal duplicate.
fn mismatch_report(shard: u64, lease: u64, first: &str, second: &str) -> String {
    let first_diff = first
        .bytes()
        .zip(second.bytes())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| first.len().min(second.len()));
    format!(
        "shard={shard} lease={lease} first_len={} second_len={} first_diff_at={first_diff}",
        first.len(),
        second.len()
    )
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}
impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DistConfig {
        DistConfig {
            heartbeat_interval_ms: 10,
            heartbeat_timeout_ms: 50,
            lease_timeout_ms: 1_000,
            max_respawns: 2,
            backoff_base_ms: 10,
            backoff_max_ms: 100,
            spawn_grace_ms: 500,
            seed: 42,
            can_respawn: true,
        }
    }

    fn join(c: &mut Coordinator, w: WorkerId, t: u64) -> Vec<Cmd> {
        c.on_event(t, Event::Connected { worker: w });
        c.on_event(
            t,
            Event::Hello {
                worker: w,
                fingerprint: 7,
            },
        )
    }

    #[test]
    fn happy_path_single_worker() {
        let mut c = Coordinator::new(cfg(), 7, &[0, 1]);
        let cmds = join(&mut c, 0, 0);
        assert_eq!(
            cmds,
            vec![Cmd::SendLease {
                worker: 0,
                lease: 1,
                shard: 0
            }]
        );
        let cmds = c.on_event(
            10,
            Event::Result {
                worker: 0,
                lease: 1,
                shard: 0,
                blob: "A".into(),
            },
        );
        assert_eq!(
            cmds[0],
            Cmd::Completed {
                shard: 0,
                blob: "A".into()
            }
        );
        assert_eq!(
            cmds[1],
            Cmd::SendLease {
                worker: 0,
                lease: 2,
                shard: 1
            }
        );
        let cmds = c.on_event(
            20,
            Event::Result {
                worker: 0,
                lease: 2,
                shard: 1,
                blob: "B".into(),
            },
        );
        assert!(cmds.contains(&Cmd::AllDone));
        assert!(cmds.contains(&Cmd::SendShutdown { worker: 0 }));
        assert_eq!(c.finished(), Some(FinishKind::Done));
        assert_eq!(c.stats.leases, 2);
        assert_eq!(c.stats.reissues, 0);
    }

    #[test]
    fn fingerprint_mismatch_shuts_worker_down() {
        let mut c = Coordinator::new(cfg(), 7, &[0]);
        c.on_event(0, Event::Connected { worker: 0 });
        let cmds = c.on_event(
            0,
            Event::Hello {
                worker: 0,
                fingerprint: 8,
            },
        );
        assert_eq!(
            cmds,
            vec![
                Cmd::SendShutdown { worker: 0 },
                Cmd::Degrade { shards: vec![0] },
            ],
            "sole worker permanently lost: degrade right away"
        );
        assert_eq!(c.finished(), Some(FinishKind::Degraded));
    }

    /// Drives two workers to the point where w1 holds a re-issued
    /// lease (3) for shard 0 while the straggler w0's first-valid
    /// result already won and shard 2 is still out — so w1's eventual
    /// answer is a mid-run duplicate.
    fn drive_to_duplicate(c: &mut Coordinator) {
        join(c, 0, 0); // lease 1 shard 0
        join(c, 1, 0); // lease 2 shard 1
        c.on_event(
            30,
            Event::Heartbeat {
                worker: 1,
                lease: 2,
            },
        );
        let cmds = c.on_event(60, Event::Tick);
        assert_eq!(cmds, vec![], "w1 alive, no idle worker to re-issue to");
        assert_eq!(c.stats.reissues, 1, "lease 1 expired");
        let cmds = c.on_event(
            65,
            Event::Result {
                worker: 1,
                lease: 2,
                shard: 1,
                blob: "B".into(),
            },
        );
        assert!(
            cmds.contains(&Cmd::SendLease {
                worker: 1,
                lease: 3,
                shard: 0
            }),
            "expired shard re-issued to the now-idle worker: {cmds:?}"
        );
        // the straggler answers first: first valid result wins, and
        // the straggler is assignable again (gets shard 2)
        let cmds = c.on_event(
            70,
            Event::Result {
                worker: 0,
                lease: 1,
                shard: 0,
                blob: "X".into(),
            },
        );
        assert!(cmds.contains(&Cmd::Completed {
            shard: 0,
            blob: "X".into()
        }));
        assert!(cmds.contains(&Cmd::SendLease {
            worker: 0,
            lease: 4,
            shard: 2
        }));
    }

    #[test]
    fn expiry_reissues_and_straggler_duplicate_is_tolerated() {
        let mut c = Coordinator::new(cfg(), 7, &[0, 1, 2]);
        drive_to_duplicate(&mut c);
        // the re-issued copy agrees bit for bit: ignored
        let cmds = c.on_event(
            75,
            Event::Result {
                worker: 1,
                lease: 3,
                shard: 0,
                blob: "X".into(),
            },
        );
        assert!(!cmds.iter().any(|c| matches!(c, Cmd::Completed { .. })));
        assert_eq!(c.stats.duplicates, 1);
        let cmds = c.on_event(
            80,
            Event::Result {
                worker: 0,
                lease: 4,
                shard: 2,
                blob: "C".into(),
            },
        );
        assert!(cmds.contains(&Cmd::AllDone));
        assert_eq!(c.finished(), Some(FinishKind::Done));
    }

    #[test]
    fn byte_unequal_duplicate_aborts() {
        let mut c = Coordinator::new(cfg(), 7, &[0, 1, 2]);
        drive_to_duplicate(&mut c);
        let cmds = c.on_event(
            75,
            Event::Result {
                worker: 1,
                lease: 3,
                shard: 0,
                blob: "tampered".into(),
            },
        );
        match &cmds[..] {
            [Cmd::Abort { shard: 0, report }] => {
                assert!(report.contains("first_diff_at="), "{report}");
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(c.finished(), Some(FinishKind::Aborted));
        assert_eq!(c.stats.duplicates, 1);
    }

    #[test]
    fn death_respawns_with_backoff_then_loses_slot() {
        let mut c = Coordinator::new(cfg(), 7, &[0, 1, 2]);
        join(&mut c, 0, 0);
        let cmds = c.on_event(5, Event::Died { worker: 0 });
        let Some(Cmd::Respawn { worker: 0, at_ms }) = cmds
            .iter()
            .find(|c| matches!(c, Cmd::Respawn { .. }))
            .cloned()
        else {
            panic!("expected respawn, got {cmds:?}");
        };
        assert!(
            (5 + 10..5 + 20).contains(&at_ms),
            "base+jitter, got {at_ms}"
        );
        assert_eq!(c.stats.reissues, 1, "its lease came back");
        // same events replay to the same backoff (determinism)
        let mut c2 = Coordinator::new(cfg(), 7, &[0, 1, 2]);
        join(&mut c2, 0, 0);
        let cmds2 = c2.on_event(5, Event::Died { worker: 0 });
        assert!(cmds2.contains(&Cmd::Respawn { worker: 0, at_ms }));
        // exhaust the respawn budget
        join(&mut c, 0, at_ms);
        c.on_event(at_ms + 1, Event::Died { worker: 0 });
        join(&mut c, 0, at_ms + 50);
        let cmds = c.on_event(at_ms + 51, Event::Died { worker: 0 });
        assert!(
            !cmds.iter().any(|c| matches!(c, Cmd::Respawn { .. })),
            "budget of 2 exhausted: {cmds:?}"
        );
        assert!(cmds.iter().any(|c| matches!(c, Cmd::Degrade { .. })));
        assert_eq!(c.finished(), Some(FinishKind::Degraded));
    }

    #[test]
    fn all_workers_lost_degrades_with_remaining_shards() {
        let mut c = Coordinator::new(
            DistConfig {
                can_respawn: false,
                ..cfg()
            },
            7,
            &[0, 1, 2],
        );
        join(&mut c, 0, 0);
        c.on_event(
            10,
            Event::Result {
                worker: 0,
                lease: 1,
                shard: 0,
                blob: "A".into(),
            },
        );
        let cmds = c.on_event(20, Event::Died { worker: 0 });
        assert!(
            cmds.contains(&Cmd::Degrade { shards: vec![1, 2] }),
            "{cmds:?}"
        );
    }

    #[test]
    fn nothing_ever_connects_degrades_after_grace() {
        let mut c = Coordinator::new(cfg(), 7, &[0, 1]);
        assert_eq!(c.on_event(100, Event::Tick), vec![]);
        let cmds = c.on_event(500, Event::Tick);
        assert_eq!(cmds, vec![Cmd::Degrade { shards: vec![0, 1] }]);
    }

    #[test]
    fn nack_requeues_then_aborts_when_budget_exhausted() {
        let mut c = Coordinator::new(cfg(), 7, &[0, 1]);
        join(&mut c, 0, 0);
        let mut lease = 1;
        for round in 0..2 {
            let cmds = c.on_event(
                10 + round,
                Event::Nack {
                    worker: 0,
                    lease,
                    reason: "no".into(),
                },
            );
            // shard went to the back; the worker immediately gets the
            // other one (or the same again once it cycles)
            assert!(
                cmds.iter().any(|c| matches!(c, Cmd::SendLease { .. })),
                "{cmds:?}"
            );
            lease += 1;
            // complete whatever it got so only shard 0 keeps nacking
            let Cmd::SendLease { shard, .. } = cmds[0].clone() else {
                panic!()
            };
            if shard != 0 {
                c.on_event(
                    20 + round,
                    Event::Result {
                        worker: 0,
                        lease,
                        shard,
                        blob: "B".into(),
                    },
                );
                lease += 1;
            }
        }
        // keep nacking shard 0 until the budget (max_respawns = 2) trips
        let mut aborted = false;
        for i in 0..4 {
            let cmds = c.on_event(
                100 + i,
                Event::Nack {
                    worker: 0,
                    lease,
                    reason: "still no".into(),
                },
            );
            lease += 1;
            if cmds.iter().any(|c| matches!(c, Cmd::Abort { .. })) {
                aborted = true;
                break;
            }
        }
        assert!(aborted, "repeated NACKs must abort");
        assert_eq!(c.finished(), Some(FinishKind::Aborted));
    }

    #[test]
    fn deadline_tracks_heartbeats_and_grace() {
        let mut c = Coordinator::new(cfg(), 7, &[0]);
        assert_eq!(c.next_deadline(), Some(500), "spawn grace");
        join(&mut c, 0, 0);
        assert_eq!(c.next_deadline(), Some(50), "heartbeat timeout");
        c.on_event(
            30,
            Event::Heartbeat {
                worker: 0,
                lease: 1,
            },
        );
        assert_eq!(c.next_deadline(), Some(80));
    }
}
