//! The `METRICS_<name>.json` artifact: one machine-readable snapshot of
//! a sweep invocation's execution profile, written by
//! `repro sweep --metrics`.
//!
//! This file **supersedes** the PR-4 `SWEEP_<name>.timing.json`: every
//! field that file carried (`wall_s`, shard/cell/simulation counts,
//! fused flag) is here, joined by the telemetry registry's counters and
//! duration histograms so CI and humans read one artifact instead of
//! two.
//!
//! # Schema (`antdensity-metrics v3`)
//!
//! ```json
//! {
//!   "schema": "antdensity-metrics v3",
//!   "sweep": "alg1_accuracy",          // spec name
//!   "mode": "quick",                   // quick | full
//!   "fused": true,                     // fused shards vs --no-fuse
//!   "complete": true,                  // every shard finished
//!   "wall_s": 1.234,                   // wall clock of this invocation
//!   "shards": 8,                       // fused shards in the plan
//!   "executed": 8,                     // shards run by this invocation
//!   "resumed": 0,                      // shards restored from checkpoint
//!   "cells": 24,                       // grid cells served
//!   "simulations": 16,                 // simulation passes run
//!   "simulated_rounds": 4096,          // rounds summed over passes
//!   "workers_requested": 8,            // --workers (or default)
//!   "workers_effective": 8,            // clamped to the pool size
//!   "dist": {                          // v2: distributed-run counters
//!     "workers_seen": 4,               //   distinct workers that said HELLO
//!     "leases": 10,                    //   leases issued
//!     "reissues": 2,                   //   leases re-issued after expiry
//!     "respawns": 1,                   //   worker respawn attempts
//!     "duplicates": 1,                 //   byte-equal duplicate results
//!     "deaths": 1,                     //   worker transports lost
//!     "nacks": 0,                      //   refused leases
//!     "bad_frames": 0,                 //   undecodable/corrupt frames
//!     "degraded": 0                    //   shards run in-process after loss
//!   },
//!   "cache": {                         // v3: shard result cache counters
//!     "hits": 6,                       //   shards served from the cache
//!     "misses": 2,                     //   lookups that found nothing
//!     "stores": 2,                     //   blobs published
//!     "corrupt": 0,                    //   entries that failed verification
//!     "bytes_read": 8192,              //   payload bytes served
//!     "bytes_written": 2048,           //   entry bytes written
//!     "evictions": 0,                  //   entries removed by LRU passes
//!     "verify_failures": 0             //   --cache-verify byte mismatches
//!   },
//!   "counters": {                      // telemetry counters, name-sorted
//!     "engine.rounds": 4096,
//!     "sweep.rounds_saved_by_fusion": 1024
//!   },
//!   "histograms": {                    // telemetry duration histograms
//!     "engine.round": {
//!       "count": 4096,                 // recorded durations
//!       "sum_ns": 123456789,           // total time, nanoseconds
//!       "mean_ns": 30140.8,
//!       "p50_ns": 29000.0,             // log-bucket quantiles
//!       "p90_ns": 41000.0,
//!       "p99_ns": 52000.0
//!     }
//!   }
//! }
//! ```
//!
//! Counters and histograms are whatever the registry holds at snapshot
//! time, sorted by name; consumers must treat the *sets* of keys under
//! `counters`/`histograms` as open (new instrumentation appears over
//! time), while the top-level keys above are the stable contract
//! [`validate`] enforces.
//!
//! An in-process run writes `"dist": null`; a cache-off run writes
//! `"cache": null`. [`validate`] also accepts the previous markers:
//! `antdensity-metrics v2` (has `dist`, predates `cache`) and
//! `antdensity-metrics v1` (neither key) — old artifacts keep
//! validating.

use crate::cache::CacheStats;
use crate::dist::DistStats;
use crate::runner::SweepOutcome;
use antdensity_telemetry as telemetry;
use std::path::{Path, PathBuf};

/// A sweep invocation's execution metrics, ready to serialize.
#[derive(Debug, Clone)]
pub struct SweepMetrics {
    /// Sweep name (output-file stem).
    pub name: String,
    /// `quick` or `full`.
    pub mode: &'static str,
    /// Whether shards ran fused (`repro sweep` default) or per-cell
    /// (`--no-fuse`).
    pub fused: bool,
    /// Whether every shard completed.
    pub complete: bool,
    /// Wall-clock seconds of this invocation.
    pub wall_s: f64,
    /// Fused shards in the plan.
    pub shards: usize,
    /// Shards executed by this invocation.
    pub executed: usize,
    /// Shards restored from a checkpoint.
    pub resumed: usize,
    /// Grid cells served.
    pub cells: usize,
    /// Simulation passes this invocation ran.
    pub simulations: u64,
    /// Rounds simulated across those passes.
    pub simulated_rounds: u64,
    /// Worker threads requested.
    pub workers_requested: usize,
    /// Worker threads actually usable (request clamped to pool size).
    pub workers_effective: usize,
    /// Distributed-run counters (`None` for in-process runs, rendered
    /// as `"dist": null`).
    pub dist: Option<DistStats>,
    /// Shard result cache counters (`None` for cache-off runs,
    /// rendered as `"cache": null`).
    pub cache: Option<CacheStats>,
    /// Telemetry registry state at snapshot time.
    pub snapshot: telemetry::Snapshot,
}

impl SweepMetrics {
    /// Assembles metrics from a sweep outcome, the measured wall clock,
    /// and a telemetry snapshot (normally `telemetry::snapshot()` taken
    /// right after the sweep returns).
    pub fn from_outcome(
        outcome: &SweepOutcome,
        fused: bool,
        wall_s: f64,
        snapshot: telemetry::Snapshot,
    ) -> Self {
        Self {
            name: outcome.resolved.name.clone(),
            mode: outcome.resolved.mode,
            fused,
            complete: outcome.complete,
            wall_s,
            shards: outcome.resolved.fused.len(),
            executed: outcome.executed,
            resumed: outcome.resumed,
            cells: outcome.resolved.cells.len(),
            simulations: outcome.simulations,
            simulated_rounds: outcome.simulated_rounds,
            workers_requested: outcome.workers_requested,
            workers_effective: outcome.workers_effective,
            dist: None,
            cache: None,
            snapshot,
        }
    }

    /// Attaches distributed-run counters, marking the file as coming
    /// from a `--serve-shards` invocation.
    #[must_use]
    pub fn with_dist(mut self, stats: DistStats) -> Self {
        self.dist = Some(stats);
        self
    }

    /// Attaches shard-cache counters, marking the file as coming from
    /// a `--cache` invocation.
    #[must_use]
    pub fn with_cache(mut self, stats: CacheStats) -> Self {
        self.cache = Some(stats);
        self
    }

    /// Hand-rolled JSON per the schema above (the workspace is
    /// offline). Deterministic: keys appear in a fixed order, counters
    /// and histograms sorted by name (the registry already stores them
    /// that way).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "0".to_string()
            }
        }
        let mut out = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"sweep\": \"{}\",\n  \"mode\": \"{}\",\n  \
             \"fused\": {},\n  \"complete\": {},\n  \"wall_s\": {:.3},\n  \"shards\": {},\n  \
             \"executed\": {},\n  \"resumed\": {},\n  \"cells\": {},\n  \"simulations\": {},\n  \
             \"simulated_rounds\": {},\n  \"workers_requested\": {},\n  \
             \"workers_effective\": {},\n",
            esc(&self.name),
            self.mode,
            self.fused,
            self.complete,
            self.wall_s,
            self.shards,
            self.executed,
            self.resumed,
            self.cells,
            self.simulations,
            self.simulated_rounds,
            self.workers_requested,
            self.workers_effective,
        );
        match &self.dist {
            None => out.push_str("  \"dist\": null,\n"),
            Some(d) => out.push_str(&format!(
                "  \"dist\": {{\n    \"workers_seen\": {},\n    \"leases\": {},\n    \
                 \"reissues\": {},\n    \"respawns\": {},\n    \"duplicates\": {},\n    \
                 \"deaths\": {},\n    \"nacks\": {},\n    \"bad_frames\": {},\n    \
                 \"degraded\": {}\n  }},\n",
                d.workers_seen,
                d.leases,
                d.reissues,
                d.respawns,
                d.duplicates,
                d.deaths,
                d.nacks,
                d.bad_frames,
                d.degraded,
            )),
        }
        match &self.cache {
            None => out.push_str("  \"cache\": null,\n"),
            Some(c) => out.push_str(&format!(
                "  \"cache\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \
                 \"stores\": {},\n    \"corrupt\": {},\n    \"bytes_read\": {},\n    \
                 \"bytes_written\": {},\n    \"evictions\": {},\n    \
                 \"verify_failures\": {}\n  }},\n",
                c.hits,
                c.misses,
                c.stores,
                c.corrupt,
                c.bytes_read,
                c.bytes_written,
                c.evictions,
                c.verify_failures,
            )),
        }
        out.push_str("  \"counters\": {\n");
        for (i, (name, value)) in self.snapshot.counters.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {}{}\n",
                esc(name),
                value,
                if i + 1 == self.snapshot.counters.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  },\n  \"histograms\": {\n");
        for (i, (name, h)) in self.snapshot.histograms.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"sum_ns\": {}, \"mean_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}{}\n",
                esc(name),
                h.count,
                h.sum_ns,
                num(h.mean_ns()),
                num(h.quantile_ns(0.5)),
                num(h.quantile_ns(0.9)),
                num(h.quantile_ns(0.99)),
                if i + 1 == self.snapshot.histograms.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes `dir/METRICS_<name>.json` and returns its path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("METRICS_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// The schema identifier newly written metrics files carry
/// ([`crate::schema::METRICS_V3`]).
pub const SCHEMA: &str = crate::schema::METRICS_V3;

/// The v2 schema identifier, still accepted by [`validate`]
/// ([`crate::schema::METRICS_V2`]): has `dist`, predates `cache`.
pub const SCHEMA_V2: &str = crate::schema::METRICS_V2;

/// The v1 schema identifier, still accepted by [`validate`]
/// ([`crate::schema::METRICS_V1`]): predates both sections.
pub const SCHEMA_V1: &str = crate::schema::METRICS_V1;

/// Keys [`validate`] requires inside a non-null `dist` object.
const DIST_KEYS: &[&str] = &[
    "workers_seen",
    "leases",
    "reissues",
    "respawns",
    "duplicates",
    "deaths",
    "nacks",
    "bad_frames",
    "degraded",
];

/// Keys [`validate`] requires inside a non-null `cache` object.
const CACHE_KEYS: &[&str] = &[
    "hits",
    "misses",
    "stores",
    "corrupt",
    "bytes_read",
    "bytes_written",
    "evictions",
    "verify_failures",
];

/// Top-level keys [`validate`] requires (besides `schema`).
const REQUIRED_KEYS: &[&str] = &[
    "sweep",
    "mode",
    "fused",
    "complete",
    "wall_s",
    "shards",
    "executed",
    "resumed",
    "cells",
    "simulations",
    "simulated_rounds",
    "workers_requested",
    "workers_effective",
    "counters",
    "histograms",
];

/// What [`validate`] extracts from a well-formed metrics file — enough
/// for CI to print a one-line summary after asserting the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSummary {
    /// Sweep name.
    pub name: String,
    /// Wall-clock seconds recorded.
    pub wall_s: f64,
    /// Number of counter entries.
    pub counters: usize,
    /// Number of histogram entries.
    pub histograms: usize,
    /// Schema version the file declared (1, 2, or 3).
    pub schema_version: u32,
    /// Whether a non-null `dist` section was present (v2+ distributed
    /// runs only).
    pub dist: bool,
    /// Whether a non-null `cache` section was present (v3 `--cache`
    /// runs only).
    pub cache: bool,
}

/// Validates a `METRICS_*.json` file's text against the
/// `antdensity-metrics v3` contract (or the still-accepted v2/v1):
/// the schema marker, every required top-level key, balanced braces,
/// and parseable numbers where the CI gate reads them. Under v3 both
/// the `dist` and `cache` keys must be present — `null` when the
/// corresponding subsystem was off, an object with every counter
/// otherwise; v2 has `dist` but must not have `cache`; v1 has
/// neither. Backs `repro check-metrics`.
///
/// This is a structural check over the hand-rolled format, not a full
/// JSON parser — it rejects the failure modes that matter (truncated
/// writes, renamed keys, a schema bump nobody propagated).
///
/// # Errors
///
/// Returns a one-line description of the first violation found.
pub fn validate(text: &str) -> Result<MetricsSummary, String> {
    if !text.trim_start().starts_with('{') {
        return Err("not a JSON object (no leading '{')".to_string());
    }
    if text.matches('{').count() != text.matches('}').count() {
        return Err("unbalanced braces (truncated file?)".to_string());
    }
    let schema_version = if text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        3
    } else if text.contains(&format!("\"schema\": \"{SCHEMA_V2}\"")) {
        2
    } else if text.contains(&format!("\"schema\": \"{SCHEMA_V1}\"")) {
        1
    } else {
        return Err(format!(
            "missing or wrong schema marker (want `{SCHEMA}`, `{SCHEMA_V2}`, or `{SCHEMA_V1}`)"
        ));
    };
    for key in REQUIRED_KEYS {
        if !text.contains(&format!("\"{key}\":")) {
            return Err(format!("missing required key `{key}`"));
        }
    }
    // A versioned optional section: `null` or an object carrying every
    // listed key, required from `since` on, forbidden before it.
    let section = |key: &str, keys: &[&str], since: u32| -> Result<bool, String> {
        if schema_version < since {
            if text.contains(&format!("\"{key}\":")) {
                return Err(format!(
                    "v{schema_version} file carries a `{key}` key (bump the schema marker)"
                ));
            }
            return Ok(false);
        }
        if text.contains(&format!("\"{key}\": null")) {
            Ok(false)
        } else if text.contains(&format!("\"{key}\": {{")) {
            for k in keys {
                if !text.contains(&format!("\"{k}\":")) {
                    return Err(format!("`{key}` object missing required key `{k}`"));
                }
            }
            Ok(true)
        } else {
            Err(format!(
                "v{schema_version} file needs `{key}`: null or an object"
            ))
        }
    };
    let dist = section("dist", DIST_KEYS, 2)?;
    let cache = section("cache", CACHE_KEYS, 3)?;
    let string_after = |key: &str| -> Option<String> {
        let tag = format!("\"{key}\": \"");
        let start = text.find(&tag)? + tag.len();
        let end = text[start..].find('"')? + start;
        Some(text[start..end].to_string())
    };
    let number_after = |key: &str| -> Result<f64, String> {
        let tag = format!("\"{key}\":");
        let start = text
            .find(&tag)
            .ok_or_else(|| format!("missing required key `{key}`"))?
            + tag.len();
        let rest = text[start..].trim_start();
        let end = rest
            .find([',', '\n', '}'])
            .ok_or_else(|| format!("unterminated value for `{key}`"))?;
        rest[..end]
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("`{key}` is not a number: `{}`", rest[..end].trim()))
    };
    let name = string_after("sweep").ok_or("`sweep` is not a string")?;
    let wall_s = number_after("wall_s")?;
    if !wall_s.is_finite() || wall_s < 0.0 {
        return Err(format!("`wall_s` out of range: {wall_s}"));
    }
    for key in ["shards", "executed", "resumed", "cells"] {
        let v = number_after(key)?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("`{key}` is not a non-negative integer: {v}"));
        }
    }
    // Entry counts inside the two maps: count `"name":` lines between
    // the section opener and its closing brace.
    let section_entries = |key: &str| -> Result<usize, String> {
        let tag = format!("\"{key}\": {{");
        let start = text
            .find(&tag)
            .ok_or_else(|| format!("`{key}` is not an object"))?
            + tag.len();
        let mut depth = 1usize;
        let mut entries = 0usize;
        let mut at_key = true; // next `"` opens a key (not a nested value)
        let bytes = &text.as_bytes()[start..];
        let mut i = 0;
        while i < bytes.len() && depth > 0 {
            match bytes[i] {
                b'{' => {
                    depth += 1;
                    at_key = false;
                }
                b'}' => {
                    depth -= 1;
                    at_key = true;
                }
                b'"' if depth == 1 && at_key => {
                    entries += 1;
                    at_key = false;
                    // skip to the closing quote of this key
                    while i + 1 < bytes.len() && bytes[i + 1] != b'"' {
                        i += 1;
                    }
                    i += 1;
                }
                b',' if depth == 1 => at_key = true,
                _ => {}
            }
            i += 1;
        }
        if depth != 0 {
            return Err(format!("`{key}` object never closes"));
        }
        Ok(entries)
    };
    Ok(MetricsSummary {
        name,
        wall_s,
        counters: section_entries("counters")?,
        histograms: section_entries("histograms")?,
        schema_version,
        dist,
        cache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_sweep, SweepOptions};
    use crate::spec::SweepSpec;

    fn demo_metrics() -> SweepMetrics {
        antdensity_telemetry::set_enabled(true);
        let spec = SweepSpec::parse(
            "
            name = metrics_test
            trials = 2
            topology = complete:32
            density = 0.25
            rounds = 4, 8
            ",
        )
        .unwrap();
        let outcome = run_sweep(&spec, &SweepOptions::default()).unwrap();
        SweepMetrics::from_outcome(&outcome, true, 0.125, antdensity_telemetry::snapshot())
    }

    #[test]
    fn metrics_json_round_trips_the_outcome_counters() {
        let m = demo_metrics();
        assert_eq!(m.shards, 1);
        assert_eq!(m.cells, 2);
        assert_eq!(m.simulations, 2);
        assert_eq!(m.simulated_rounds, 16);
        assert!(m.workers_effective >= 1);
        assert!(m.workers_effective <= m.workers_requested);
        let json = m.to_json();
        assert!(json.contains("\"schema\": \"antdensity-metrics v3\""));
        assert!(json.contains("\"dist\": null"));
        assert!(json.contains("\"cache\": null"));
        assert!(json.contains("\"fused\": true"));
        assert!(json.contains("\"wall_s\": 0.125"));
        assert!(json.contains("\"simulated_rounds\": 16"));
        // telemetry was live: the sweep-layer counters are in the file
        assert!(json.contains("\"sweep.shards_completed\":"));
        assert!(json.contains("\"sweep.shard\": {\"count\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn metrics_json_validates_and_summarizes() {
        let m = demo_metrics();
        let summary = validate(&m.to_json()).unwrap();
        assert_eq!(summary.name, "metrics_test");
        assert!((summary.wall_s - 0.125).abs() < 1e-9);
        assert_eq!(summary.counters, m.snapshot.counters.len());
        assert_eq!(summary.histograms, m.snapshot.histograms.len());
        assert_eq!(summary.schema_version, 3);
        assert!(!summary.dist);
        assert!(!summary.cache);
    }

    #[test]
    fn dist_section_round_trips_and_validates() {
        let stats = crate::dist::DistStats {
            workers_seen: 4,
            leases: 10,
            reissues: 2,
            respawns: 1,
            duplicates: 1,
            deaths: 1,
            nacks: 0,
            bad_frames: 0,
            degraded: 0,
        };
        let m = demo_metrics().with_dist(stats);
        let json = m.to_json();
        assert!(json.contains("\"dist\": {"));
        assert!(json.contains("\"workers_seen\": 4"));
        assert!(json.contains("\"reissues\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let summary = validate(&json).unwrap();
        assert_eq!(summary.schema_version, 3);
        assert!(summary.dist);
        // a dist object missing a counter is rejected
        let broken = json.replace("    \"respawns\": 1,\n", "");
        assert!(validate(&broken).unwrap_err().contains("respawns"));
    }

    #[test]
    fn cache_section_round_trips_and_validates() {
        let stats = crate::cache::CacheStats {
            hits: 6,
            misses: 2,
            stores: 2,
            corrupt: 1,
            bytes_read: 8192,
            bytes_written: 2048,
            evictions: 0,
            verify_failures: 0,
        };
        let m = demo_metrics().with_cache(stats);
        let json = m.to_json();
        assert!(json.contains("\"cache\": {"));
        assert!(json.contains("\"hits\": 6"));
        assert!(json.contains("\"verify_failures\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let summary = validate(&json).unwrap();
        assert_eq!(summary.schema_version, 3);
        assert!(summary.cache);
        assert!(!summary.dist);
        // a cache object missing a counter is rejected
        let broken = json.replace("    \"evictions\": 0,\n", "");
        assert!(validate(&broken).unwrap_err().contains("evictions"));
    }

    #[test]
    fn v2_files_without_cache_still_validate() {
        let m = demo_metrics();
        let v2 = m
            .to_json()
            .replace(SCHEMA, SCHEMA_V2)
            .replace("  \"cache\": null,\n", "");
        let summary = validate(&v2).unwrap();
        assert_eq!(summary.schema_version, 2);
        assert!(!summary.cache);
        // ...but a v2 marker with a cache key is a schema violation
        let mixed = m.to_json().replace(SCHEMA, SCHEMA_V2);
        assert!(validate(&mixed).unwrap_err().contains("bump the schema"));
        // and a v3 file that dropped cache entirely is rejected
        let dropped = m.to_json().replace("  \"cache\": null,\n", "");
        assert!(validate(&dropped).unwrap_err().contains("cache"));
    }

    #[test]
    fn v1_files_without_dist_still_validate() {
        let m = demo_metrics();
        let v1 = m
            .to_json()
            .replace(SCHEMA, SCHEMA_V1)
            .replace("  \"dist\": null,\n", "")
            .replace("  \"cache\": null,\n", "");
        let summary = validate(&v1).unwrap();
        assert_eq!(summary.schema_version, 1);
        assert!(!summary.dist);
        assert!(!summary.cache);
        // ...but a v1 marker with a dist key is a schema violation
        let mixed = m
            .to_json()
            .replace(SCHEMA, SCHEMA_V1)
            .replace("  \"cache\": null,\n", "");
        assert!(validate(&mixed).unwrap_err().contains("bump the schema"));
        // and a v3 file that dropped dist entirely is rejected
        let dropped = m.to_json().replace("  \"dist\": null,\n", "");
        assert!(validate(&dropped).unwrap_err().contains("dist"));
    }

    #[test]
    fn validate_rejects_broken_files() {
        let m = demo_metrics();
        let good = m.to_json();
        assert!(validate("").unwrap_err().contains("JSON object"));
        assert!(validate("{\"schema\": \"v0\"}")
            .unwrap_err()
            .contains("schema marker"));
        // truncation → unbalanced braces
        let truncated = &good[..good.len() - 10];
        assert!(validate(truncated).unwrap_err().contains("braces"));
        // a renamed top-level key is caught
        let renamed = good.replace("\"wall_s\":", "\"walls\":");
        assert!(validate(&renamed).unwrap_err().contains("wall_s"));
        // a non-numeric count is caught
        let corrupt = good.replace("\"shards\": 1", "\"shards\": one");
        assert!(validate(&corrupt).unwrap_err().contains("not a number"));
    }

    #[test]
    fn write_emits_metrics_file() {
        let dir = std::env::temp_dir().join(format!("antdensity_metrics_{}", std::process::id()));
        let path = demo_metrics().write(&dir).unwrap();
        assert!(path.ends_with("METRICS_metrics_test.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        validate(&text).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
