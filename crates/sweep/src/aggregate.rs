//! Streaming per-cell aggregates.
//!
//! A sweep cell may pool millions of per-agent samples (agents × trials),
//! so nothing is buffered: every metric streams into O(1)-memory
//! accumulators from `antdensity_stats` — Welford moments for means and
//! spreads, a fixed-bin histogram for error quantiles, exact counters
//! for band coverage. Aggregates merge associatively
//! ([`CellAggregate::merge`]) and serialize bit-exactly (checkpoints),
//! so a killed-and-resumed sweep reports the identical numbers.

use crate::spec::Cell;
use antdensity_engine::{CountsOutcome, EstimatorSpec, ScenarioOutcome};
use antdensity_stats::histogram::Histogram;
use antdensity_stats::moments::StreamingMoments;

/// Relative-error histogram range: `[0, HIST_HI)` with [`HIST_BINS`]
/// bins (resolution `HIST_HI / HIST_BINS` ≈ 0.8%). Errors above the
/// range land in the overflow counter and clamp quantiles to `HIST_HI`.
pub const HIST_HI: f64 = 4.0;
/// Number of histogram bins.
pub const HIST_BINS: usize = 512;

/// Streaming aggregate over every trial of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellAggregate {
    /// Trials recorded.
    pub trials: u64,
    /// Per-agent density estimates `d̃` (all estimators).
    pub est: StreamingMoments,
    /// Per-agent relative errors of the cell's primary metric —
    /// `|d̃−d|/d` for Algorithm 1/4/quorum, `|f̃−f|/f` for relative
    /// frequency (agents with undefined `f̃` excluded).
    pub err: StreamingMoments,
    /// The same errors binned for quantile read-out.
    pub err_hist: Histogram,
    /// How many error samples fell within the spec's `band`.
    pub within: u64,
    /// Estimator-specific secondary stream: quorum decision correctness
    /// (0/1 per agent) or relative-frequency estimates `f̃`; empty for
    /// Algorithm 1/4.
    pub aux: StreamingMoments,
}

impl Default for CellAggregate {
    fn default() -> Self {
        Self::new()
    }
}

impl CellAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self {
            trials: 0,
            est: StreamingMoments::new(),
            err: StreamingMoments::new(),
            err_hist: Histogram::new(0.0, HIST_HI, HIST_BINS),
            within: 0,
            aux: StreamingMoments::new(),
        }
    }

    /// Streams one trial's [`ScenarioOutcome`] into the aggregate.
    ///
    /// # Panics
    ///
    /// Panics if the outcome shape does not match the cell's estimator
    /// (missing quorum decisions / frequency estimates) — the runner
    /// always pairs them correctly.
    pub fn record_trial(&mut self, cell: &Cell, outcome: &ScenarioOutcome, band: f64) {
        self.trials += 1;
        for &e in &outcome.estimates {
            self.est.push(e);
        }
        match &cell.estimator {
            EstimatorSpec::Algorithm1 | EstimatorSpec::Algorithm4 => {
                for e in outcome.relative_errors() {
                    self.push_err(e, band);
                }
            }
            EstimatorSpec::Quorum { threshold } => {
                for e in outcome.relative_errors() {
                    self.push_err(e, band);
                }
                let truth = outcome.true_density >= *threshold;
                let decisions = outcome
                    .quorum_decisions
                    .as_ref()
                    .expect("quorum cell without decisions");
                for &d in decisions {
                    self.aux.push(if d == truth { 1.0 } else { 0.0 });
                }
            }
            EstimatorSpec::RelativeFrequency { property_agents } => {
                let f_true = *property_agents as f64 / cell.num_agents as f64;
                for f in outcome.frequencies().into_iter().flatten() {
                    self.aux.push(f);
                    self.push_err((f - f_true).abs() / f_true, band);
                }
            }
        }
    }

    /// Streams one count-based trial ([`crate::spec::SweepSpec::counts`]
    /// fast path). The collapsed representation carries no per-agent
    /// estimates — only their population mean exists — so each trial
    /// contributes exactly one sample to the estimate and error streams
    /// (against `agents × trials` for the agent-level path; the `trials`
    /// counter still advances by one per trial on both paths).
    pub fn record_counts_trial(&mut self, cell: &Cell, outcome: &CountsOutcome, band: f64) {
        self.trials += 1;
        self.est.push(outcome.mean_estimate);
        let d = cell.true_density();
        if d > 0.0 {
            self.push_err((outcome.mean_estimate - d).abs() / d, band);
        }
    }

    fn push_err(&mut self, e: f64, band: f64) {
        self.err.push(e);
        self.err_hist.push(e);
        if e <= band {
            self.within += 1;
        }
    }

    /// Merges another aggregate (streaming parallel reduction). Bin
    /// counts and counters add; moments merge via the Welford
    /// combination rule.
    ///
    /// # Panics
    ///
    /// Panics if the histogram shapes differ (never happens between
    /// aggregates built by this crate).
    pub fn merge(&mut self, other: &CellAggregate) {
        self.trials += other.trials;
        self.est.merge(&other.est);
        self.err.merge(&other.err);
        self.err_hist.merge(&other.err_hist);
        self.within += other.within;
        self.aux.merge(&other.aux);
    }

    /// Approximate error quantile from the histogram (one-bin-width
    /// resolution, clamped to [`HIST_HI`] for overflow mass).
    ///
    /// # Panics
    ///
    /// Panics if no error samples were recorded.
    pub fn err_quantile(&self, q: f64) -> f64 {
        self.err_hist.quantile(q)
    }

    /// Fraction of error samples within the band.
    pub fn within_fraction(&self) -> f64 {
        if self.err.count() == 0 {
            return 0.0;
        }
        self.within as f64 / self.err.count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use antdensity_engine::Scenario;

    fn demo_cells() -> Vec<Cell> {
        SweepSpec::parse(
            "
            name = t
            trials = 2
            topology = complete:64
            density = 0.2
            rounds = 32
            estimator = alg1, quorum:0.05, relfreq:0.5
            ",
        )
        .unwrap()
        .resolve(false)
        .unwrap()
        .cells
    }

    fn run_cell(cell: &Cell, seed: u64) -> ScenarioOutcome {
        let mut s = Scenario::new(cell.topology, cell.num_agents, cell.rounds)
            .with_movement(cell.movement.clone())
            .with_estimator(cell.estimator.clone());
        if let Some(n) = cell.noise {
            s = s.with_noise(n);
        }
        s.run(seed)
    }

    #[test]
    fn records_each_estimator_family() {
        for cell in &demo_cells() {
            let mut agg = CellAggregate::new();
            for seed in 0..3 {
                agg.record_trial(cell, &run_cell(cell, seed), 0.2);
            }
            assert_eq!(agg.trials, 3);
            assert!(agg.est.count() >= 3 * cell.num_agents as u64);
            assert!(agg.err.count() > 0, "{cell:?}");
            assert_eq!(agg.err.count(), agg.err_hist.count());
            match cell.estimator {
                EstimatorSpec::Quorum { .. } => {
                    // d = 0.2 ≫ 0.05: decisions should be mostly correct
                    assert!(agg.aux.mean() > 0.8, "quorum accuracy {}", agg.aux.mean());
                }
                EstimatorSpec::RelativeFrequency { .. } => {
                    assert!((agg.aux.mean() - 0.5).abs() < 0.2, "f̃ {}", agg.aux.mean());
                }
                _ => assert_eq!(agg.aux.count(), 0),
            }
        }
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let cells = demo_cells();
        let cell = &cells[0];
        let outcomes: Vec<ScenarioOutcome> = (0..6).map(|s| run_cell(cell, s)).collect();
        let mut whole = CellAggregate::new();
        for o in &outcomes {
            whole.record_trial(cell, o, 0.2);
        }
        let mut left = CellAggregate::new();
        let mut right = CellAggregate::new();
        for o in &outcomes[..2] {
            left.record_trial(cell, o, 0.2);
        }
        for o in &outcomes[2..] {
            right.record_trial(cell, o, 0.2);
        }
        left.merge(&right);
        assert_eq!(left.trials, whole.trials);
        assert_eq!(left.within, whole.within);
        assert_eq!(left.err_hist, whole.err_hist);
        assert_eq!(left.est.count(), whole.est.count());
        assert!((left.est.mean() - whole.est.mean()).abs() < 1e-12);
        assert!((left.err.variance() - whole.err.variance()).abs() < 1e-10);
    }

    #[test]
    fn within_fraction_counts_band() {
        let mut agg = CellAggregate::new();
        for e in [0.05, 0.1, 0.3, 0.5] {
            agg.push_err(e, 0.2);
        }
        assert_eq!(agg.within, 2);
        assert_eq!(agg.within_fraction(), 0.5);
        assert!(agg.err_quantile(0.0) >= 0.0);
    }
}
