//! Bit-exact sweep checkpoints.
//!
//! A checkpoint records every completed shard's [`CellAggregate`] with
//! all floating-point state serialized as raw IEEE-754 bit patterns
//! (hex `u64`), so `full run` and `run → kill → resume` produce
//! **bit-identical** aggregates — the property
//! `crates/sweep/tests/determinism.rs` pins. Checkpoints bind to the
//! resolved spec's fingerprint; resuming against an edited spec or a
//! different effort mode is rejected.
//!
//! The format is a plain text file:
//!
//! ```text
//! antdensity-sweep-checkpoint v1
//! fingerprint <hex16>
//! cells <total> hist_bins <bins>
//! shard <index> trials <trials> within <count>
//! est <count> <mean> <m2> <min> <max>      # f64s as hex bit patterns
//! err <count> <mean> <m2> <min> <max>
//! aux <count> <mean> <m2> <min> <max>
//! hist <lo> <hi> <underflow> <overflow> <count> <bin0> <bin1> …
//! end
//! ```
//!
//! Writes go through a temp file + rename so a kill mid-write leaves
//! the previous checkpoint intact rather than a torn file.

use crate::aggregate::CellAggregate;
use antdensity_stats::histogram::Histogram;
use antdensity_stats::moments::StreamingMoments;
use antdensity_telemetry as telemetry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

// Checkpoint latency, split at the durability boundary: `serialize` is
// the in-memory text render, `rename` is the temp-file write plus the
// atomic rename that publishes it.
static CKPT_SERIALIZE: telemetry::SpanMetric =
    telemetry::SpanMetric::new("sweep.checkpoint_serialize");
static CKPT_RENAME: telemetry::SpanMetric = telemetry::SpanMetric::new("sweep.checkpoint_rename");
static CKPT_WRITES: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.checkpoint_writes");
static CKPT_BYTES: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.checkpoint_bytes");

/// Exclusive-writer guard for a checkpoint file.
///
/// Two coordinators pointed at the same checkpoint would interleave
/// tmp+rename writes and silently lose shards; the lock makes the
/// second one **fail loudly** instead. Implementation: a `<path>.lock`
/// sibling created with `create_new` (atomic on every platform we
/// target) holding the owner's PID. A lock whose owner is no longer
/// running (e.g. the sweep was `kill -9`ed, so [`Drop`] never ran) is
/// stale and silently stolen — that keeps the kill/resume workflow
/// lock-free for the user.
#[derive(Debug)]
pub struct CheckpointLock {
    path: PathBuf,
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    // No cheap liveness probe: treat every holder as alive. Stale
    // locks then need a manual `rm`, which the error message explains.
    true
}

impl CheckpointLock {
    /// Acquires the exclusive writer lock for `checkpoint_path`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the holder PID and the lock file when
    /// another *running* process holds the lock, or the underlying I/O
    /// error.
    pub fn acquire(checkpoint_path: &Path) -> Result<Self, String> {
        let mut path = checkpoint_path.as_os_str().to_owned();
        path.push(".lock");
        let path = PathBuf::from(path);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create checkpoint directory: {e}"))?;
            }
        }
        // Bounded retry: stealing a stale lock races other stealers,
        // but at most once per dead former holder.
        for _ in 0..5 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write as _;
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    match holder {
                        Some(pid) if pid != std::process::id() && !pid_alive(pid) => {
                            // Dead holder (e.g. kill -9): steal.
                            let _ = std::fs::remove_file(&path);
                            continue;
                        }
                        Some(pid) => {
                            return Err(format!(
                                "checkpoint {} is locked by running process {pid} \
                                 (lock file {}) — refusing to run a second coordinator \
                                 against the same checkpoint",
                                checkpoint_path.display(),
                                path.display()
                            ));
                        }
                        None => {
                            return Err(format!(
                                "checkpoint {} has an unreadable lock file {} — \
                                 remove it if no sweep is running",
                                checkpoint_path.display(),
                                path.display()
                            ));
                        }
                    }
                }
                Err(e) => {
                    return Err(format!(
                        "cannot create checkpoint lock {}: {e}",
                        path.display()
                    ))
                }
            }
        }
        Err(format!(
            "could not acquire checkpoint lock {} (lost the stale-lock race repeatedly)",
            path.display()
        ))
    }
}

impl Drop for CheckpointLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Completed-shard state for one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Fingerprint of the resolved spec this checkpoint belongs to.
    pub fingerprint: u64,
    /// Total shard count of the sweep (for sanity checks on resume).
    pub cells: usize,
    /// Aggregates of completed shards, keyed by shard index.
    pub shards: BTreeMap<usize, CellAggregate>,
}

const MAGIC: &str = crate::schema::CHECKPOINT_MAGIC;

fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bit pattern `{tok}`"))
}

fn parse_int<T: std::str::FromStr>(tok: &str) -> Result<T, String> {
    tok.parse().map_err(|_| format!("bad integer `{tok}`"))
}

fn moments_line(label: &str, m: &StreamingMoments) -> String {
    let (count, mean, m2, min, max) = m.raw_parts();
    format!(
        "{label} {count} {} {} {} {}\n",
        f64_hex(mean),
        f64_hex(m2),
        f64_hex(min),
        f64_hex(max)
    )
}

fn parse_moments(label: &str, line: &str) -> Result<StreamingMoments, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() != 6 || toks[0] != label {
        return Err(format!("expected `{label} …` line, got `{line}`"));
    }
    Ok(StreamingMoments::from_raw(
        parse_int(toks[1])?,
        parse_f64(toks[2])?,
        parse_f64(toks[3])?,
        parse_f64(toks[4])?,
        parse_f64(toks[5])?,
    ))
}

/// Renders the checkpoint text for a borrowed shard map — the runner
/// serializes its live state every wave without cloning aggregates.
fn render_text(fingerprint: u64, cells: usize, shards: &BTreeMap<usize, CellAggregate>) -> String {
    let hist_bins = shards
        .values()
        .next()
        .map_or(crate::aggregate::HIST_BINS, |a| a.err_hist.num_bins());
    let mut out =
        format!("{MAGIC}\nfingerprint {fingerprint:016x}\ncells {cells} hist_bins {hist_bins}\n");
    for (&idx, agg) in shards {
        out.push_str(&format!(
            "shard {idx} trials {} within {}\n",
            agg.trials, agg.within
        ));
        out.push_str(&moments_line("est", &agg.est));
        out.push_str(&moments_line("err", &agg.err));
        out.push_str(&moments_line("aux", &agg.aux));
        let (lo, hi, bins, under, over, count) = agg.err_hist.raw_parts();
        out.push_str(&format!(
            "hist {} {} {under} {over} {count}",
            f64_hex(lo),
            f64_hex(hi)
        ));
        for b in bins {
            out.push_str(&format!(" {b}"));
        }
        out.push_str("\nend\n");
    }
    out
}

/// Atomically writes a checkpoint (temp file + rename) straight from a
/// borrowed shard map.
///
/// # Errors
///
/// Returns any I/O error from creating the parent directory, the temp
/// file, or the rename.
pub fn save_shards(
    path: &Path,
    fingerprint: u64,
    cells: usize,
    shards: &BTreeMap<usize, CellAggregate>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let text = {
        let _span = CKPT_SERIALIZE.start();
        render_text(fingerprint, cells, shards)
    };
    let _span = CKPT_RENAME.start();
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, &text)?;
    std::fs::rename(&tmp, path)?;
    CKPT_WRITES.add(1);
    CKPT_BYTES.add(text.len() as u64);
    Ok(())
}

impl Checkpoint {
    /// An empty checkpoint for a sweep with `cells` shards.
    pub fn new(fingerprint: u64, cells: usize) -> Self {
        Self {
            fingerprint,
            cells,
            shards: BTreeMap::new(),
        }
    }

    /// Serializes to the checkpoint text format.
    pub fn to_text(&self) -> String {
        render_text(self.fingerprint, self.cells, &self.shards)
    }

    /// Parses the checkpoint text format.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first structural problem (bad
    /// magic, malformed line, truncated shard block, duplicate or
    /// out-of-range shard index).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err("not a sweep checkpoint (bad magic line)".into());
        }
        let fp_line = lines.next().ok_or("missing fingerprint line")?;
        let fingerprint = match fp_line.split_whitespace().collect::<Vec<_>>()[..] {
            ["fingerprint", hex] => {
                u64::from_str_radix(hex, 16).map_err(|_| format!("bad fingerprint `{hex}`"))?
            }
            _ => return Err(format!("expected `fingerprint <hex>`, got `{fp_line}`")),
        };
        let cells_line = lines.next().ok_or("missing cells line")?;
        let (cells, hist_bins) = match cells_line.split_whitespace().collect::<Vec<_>>()[..] {
            ["cells", c, "hist_bins", b] => (parse_int::<usize>(c)?, parse_int::<usize>(b)?),
            _ => {
                return Err(format!(
                    "expected `cells <n> hist_bins <b>`, got `{cells_line}`"
                ))
            }
        };

        let mut shards = BTreeMap::new();
        while let Some(header) = lines.next() {
            if header.trim().is_empty() {
                continue;
            }
            let (idx, trials, within) = match header.split_whitespace().collect::<Vec<_>>()[..] {
                ["shard", i, "trials", t, "within", w] => (
                    parse_int::<usize>(i)?,
                    parse_int::<u64>(t)?,
                    parse_int::<u64>(w)?,
                ),
                _ => return Err(format!("expected `shard …` header, got `{header}`")),
            };
            if idx >= cells {
                return Err(format!("shard index {idx} out of range (cells = {cells})"));
            }
            let est = parse_moments("est", lines.next().ok_or("truncated shard block")?)?;
            let err = parse_moments("err", lines.next().ok_or("truncated shard block")?)?;
            let aux = parse_moments("aux", lines.next().ok_or("truncated shard block")?)?;
            let hist_line = lines.next().ok_or("truncated shard block")?;
            let toks: Vec<&str> = hist_line.split_whitespace().collect();
            if toks.len() != 6 + hist_bins || toks[0] != "hist" {
                return Err(format!(
                    "expected `hist` line with {hist_bins} bins, got `{hist_line}`"
                ));
            }
            let lo = parse_f64(toks[1])?;
            let hi = parse_f64(toks[2])?;
            let under: u64 = parse_int(toks[3])?;
            let over: u64 = parse_int(toks[4])?;
            let count: u64 = parse_int(toks[5])?;
            let bins: Vec<u64> = toks[6..]
                .iter()
                .map(|t| parse_int(t))
                .collect::<Result<_, _>>()?;
            let err_hist = Histogram::from_parts(lo, hi, bins, under, over, count);
            if lines.next() != Some("end") {
                return Err(format!("shard {idx}: missing `end` terminator"));
            }
            let agg = CellAggregate {
                trials,
                est,
                err,
                err_hist,
                within,
                aux,
            };
            if shards.insert(idx, agg).is_some() {
                return Err(format!("duplicate shard {idx}"));
            }
        }
        Ok(Self {
            fingerprint,
            cells,
            shards,
        })
    }

    /// Writes the checkpoint atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the parent directory, the
    /// temp file, or the rename.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        save_shards(path, self.fingerprint, self.cells, &self.shards)
    }

    /// Loads and parses a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message for unreadable files or the parse
    /// error for malformed content.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_aggregate(salt: u64) -> CellAggregate {
        let mut agg = CellAggregate::new();
        agg.trials = 3;
        for i in 0..40 {
            let x = ((i + salt) as f64 * 0.77).sin().abs();
            agg.est.push(x);
            agg.err.push(x * 0.5);
            agg.err_hist.push(x * 0.5);
            if x * 0.5 <= 0.2 {
                agg.within += 1;
            }
        }
        agg
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let mut ck = Checkpoint::new(0xDEAD_BEEF_1234_5678, 10);
        ck.shards.insert(0, demo_aggregate(1));
        ck.shards.insert(7, demo_aggregate(2));
        let parsed = Checkpoint::parse(&ck.to_text()).unwrap();
        assert_eq!(parsed, ck);
        // continuing a restored accumulator matches the original bit for bit
        let mut orig = ck.shards[&7].clone();
        let mut restored = parsed.shards[&7].clone();
        orig.est.push(0.123456789);
        restored.est.push(0.123456789);
        assert_eq!(orig.est, restored.est);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("antdensity_ckpt_{}", std::process::id()));
        let path = dir.join("demo.ckpt");
        let mut ck = Checkpoint::new(42, 3);
        ck.shards.insert(2, demo_aggregate(5));
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // overwrite is atomic-ish: no .tmp left behind
        ck.shards.insert(0, demo_aggregate(6));
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap().shards.len(), 2);
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_corrupt_inputs() {
        let mut ck = Checkpoint::new(1, 4);
        ck.shards.insert(1, demo_aggregate(0));
        let good = ck.to_text();
        for (mutation, needle) in [
            (good.replace(MAGIC, "something else"), "bad magic"),
            (good.replace("shard 1", "shard 9"), "out of range"),
            (good.replace("est ", "wat "), "expected `est"),
            (good.replace("\nend\n", "\n"), "end"),
        ] {
            let err = Checkpoint::parse(&mutation).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = Checkpoint::new(9, 100);
        assert_eq!(Checkpoint::parse(&ck.to_text()).unwrap(), ck);
    }

    #[test]
    fn lock_excludes_second_holder_and_releases_on_drop() {
        let dir = std::env::temp_dir().join(format!("antdensity_lock_{}", std::process::id()));
        let ckpt = dir.join("sweep.ckpt");
        let lock = CheckpointLock::acquire(&ckpt).unwrap();
        let err = CheckpointLock::acquire(&ckpt).unwrap_err();
        assert!(err.contains("locked by running process"), "{err}");
        assert!(
            err.contains(&std::process::id().to_string()),
            "names the holder: {err}"
        );
        drop(lock);
        let relock = CheckpointLock::acquire(&ckpt).unwrap();
        drop(relock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn stale_lock_from_dead_process_is_stolen() {
        let dir = std::env::temp_dir().join(format!("antdensity_stale_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sweep.ckpt");
        // A PID beyond the kernel's pid_max (2^22) cannot be running.
        std::fs::write(dir.join("sweep.ckpt.lock"), "4000000000").unwrap();
        let lock =
            CheckpointLock::acquire(&ckpt).expect("a lock whose holder is gone must be stealable");
        drop(lock);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unreadable_lock_fails_loudly() {
        let dir = std::env::temp_dir().join(format!("antdensity_badlock_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("sweep.ckpt");
        std::fs::write(dir.join("sweep.ckpt.lock"), "not a pid").unwrap();
        let err = CheckpointLock::acquire(&ckpt).unwrap_err();
        assert!(err.contains("unreadable lock file"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
