//! `antdensity-sweep` — the declarative parameter-grid orchestrator.
//!
//! The paper's results are accuracy-vs-rounds claims swept over density,
//! topology, and estimator variants. Before this crate every such sweep
//! was a hand-written binary; here it is a committed text file:
//!
//! ```text
//! name      = alg1_accuracy
//! trials    = 8
//! topology  = torus2d:32, ring:1024, hypercube:10, complete:1024
//! density   = 0.02, 0.05, 0.1, 0.2
//! rounds    = 16, 32, 64, 128, 256, 512
//! estimator = alg1
//! ```
//!
//! The pipeline ([`run_spec_text`] end to end, or the modules à la
//! carte):
//!
//! 1. [`spec`] parses the file, expands the grid into a stable-order
//!    list of cells, and **fuses** cells that differ only on estimator
//!    and rounds into shards ([`FusedShard`]) sharing one simulation
//!    family.
//! 2. [`runner`] executes shards on the workspace's persistent
//!    [`WorkerPool`](antdensity_engine::WorkerPool): each trial is one
//!    streaming pass
//!    ([`Scenario::run_streamed`](antdensity_engine::Scenario::run_streamed))
//!    whose observers snapshot every member cell's `(estimator, rounds)`
//!    combination. Shard `i` is a pure function of `(resolved spec, i)`:
//!    its trials derive RNG streams from `(sweep seed, shard index,
//!    trial index)`, so results are bit-identical for any worker count,
//!    scheduling, interruption pattern — or fusion setting (`--no-fuse`
//!    re-simulates per cell from the same streams and lands on the same
//!    bits).
//! 3. [`aggregate`] streams per-agent metrics into O(1)-memory
//!    accumulators (`antdensity_stats` moments + histogram) — no
//!    per-trial vectors are retained.
//! 4. [`checkpoint`] persists completed shards with bit-exact f64 state
//!    after every wave; `kill -9` loses at most one wave and a resumed
//!    run finishes with **bit-identical** aggregates (property-tested in
//!    `tests/determinism.rs`).
//! 5. [`report`] emits the terminal table plus `SWEEP_<name>.json` /
//!    `SWEEP_<name>.csv`, with the paper's predicted error bound next
//!    to each measured cell.
//!
//! The `repro sweep` subcommand (crate `antdensity-bench`) is the CLI
//! front end; committed specs live under `specs/`.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod aggregate;
pub mod cache;
pub mod checkpoint;
pub mod dist;
pub mod job;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod schema;
pub mod spec;

pub use aggregate::CellAggregate;
pub use cache::{CacheStats, ShardCache};
pub use checkpoint::{Checkpoint, CheckpointLock};
pub use dist::{
    run_sweep_distributed, run_sweep_distributed_observed, DistError, DistOptions, DistStats,
    FaultPlan, Transport,
};
pub use job::{JobError, SweepJob, ValidatedJob};
pub use metrics::{MetricsSummary, SweepMetrics};
pub use report::{build_report, build_row, SweepReport, SweepRow};
pub use runner::{
    run_shard, run_shard_unfused, run_sweep, run_sweep_observed, ShardObserver, SweepOptions,
    SweepOutcome,
};
pub use spec::{
    Cell, EstimatorAxis, FusedShard, ResolvedSweep, ShardTap, SkippedCell, SweepSpec, TapCheckpoint,
};

/// Parses a spec file's text, runs the sweep, and builds the report —
/// the whole pipeline behind `repro sweep`.
///
/// # Errors
///
/// Returns spec parse errors, checkpoint mismatch errors, or checkpoint
/// I/O failures, each as a displayable message.
pub fn run_spec_text(
    text: &str,
    opts: &SweepOptions,
) -> Result<(SweepOutcome, SweepReport), String> {
    let spec = SweepSpec::parse(text)?;
    let outcome = run_sweep(&spec, opts)?;
    let report = build_report(&outcome);
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_pipeline() {
        let (outcome, report) = run_spec_text(
            "
            name = pipeline
            trials = 1
            topology = complete:32
            density = 0.25
            rounds = 16
            ",
            &SweepOptions::default(),
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        // d = 8/32 = 0.25; 16 rounds of i.i.d. sampling keep the mean close
        assert!(
            (row.est_mean - 0.25).abs() < 0.15,
            "est_mean {}",
            row.est_mean
        );
    }

    #[test]
    fn pipeline_surfaces_parse_errors() {
        let err = run_spec_text("trials = 1", &SweepOptions::default()).unwrap_err();
        assert!(err.contains("missing required key"));
    }
}
