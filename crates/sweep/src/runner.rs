//! Sharded sweep execution on the workspace's persistent worker pool.
//!
//! Since the observer pipeline landed, the unit of execution is the
//! **fused shard** ([`crate::spec::FusedShard`]): grid cells identical
//! up to estimator and rounds, served by *one* simulation pass per
//! trial ([`Scenario::run_streamed`]) whose observers snapshot every
//! member cell's `(estimator, rounds)` combination along the way.
//!
//! Shard `i` is a **pure function** of `(resolved spec, i)`: its trials
//! draw from
//! `SeedSequence::new(seed).subsequence(SHARD_STREAM ^ i).derive(trial)`
//! — so any subset of shards can run anywhere, in any order, on any
//! worker count, and the aggregates come out bit-identical. The unfused
//! path ([`SweepOptions::fuse`] `= false`, `repro sweep --no-fuse`)
//! runs each member cell as its own simulation from the *same* streams;
//! because a `t`-round run draws a strict prefix of a `t' > t`-round
//! run, fused and unfused aggregates are **bit-identical** — the
//! property `tests/determinism.rs` pins and CI cross-checks
//! byte-for-byte on reports.
//!
//! Shards are dispatched in waves onto the existing [`WorkerPool`] (via
//! [`antdensity_walks::parallel::run_trials_on`], the workspace's
//! deterministic fan-out primitive); after each wave the full completed
//! state is checkpointed. Killing a sweep loses at most one wave of
//! work, and [`run_sweep`] with `resume` picks up from the checkpoint.

use crate::aggregate::CellAggregate;
use crate::checkpoint::Checkpoint;
use crate::spec::{FusedShard, ResolvedSweep, SweepSpec};
use antdensity_engine::{EstimatorSpec, ObserverTap, Scenario, WorkerPool};
use antdensity_stats::rng::SeedSequence;
use antdensity_telemetry as telemetry;
use antdensity_walks::parallel;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Stream label separating shard seed derivation from every other
/// consumer of the sweep's master seed.
const SHARD_STREAM: u64 = 0x5348_4152_4400_0000; // "SHARD"

// Sweep-layer telemetry. Shard spans carry the shard index as a trace
// argument; the fusion counters make the observer-pipeline win
// measurable (`rounds_saved_by_fusion` is the work fusion deleted
// relative to per-cell execution).
static SHARD_SPAN: telemetry::SpanMetric = telemetry::SpanMetric::new("sweep.shard");
static WAVE_SPAN: telemetry::SpanMetric = telemetry::SpanMetric::new("sweep.wave");
static SHARDS_DONE: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.shards_completed");
static CELLS_DONE: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.cells_completed");
static TRIALS_DONE: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.trials");
static ROUNDS_SIM: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.rounds_simulated");
static ROUNDS_SAVED: telemetry::LazyCounter =
    telemetry::LazyCounter::new("sweep.rounds_saved_by_fusion");

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Quick (CI smoke) or full effort; part of the resolved spec and
    /// its fingerprint.
    pub quick: bool,
    /// Run each shard as one fused simulation pass (default). `false`
    /// re-simulates every member cell separately — same RNG streams,
    /// bit-identical aggregates, strictly more work; kept as the
    /// cross-check path (`repro sweep --no-fuse`).
    pub fuse: bool,
    /// Worker threads for shard fan-out (results never depend on it).
    pub workers: usize,
    /// Explicit pool (tests pin real worker counts); `None` = the
    /// process-global pool.
    pub pool: Option<Arc<WorkerPool>>,
    /// Checkpoint file path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Load the checkpoint (if it exists) and skip completed shards.
    pub resume: bool,
    /// Stop after this many newly executed shards (the checkpoint still
    /// covers them) — `repro sweep --max-shards`, and how the
    /// determinism suite simulates a mid-run kill.
    pub max_shards: Option<usize>,
    /// Shards per wave between checkpoint writes.
    pub checkpoint_every: usize,
    /// Emit a live progress line to stderr after every wave
    /// (`repro sweep --progress`): shards done/total, aggregate
    /// Msteps/s, rounds-weighted ETA. Observability only — never
    /// touches results.
    pub progress: bool,
    /// Shard result cache (`repro sweep --cache DIR`): consulted
    /// before executing a shard, published to after. `None` (default)
    /// disables caching. Results never depend on it — a cached blob is
    /// verified down to the fingerprint and falls back to recompute.
    pub cache: Option<Arc<crate::cache::ShardCache>>,
    /// Distrust mode (`--cache-verify`): cache hits are recomputed
    /// anyway and byte-compared against the cached blob; any mismatch
    /// aborts the sweep loudly. CI's way of proving the cache serves
    /// the exact bytes simulation would produce.
    pub cache_verify: bool,
    /// Cache size cap in bytes (`--cache-cap`): after the sweep
    /// publishes its shards, an LRU eviction pass shrinks the cache to
    /// this size. `None` = unbounded.
    pub cache_cap: Option<u64>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            quick: false,
            fuse: true,
            workers: parallel::default_threads(),
            pool: None,
            checkpoint: None,
            resume: false,
            max_shards: None,
            checkpoint_every: 8,
            progress: false,
            cache: None,
            cache_verify: false,
            cache_cap: None,
        }
    }
}

/// The result of a (possibly partial) sweep execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The resolved spec the shards ran against.
    pub resolved: ResolvedSweep,
    /// Aggregates by cell index; `None` for cells whose shard has not
    /// yet executed (only when stopped early via `max_shards`).
    pub aggregates: Vec<Option<CellAggregate>>,
    /// Whether every shard has completed.
    pub complete: bool,
    /// Fused shards executed by *this* invocation (excludes resumed
    /// ones).
    pub executed: usize,
    /// Fused shards restored from the checkpoint.
    pub resumed: usize,
    /// Simulation passes this invocation ran (`trials` per fused shard,
    /// `trials × member cells` unfused).
    pub simulations: u64,
    /// Rounds this invocation simulated, summed over those passes.
    pub simulated_rounds: u64,
    /// Worker threads the caller asked for ([`SweepOptions::workers`]).
    pub workers_requested: usize,
    /// Worker threads actually usable: the request clamped to the
    /// executing pool's size (the machine's available parallelism for
    /// the global pool). Wall clock only — results never depend on it.
    pub workers_effective: usize,
}

/// Builds the base scenario a shard's cells share (everything but
/// estimator and rounds).
fn base_scenario(resolved: &ResolvedSweep, shard: &FusedShard, rounds: u64) -> Scenario {
    let base = &resolved.cells[shard.cells[0]];
    let mut scenario =
        Scenario::new(base.topology, base.num_agents, rounds).with_movement(base.movement.clone());
    if let Some(noise) = base.noise {
        scenario = scenario.with_noise(noise);
    }
    scenario
}

/// Whether `shard` runs through the count-based fast path: the spec
/// opted in (`counts = on`), every tap is Algorithm 1 (fusion never
/// duplicates an estimator, so that means exactly one tap), and the
/// shard's shared scenario is
/// [`Scenario::counts_compatible`] — pure movement, no interaction
/// variants, no noise, non-complete topology. Ineligible shards fall
/// back to the agent-level path; eligibility is a pure function of the
/// resolved spec, so the dispatch is deterministic.
fn counts_eligible(resolved: &ResolvedSweep, shard: &FusedShard) -> bool {
    resolved.counts
        && shard
            .taps
            .iter()
            .all(|t| t.estimator == EstimatorSpec::Algorithm1)
        && base_scenario(resolved, shard, 1).counts_compatible()
}

/// Executes fused shard `index`: one simulation pass per trial,
/// snapshotted at every member cell's `(estimator, rounds)` checkpoint,
/// streamed into per-cell [`CellAggregate`]s. Pure — every call with
/// the same arguments returns identical aggregates, and they are
/// bit-identical to [`run_shard_unfused`].
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn run_shard(resolved: &ResolvedSweep, index: usize) -> Vec<(usize, CellAggregate)> {
    let shard = &resolved.fused[index];
    let mut span = SHARD_SPAN.start();
    span.arg("shard", index as f64);
    let seq = SeedSequence::new(resolved.seed).subsequence(SHARD_STREAM ^ index as u64);
    let scenario = base_scenario(resolved, shard, shard.max_rounds());
    let taps: Vec<ObserverTap> = shard
        .taps
        .iter()
        .map(|t| ObserverTap {
            estimator: t.estimator.clone(),
            schedule: t.schedule(),
        })
        .collect();
    let mut aggs: BTreeMap<usize, CellAggregate> = shard
        .cells
        .iter()
        .map(|&c| (c, CellAggregate::new()))
        .collect();
    if counts_eligible(resolved, shard) {
        let tap = &shard.taps[0];
        let points: Vec<u64> = tap.checkpoints.iter().map(|c| c.rounds).collect();
        for trial in 0..resolved.trials {
            let outcomes = scenario.run_counts_scheduled(seq.derive(trial), &points);
            for (cp, outcome) in tap.checkpoints.iter().zip(&outcomes) {
                for &cell_idx in &cp.cells {
                    aggs.get_mut(&cell_idx)
                        .expect("checkpoint cells are shard members")
                        .record_counts_trial(&resolved.cells[cell_idx], outcome, resolved.band);
                }
            }
        }
    } else {
        for trial in 0..resolved.trials {
            let outcomes = scenario.run_streamed(seq.derive(trial), &taps);
            for (tap, tap_outcomes) in shard.taps.iter().zip(&outcomes) {
                for (cp, outcome) in tap.checkpoints.iter().zip(tap_outcomes) {
                    for &cell_idx in &cp.cells {
                        aggs.get_mut(&cell_idx)
                            .expect("checkpoint cells are shard members")
                            .record_trial(&resolved.cells[cell_idx], outcome, resolved.band);
                    }
                }
            }
        }
    }
    SHARDS_DONE.add(1);
    CELLS_DONE.add(shard.cells.len() as u64);
    TRIALS_DONE.add(resolved.trials);
    ROUNDS_SIM.add(shard.max_rounds() * resolved.trials);
    ROUNDS_SAVED.add((shard.unfused_rounds() - shard.max_rounds()) * resolved.trials);
    aggs.into_iter().collect()
}

/// Executes shard `index` without fusion: every member cell is its own
/// full simulation, drawing the same per-(shard, trial) streams as
/// [`run_shard`] — the bit-identity cross-check path.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn run_shard_unfused(resolved: &ResolvedSweep, index: usize) -> Vec<(usize, CellAggregate)> {
    let shard = &resolved.fused[index];
    let mut span = SHARD_SPAN.start();
    span.arg("shard", index as f64);
    let seq = SeedSequence::new(resolved.seed).subsequence(SHARD_STREAM ^ index as u64);
    let out: Vec<(usize, CellAggregate)> = shard
        .cells
        .iter()
        .map(|&cell_idx| {
            let cell = &resolved.cells[cell_idx];
            let scenario =
                base_scenario(resolved, shard, cell.rounds).with_estimator(cell.estimator.clone());
            let mut agg = CellAggregate::new();
            // The counts dispatch mirrors the fused path; because a
            // shorter counts run draws a strict prefix of a longer one,
            // the per-cell runs land on the fused path's exact numbers.
            let counts = counts_eligible(resolved, shard);
            for trial in 0..resolved.trials {
                if counts {
                    let outcome = scenario.run_counts(seq.derive(trial));
                    agg.record_counts_trial(cell, &outcome, resolved.band);
                } else {
                    let outcome = scenario.run(seq.derive(trial));
                    agg.record_trial(cell, &outcome, resolved.band);
                }
            }
            (cell_idx, agg)
        })
        .collect();
    SHARDS_DONE.add(1);
    CELLS_DONE.add(shard.cells.len() as u64);
    TRIALS_DONE.add(resolved.trials * shard.cells.len() as u64);
    ROUNDS_SIM.add(shard.unfused_rounds() * resolved.trials);
    out
}

/// Executes shard `index` through the result cache: a verified hit
/// skips simulation entirely (unless `verify`, which recomputes anyway
/// and byte-compares); a miss computes and publishes the blob. Returns
/// the shard's cell aggregates plus whether simulation actually ran —
/// the outcome's work accounting counts only real simulation passes.
///
/// # Errors
///
/// Fails only in `verify` mode, when a cached blob does not byte-match
/// its recomputation.
fn run_shard_cached(
    resolved: &ResolvedSweep,
    index: usize,
    fuse: bool,
    cache: &crate::cache::ShardCache,
    verify: bool,
) -> Result<(Vec<(usize, CellAggregate)>, bool), String> {
    if let Some(blob) = cache.blob_get(resolved, index) {
        if verify {
            let fresh = crate::dist::shard_blob(resolved, index, fuse);
            if fresh != blob {
                cache.note_verify_failure();
                let at = fresh
                    .bytes()
                    .zip(blob.bytes())
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| fresh.len().min(blob.len()));
                return Err(format!(
                    "cache-verify mismatch on shard {index}: cached blob diverges \
                     from recomputation at byte {at} (cached {} bytes, fresh {} \
                     bytes) — the cache directory is unhealthy",
                    blob.len(),
                    fresh.len()
                ));
            }
            return Ok((crate::dist::parse_blob(resolved, &fresh)?, true));
        }
        let cells =
            crate::dist::parse_blob(resolved, &blob).expect("blob_get already verified the blob");
        return Ok((cells, false));
    }
    let cells = if fuse {
        run_shard(resolved, index)
    } else {
        run_shard_unfused(resolved, index)
    };
    let blob = Checkpoint {
        fingerprint: resolved.fingerprint,
        cells: resolved.cells.len(),
        shards: cells.iter().cloned().collect(),
    }
    .to_text();
    cache.blob_put(resolved, index, &blob);
    Ok((cells, true))
}

/// Resolves `spec` under `opts` and executes its fused shards,
/// checkpointing each wave and resuming from a prior checkpoint when
/// asked.
///
/// # Errors
///
/// Returns an error if the spec fails to resolve, a resume checkpoint
/// is unreadable/malformed, or the checkpoint's fingerprint or cell
/// count does not match the resolved spec.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepOutcome, String> {
    run_sweep_observed(spec, opts, &mut |_, _, _| true)
}

/// A per-shard observer: receives the resolved spec, the completed
/// shard's index, and its `(cell index, aggregate)` pairs; returns
/// `false` to stop the sweep cooperatively.
pub type ShardObserver<'a> =
    dyn FnMut(&ResolvedSweep, usize, &[(usize, CellAggregate)]) -> bool + 'a;

/// [`run_sweep`] with a per-shard observer: after each completed shard
/// is merged, `on_shard` receives the resolved spec, the shard index,
/// and the shard's `(cell index, aggregate)` pairs — the hook the
/// serve daemon streams row events from. Returning `false` stops the
/// sweep after the current wave (a cooperative cancel; the outcome
/// comes back with `complete == false`, like a `max_shards` stop).
///
/// The observer sees results, it never influences them: shard `i`
/// stays a pure function of `(resolved spec, i)`, so an observed run's
/// aggregates are identical to an unobserved one's.
///
/// # Errors
///
/// Exactly [`run_sweep`]'s error conditions.
pub fn run_sweep_observed(
    spec: &SweepSpec,
    opts: &SweepOptions,
    on_shard: &mut ShardObserver<'_>,
) -> Result<SweepOutcome, String> {
    let resolved = spec.resolve(opts.quick)?;
    // Exclusive writer: a second coordinator on the same checkpoint
    // must fail loudly rather than interleave tmp+rename writes.
    let _lock = match &opts.checkpoint {
        Some(path) => Some(crate::checkpoint::CheckpointLock::acquire(path)?),
        None => None,
    };
    let mut done = load_resume(&resolved, opts.checkpoint.as_deref(), opts.resume)?;
    let (resumed, pending) = partition_pending(&resolved, &done);
    let budget = opts.max_shards.unwrap_or(usize::MAX);
    let workers = opts.workers.max(1);
    let wave_size = opts.checkpoint_every.max(1);
    let pool: &WorkerPool = opts.pool.as_deref().unwrap_or_else(|| WorkerPool::global());
    let fuse = opts.fuse;

    // Effective-vs-requested parallelism: the pool (sized to the
    // machine's available parallelism unless the caller pinned one)
    // caps the request. Surfaced in the outcome / metrics snapshot,
    // and warned about once per process so a `--workers 64` on an
    // 8-way box is not silently a lie.
    let workers_effective = workers.min(pool.threads());
    if workers_effective < workers {
        static CLAMP_WARNING: std::sync::Once = std::sync::Once::new();
        let pool_threads = pool.threads();
        CLAMP_WARNING.call_once(|| {
            eprintln!(
                "sweep: warning: requested {workers} workers but the executing pool \
                 has {pool_threads} threads (available parallelism) — running with \
                 {workers_effective}"
            );
        });
    }

    // Rounds-weighted progress bookkeeping (`--progress`): how much
    // simulation work each pending shard represents, and the agent
    // steps behind it, so the stderr line can show a defensible ETA
    // and an aggregate Msteps/s.
    let shard_rounds = |s: &FusedShard| {
        let r = if fuse {
            s.max_rounds()
        } else {
            s.unfused_rounds()
        };
        r * resolved.trials
    };
    let shard_agent_steps =
        |s: &FusedShard| shard_rounds(s) * resolved.cells[s.cells[0]].num_agents as u64;
    let pending_rounds: u64 = pending
        .iter()
        .map(|&i| shard_rounds(&resolved.fused[i]))
        .sum();
    let started = Instant::now();
    let mut progress_rounds = 0u64;
    let mut progress_agent_steps = 0u64;
    let total_shards = resolved.fused.len();

    let mut executed = 0usize;
    let mut simulations = 0u64;
    let mut simulated_rounds = 0u64;
    let mut cancelled = false;
    for wave in pending.chunks(wave_size) {
        if executed >= budget || cancelled {
            break;
        }
        let wave = &wave[..wave.len().min(budget - executed)];
        let mut wave_span = WAVE_SPAN.start();
        wave_span.arg("shards", wave.len() as f64);
        // Unused per-trial RNG (shards derive their own streams), but
        // run_trials_on is the workspace's deterministic pool fan-out.
        let seq = SeedSequence::new(resolved.seed);
        let cache = opts.cache.as_deref();
        let cache_verify = opts.cache_verify;
        let results = parallel::run_trials_on(pool, wave.len() as u64, workers, seq, |i, _| {
            let shard = wave[i as usize];
            match cache {
                Some(cache) => run_shard_cached(&resolved, shard, fuse, cache, cache_verify),
                None => Ok((
                    if fuse {
                        run_shard(&resolved, shard)
                    } else {
                        run_shard_unfused(&resolved, shard)
                    },
                    true,
                )),
            }
        });
        for (&shard_idx, result) in wave.iter().zip(results) {
            let (cell_aggs, simulated) = result?;
            let shard = &resolved.fused[shard_idx];
            if simulated {
                if fuse {
                    simulations += resolved.trials;
                    simulated_rounds += shard.max_rounds() * resolved.trials;
                } else {
                    simulations += resolved.trials * shard.cells.len() as u64;
                    simulated_rounds += shard.unfused_rounds() * resolved.trials;
                }
            }
            progress_rounds += shard_rounds(shard);
            progress_agent_steps += shard_agent_steps(shard);
            // Observe before the aggregates are consumed by the merge;
            // once the observer cancels, the rest of the wave (already
            // computed) is still merged — work is never thrown away —
            // but no further observations are delivered.
            if !cancelled && !on_shard(&resolved, shard_idx, &cell_aggs) {
                cancelled = true;
            }
            for (cell_idx, agg) in cell_aggs {
                done.insert(cell_idx, agg);
            }
        }
        executed += wave.len();
        if let Some(path) = &opts.checkpoint {
            crate::checkpoint::save_shards(path, resolved.fingerprint, resolved.cells.len(), &done)
                .map_err(|e| format!("checkpoint write failed: {e}"))?;
        }
        drop(wave_span);
        if opts.progress {
            print_progress(
                &resolved.name,
                resumed + executed,
                total_shards,
                resumed,
                progress_rounds,
                pending_rounds,
                progress_agent_steps,
                started,
            );
        }
    }
    if opts.progress && executed > 0 {
        eprintln!();
    }

    // Housekeeping after publishing this run's shards: shrink the
    // cache to its cap, evicting least-recently-used entries first
    // (this run's hits and stores are the freshest).
    if let (Some(cache), Some(cap)) = (&opts.cache, opts.cache_cap) {
        cache.evict_to(cap);
    }

    let aggregates: Vec<Option<CellAggregate>> =
        (0..resolved.cells.len()).map(|i| done.remove(&i)).collect();
    let complete = aggregates.iter().all(Option::is_some);
    Ok(SweepOutcome {
        resolved,
        aggregates,
        complete,
        executed,
        resumed,
        simulations,
        simulated_rounds,
        workers_requested: workers,
        workers_effective,
    })
}

/// Loads resumable cell aggregates: the checkpoint's cell map when
/// `resume` is set and a checkpoint exists, empty otherwise. Shared by
/// the in-process runner and the distributed coordinator so both
/// reject a foreign checkpoint with the same errors.
///
/// # Errors
///
/// Returns checkpoint load/parse failures, a fingerprint mismatch
/// ("different sweep configuration"), or a cell-count mismatch.
pub(crate) fn load_resume(
    resolved: &ResolvedSweep,
    checkpoint: Option<&std::path::Path>,
    resume: bool,
) -> Result<BTreeMap<usize, CellAggregate>, String> {
    let Some(path) = checkpoint.filter(|_| resume) else {
        return Ok(BTreeMap::new());
    };
    if !path.exists() {
        return Ok(BTreeMap::new());
    }
    let ck = Checkpoint::load(path)?;
    if ck.fingerprint != resolved.fingerprint {
        return Err(format!(
            "checkpoint {} belongs to a different sweep configuration \
             (fingerprint {:016x}, expected {:016x}) — delete it or rerun \
             with the original spec and mode",
            path.display(),
            ck.fingerprint,
            resolved.fingerprint
        ));
    }
    if ck.cells != resolved.cells.len() {
        return Err(format!(
            "checkpoint {} records {} cells, spec resolves to {}",
            path.display(),
            ck.cells,
            resolved.cells.len()
        ));
    }
    Ok(ck.shards)
}

/// Splits the sweep into already-complete and still-pending shards
/// given restored cell aggregates. A shard is complete iff every
/// member cell's aggregate is present (checkpoints are keyed by cell,
/// so partial waves restore cleanly).
pub(crate) fn partition_pending(
    resolved: &ResolvedSweep,
    done: &BTreeMap<usize, CellAggregate>,
) -> (usize, Vec<usize>) {
    let shard_done = |s: &FusedShard| s.cells.iter().all(|c| done.contains_key(c));
    let resumed = resolved.fused.iter().filter(|s| shard_done(s)).count();
    let pending: Vec<usize> = resolved
        .fused
        .iter()
        .filter(|s| !shard_done(s))
        .map(|s| s.index)
        .collect();
    (resumed, pending)
}

/// Renders the `--progress` stderr line after a wave: shard counts,
/// aggregate simulation throughput, and a rounds-weighted ETA over the
/// work still pending. Carriage-return updates in place on a TTY; in a
/// log file each wave is one line.
#[allow(clippy::too_many_arguments)]
fn print_progress(
    name: &str,
    done_shards: usize,
    total_shards: usize,
    resumed: usize,
    done_rounds: u64,
    pending_rounds: u64,
    agent_steps: u64,
    started: Instant,
) {
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    let msteps = agent_steps as f64 / elapsed / 1e6;
    let eta = if done_rounds > 0 {
        let rate = done_rounds as f64 / elapsed;
        let remaining = pending_rounds.saturating_sub(done_rounds) as f64;
        format!("{:.0}s", remaining / rate)
    } else {
        "--".to_string()
    };
    let resumed_note = if resumed > 0 {
        format!(" ({resumed} resumed)")
    } else {
        String::new()
    };
    eprint!(
        "\rsweep {name}: shards {done_shards}/{total_shards}{resumed_note} | \
         {msteps:.1} Msteps/s | ETA {eta}   "
    );
    let _ = std::io::stderr().flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::parse(
            "
            name = runner_test
            seed = 11
            trials = 2
            topology = torus2d:8, complete:64
            density = 0.1
            rounds = 8, 16
            estimator = alg1
            ",
        )
        .unwrap()
    }

    #[test]
    fn run_shard_is_pure_and_matches_unfused() {
        let resolved = tiny_spec().resolve(false).unwrap();
        // 4 cells fuse into 2 shards (one per topology, rounds fused)
        assert_eq!(resolved.cells.len(), 4);
        assert_eq!(resolved.fused.len(), 2);
        assert_eq!(run_shard(&resolved, 1), run_shard(&resolved, 1));
        assert_eq!(
            run_shard(&resolved, 0),
            run_shard_unfused(&resolved, 0),
            "fused and unfused execution must agree bit for bit"
        );
        assert_ne!(
            run_shard(&resolved, 0)[0].1.est,
            run_shard(&resolved, 1)[0].1.est,
            "different shards draw different streams"
        );
    }

    #[test]
    fn counts_opt_in_dispatches_eligible_shards() {
        let text = "
            name = counts_test
            seed = 11
            trials = 3
            topology = torus2d:8, complete:64
            density = 0.1
            rounds = 8, 16
            estimator = alg1
            counts = on
            ";
        let spec = SweepSpec::parse(text).unwrap();
        let resolved = spec.resolve(false).unwrap();
        assert!(resolved.counts);
        assert_eq!(resolved.fused.len(), 2);
        // shard 0 (torus) is eligible; shard 1 (complete) falls back
        assert!(counts_eligible(&resolved, &resolved.fused[0]));
        assert!(!counts_eligible(&resolved, &resolved.fused[1]));

        // fused and unfused counts execution agree bit for bit (prefix
        // property of the per-round streams)
        assert_eq!(run_shard(&resolved, 0), run_shard_unfused(&resolved, 0));

        let out = run_sweep(&spec, &SweepOptions::default()).unwrap();
        assert!(out.complete);
        for agg in out.aggregates.iter().flatten() {
            assert_eq!(agg.trials, 3);
            assert!(agg.err.count() > 0);
        }
        // counts cells aggregate one mean sample per trial; the
        // agent-level fallback keeps agents × trials samples
        assert_eq!(out.aggregates[0].as_ref().unwrap().est.count(), 3);
        let complete_cell = &out.resolved.cells[2];
        assert!(matches!(
            complete_cell.topology,
            antdensity_engine::TopologySpec::Complete { .. }
        ));
        assert_eq!(
            out.aggregates[2].as_ref().unwrap().est.count(),
            3 * complete_cell.num_agents as u64
        );

        // the knob changes the sampling path, so per-seed numbers move
        let off = SweepSpec::parse(&text.replace("counts = on", "counts = off")).unwrap();
        let base = run_sweep(&off, &SweepOptions::default()).unwrap();
        assert_ne!(out.aggregates[0], base.aggregates[0]);
        // ...but the ineligible shard is untouched by the knob
        assert_eq!(out.aggregates[2], base.aggregates[2]);
    }

    #[test]
    fn full_run_completes_all_shards() {
        let out = run_sweep(&tiny_spec(), &SweepOptions::default()).unwrap();
        assert!(out.complete);
        assert_eq!(out.executed, 2);
        assert_eq!(out.resumed, 0);
        // fused: one pass of max rounds per (shard, trial)
        assert_eq!(out.simulations, 2 * 2);
        assert_eq!(out.simulated_rounds, 2 * 16 * 2);
        assert!(out.aggregates.iter().all(|a| a.is_some()));
        for agg in out.aggregates.iter().flatten() {
            assert_eq!(agg.trials, 2);
        }
    }

    #[test]
    fn no_fuse_runs_more_simulations_same_aggregates() {
        let spec = tiny_spec();
        let fused = run_sweep(&spec, &SweepOptions::default()).unwrap();
        let unfused = run_sweep(
            &spec,
            &SweepOptions {
                fuse: false,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fused.aggregates, unfused.aggregates);
        assert_eq!(unfused.simulations, 4 * 2);
        assert_eq!(unfused.simulated_rounds, 2 * (8 + 16) * 2);
        assert!(unfused.simulated_rounds > fused.simulated_rounds);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = tiny_spec();
        let base = run_sweep(&spec, &SweepOptions::default()).unwrap();
        for workers in [1, 2, 5] {
            let opts = SweepOptions {
                workers,
                pool: Some(Arc::new(WorkerPool::new(workers))),
                ..SweepOptions::default()
            };
            let out = run_sweep(&spec, &opts).unwrap();
            assert_eq!(out.aggregates, base.aggregates, "workers = {workers}");
        }
    }

    #[test]
    fn max_shards_stops_early_with_checkpoint() {
        let dir = std::env::temp_dir().join(format!("antdensity_runner_{}", std::process::id()));
        let ckpt = dir.join("partial.ckpt");
        let spec = tiny_spec();
        let opts = SweepOptions {
            checkpoint: Some(ckpt.clone()),
            max_shards: Some(1),
            checkpoint_every: 1,
            ..SweepOptions::default()
        };
        let partial = run_sweep(&spec, &opts).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.executed, 1);
        // shard 0 covers the first topology's two rounds-cells
        assert_eq!(partial.aggregates.iter().filter(|a| a.is_some()).count(), 2);
        let ck = Checkpoint::load(&ckpt).unwrap();
        assert_eq!(ck.shards.len(), 2, "cell-keyed checkpoint entries");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_foreign_checkpoint() {
        let dir = std::env::temp_dir().join(format!("antdensity_runner_fp_{}", std::process::id()));
        let ckpt = dir.join("sweep.ckpt");
        let spec = tiny_spec();
        let opts = SweepOptions {
            checkpoint: Some(ckpt.clone()),
            max_shards: Some(1),
            ..SweepOptions::default()
        };
        run_sweep(&spec, &opts).unwrap();
        // editing the spec (different seed) must invalidate the checkpoint
        let mut edited = spec.clone();
        edited.seed += 1;
        let resume = SweepOptions {
            checkpoint: Some(ckpt.clone()),
            resume: true,
            ..SweepOptions::default()
        };
        let err = run_sweep(&edited, &resume).unwrap_err();
        assert!(err.contains("different sweep configuration"), "{err}");
        // quick mode resolves a different grid: also rejected
        let err = run_sweep(
            &spec,
            &SweepOptions {
                quick: true,
                ..resume.clone()
            },
        )
        .unwrap_err();
        assert!(err.contains("different sweep configuration"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
