//! Sharded sweep execution on the workspace's persistent worker pool.
//!
//! The resolved grid's cells are the shards. Shard `i` is a **pure
//! function** of `(resolved spec, i)`: its trials draw from
//! `SeedSequence::new(seed).subsequence(SHARD_STREAM ^ i).derive(trial)`
//! — the same per-(shard, seed) stream discipline the engine uses for
//! stream blocks — so any subset of shards can run anywhere, in any
//! order, on any worker count, and the aggregates come out bit-identical.
//!
//! Shards are dispatched in waves onto the existing
//! [`WorkerPool`] (via
//! [`antdensity_walks::parallel::run_trials_on`], the workspace's
//! deterministic fan-out primitive); after each wave the full completed
//! state is checkpointed. Killing the process loses at most one wave of
//! work, and [`run_sweep`] with `resume` picks up from the checkpoint.

use crate::aggregate::CellAggregate;
use crate::checkpoint::Checkpoint;
use crate::spec::{ResolvedSweep, SweepSpec};
use antdensity_engine::{Scenario, WorkerPool};
use antdensity_stats::rng::SeedSequence;
use antdensity_walks::parallel;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Stream label separating shard seed derivation from every other
/// consumer of the sweep's master seed.
const SHARD_STREAM: u64 = 0x5348_4152_4400_0000; // "SHARD"

/// Execution options for [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Quick (CI smoke) or full effort; part of the resolved spec and
    /// its fingerprint.
    pub quick: bool,
    /// Worker threads for shard fan-out (results never depend on it).
    pub workers: usize,
    /// Explicit pool (tests pin real worker counts); `None` = the
    /// process-global pool.
    pub pool: Option<Arc<WorkerPool>>,
    /// Checkpoint file path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Load the checkpoint (if it exists) and skip completed shards.
    pub resume: bool,
    /// Stop after this many newly executed shards (the checkpoint still
    /// covers them) — `repro sweep --max-shards`, and how the
    /// determinism suite simulates a mid-run kill.
    pub max_shards: Option<usize>,
    /// Shards per wave between checkpoint writes.
    pub checkpoint_every: usize,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            quick: false,
            workers: parallel::default_threads(),
            pool: None,
            checkpoint: None,
            resume: false,
            max_shards: None,
            checkpoint_every: 8,
        }
    }
}

/// The result of a (possibly partial) sweep execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// The resolved spec the shards ran against.
    pub resolved: ResolvedSweep,
    /// Aggregates by shard index; `None` for shards not yet executed
    /// (only when stopped early via `max_shards`).
    pub aggregates: Vec<Option<CellAggregate>>,
    /// Whether every shard has completed.
    pub complete: bool,
    /// Shards executed by *this* invocation (excludes resumed ones).
    pub executed: usize,
    /// Shards restored from the checkpoint.
    pub resumed: usize,
}

/// Executes shard `index` of a resolved sweep: all `trials` scenario
/// runs of the cell, streamed into a fresh [`CellAggregate`]. Pure —
/// every call with the same arguments returns the identical aggregate.
///
/// # Panics
///
/// Panics if `index` is out of range.
pub fn run_shard(resolved: &ResolvedSweep, index: usize) -> CellAggregate {
    let cell = &resolved.cells[index];
    let seq = SeedSequence::new(resolved.seed).subsequence(SHARD_STREAM ^ index as u64);
    let mut scenario = Scenario::new(cell.topology, cell.num_agents, cell.rounds)
        .with_movement(cell.movement.clone())
        .with_estimator(cell.estimator.clone());
    if let Some(noise) = cell.noise {
        scenario = scenario.with_noise(noise);
    }
    let mut agg = CellAggregate::new();
    for trial in 0..resolved.trials {
        let outcome = scenario.run(seq.derive(trial));
        agg.record_trial(cell, &outcome, resolved.band);
    }
    agg
}

/// Resolves `spec` under `opts` and executes its shards, checkpointing
/// each wave and resuming from a prior checkpoint when asked.
///
/// # Errors
///
/// Returns an error if the spec fails to resolve, a resume checkpoint
/// is unreadable/malformed, or the checkpoint's fingerprint or shard
/// count does not match the resolved spec.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepOutcome, String> {
    let resolved = spec.resolve(opts.quick)?;
    let mut done: BTreeMap<usize, CellAggregate> = BTreeMap::new();
    let mut resumed = 0usize;

    if opts.resume {
        if let Some(path) = &opts.checkpoint {
            if path.exists() {
                let ck = Checkpoint::load(path)?;
                if ck.fingerprint != resolved.fingerprint {
                    return Err(format!(
                        "checkpoint {} belongs to a different sweep configuration \
                         (fingerprint {:016x}, expected {:016x}) — delete it or rerun \
                         with the original spec and mode",
                        path.display(),
                        ck.fingerprint,
                        resolved.fingerprint
                    ));
                }
                if ck.cells != resolved.cells.len() {
                    return Err(format!(
                        "checkpoint {} records {} cells, spec resolves to {}",
                        path.display(),
                        ck.cells,
                        resolved.cells.len()
                    ));
                }
                resumed = ck.shards.len();
                done = ck.shards;
            }
        }
    }

    let pending: Vec<usize> = (0..resolved.cells.len())
        .filter(|i| !done.contains_key(i))
        .collect();
    let budget = opts.max_shards.unwrap_or(usize::MAX);
    let workers = opts.workers.max(1);
    let wave_size = opts.checkpoint_every.max(1);
    let pool: &WorkerPool = opts.pool.as_deref().unwrap_or_else(|| WorkerPool::global());

    let mut executed = 0usize;
    for wave in pending.chunks(wave_size) {
        if executed >= budget {
            break;
        }
        let wave = &wave[..wave.len().min(budget - executed)];
        // Unused per-trial RNG (shards derive their own streams), but
        // run_trials_on is the workspace's deterministic pool fan-out.
        let seq = SeedSequence::new(resolved.seed);
        let results = parallel::run_trials_on(pool, wave.len() as u64, workers, seq, |i, _| {
            run_shard(&resolved, wave[i as usize])
        });
        for (&idx, agg) in wave.iter().zip(results) {
            done.insert(idx, agg);
        }
        executed += wave.len();
        if let Some(path) = &opts.checkpoint {
            crate::checkpoint::save_shards(path, resolved.fingerprint, resolved.cells.len(), &done)
                .map_err(|e| format!("checkpoint write failed: {e}"))?;
        }
    }

    let aggregates: Vec<Option<CellAggregate>> =
        (0..resolved.cells.len()).map(|i| done.remove(&i)).collect();
    let complete = aggregates.iter().all(Option::is_some);
    Ok(SweepOutcome {
        resolved,
        aggregates,
        complete,
        executed,
        resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec::parse(
            "
            name = runner_test
            seed = 11
            trials = 2
            topology = torus2d:8, complete:64
            density = 0.1
            rounds = 8, 16
            estimator = alg1
            ",
        )
        .unwrap()
    }

    #[test]
    fn run_shard_is_pure() {
        let resolved = tiny_spec().resolve(false).unwrap();
        assert_eq!(run_shard(&resolved, 1), run_shard(&resolved, 1));
        assert_ne!(
            run_shard(&resolved, 0).est,
            run_shard(&resolved, 1).est,
            "different shards draw different streams"
        );
    }

    #[test]
    fn full_run_completes_all_shards() {
        let out = run_sweep(&tiny_spec(), &SweepOptions::default()).unwrap();
        assert!(out.complete);
        assert_eq!(out.executed, 4);
        assert_eq!(out.resumed, 0);
        assert!(out.aggregates.iter().all(|a| a.is_some()));
        for agg in out.aggregates.iter().flatten() {
            assert_eq!(agg.trials, 2);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = tiny_spec();
        let base = run_sweep(&spec, &SweepOptions::default()).unwrap();
        for workers in [1, 2, 5] {
            let opts = SweepOptions {
                workers,
                pool: Some(Arc::new(WorkerPool::new(workers))),
                ..SweepOptions::default()
            };
            let out = run_sweep(&spec, &opts).unwrap();
            assert_eq!(out.aggregates, base.aggregates, "workers = {workers}");
        }
    }

    #[test]
    fn max_shards_stops_early_with_checkpoint() {
        let dir = std::env::temp_dir().join(format!("antdensity_runner_{}", std::process::id()));
        let ckpt = dir.join("partial.ckpt");
        let spec = tiny_spec();
        let opts = SweepOptions {
            checkpoint: Some(ckpt.clone()),
            max_shards: Some(3),
            checkpoint_every: 2,
            ..SweepOptions::default()
        };
        let partial = run_sweep(&spec, &opts).unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.executed, 3);
        assert_eq!(partial.aggregates.iter().filter(|a| a.is_some()).count(), 3);
        let ck = Checkpoint::load(&ckpt).unwrap();
        assert_eq!(ck.shards.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_foreign_checkpoint() {
        let dir = std::env::temp_dir().join(format!("antdensity_runner_fp_{}", std::process::id()));
        let ckpt = dir.join("sweep.ckpt");
        let spec = tiny_spec();
        let opts = SweepOptions {
            checkpoint: Some(ckpt.clone()),
            max_shards: Some(1),
            ..SweepOptions::default()
        };
        run_sweep(&spec, &opts).unwrap();
        // editing the spec (different seed) must invalidate the checkpoint
        let mut edited = spec.clone();
        edited.seed += 1;
        let resume = SweepOptions {
            checkpoint: Some(ckpt.clone()),
            resume: true,
            ..SweepOptions::default()
        };
        let err = run_sweep(&edited, &resume).unwrap_err();
        assert!(err.contains("different sweep configuration"), "{err}");
        // quick mode resolves a different grid: also rejected
        let err = run_sweep(
            &spec,
            &SweepOptions {
                quick: true,
                ..resume.clone()
            },
        )
        .unwrap_err();
        assert!(err.contains("different sweep configuration"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
