//! Declarative sweep specifications: parse, validate, expand.
//!
//! A sweep spec is a small text file describing a parameter grid —
//! topology × density × estimator × movement × noise × rounds — plus
//! how many seeded trials to run per grid cell. [`SweepSpec::parse`]
//! reads the file format, [`SweepSpec::resolve`] applies the effort mode
//! (quick/full) and expands the grid into a deterministic, stable-order
//! list of [`Cell`]s — the shards the runner executes.
//!
//! # File format
//!
//! Line-oriented `key = value`; `#` starts a comment; lists are
//! comma-separated. Axis tokens reuse the engine's canonical spec syntax
//! (`TopologySpec`/`MovementModel`/`CollisionNoise` `FromStr`):
//!
//! ```text
//! # Algorithm 1 accuracy vs rounds (Theorem 1 table)
//! name     = alg1_accuracy
//! seed     = 20160725
//! trials   = 8              # seeds per cell (full mode)
//! quick_trials = 2          # seeds per cell under --quick
//! quick_max_rounds = 128    # drop larger rounds under --quick
//!
//! topology  = torus2d:32, ring:1024, hypercube:10, complete:1024
//! density   = 0.02, 0.05, 0.1, 0.2
//! rounds    = 16, 32, 64, 128, 256, 512   # or log:<lo>:<hi>:<per-doubling>
//! estimator = alg1                      # alg1 | alg4 | quorum:<thr> | relfreq:<share>
//! movement  = pure                      # pure | lazy:<p> | stationary | drift:<i>
//! noise     = none                      # none | sense:<detect>:<spurious>
//! ```
//!
//! `estimator`, `movement`, and `noise` default to `alg1` / `pure` /
//! `none` when omitted. `relfreq:<share>` takes the property *share*
//! (fraction of the population, in `(0, 1]`), resolved into a concrete
//! agent count per cell. Biased walks carry comma-separated
//! probabilities and are therefore not expressible in the comma-split
//! axis list — drive those through the library API.

use antdensity_engine::{EstimatorSpec, MovementModel, NoiseSpec, SimFamily, TopologySpec};
use antdensity_stats::rng::splitmix64;
use antdensity_stats::schedule::Schedule;

/// One estimator axis value. Unlike [`EstimatorSpec`], the relative
/// frequency variant carries a population *share* so a single token can
/// scale across densities; [`SweepSpec::resolve`] fixes the concrete
/// agent count per cell.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorAxis {
    /// Algorithm 1.
    Algorithm1,
    /// Algorithm 4 (2-d torus, `rounds < side` only).
    Algorithm4,
    /// Quorum read-out at a density threshold.
    Quorum {
        /// Density threshold to detect.
        threshold: f64,
    },
    /// Relative frequency with `share · num_agents` property agents.
    RelFreq {
        /// Fraction of the population carrying the property, in `(0, 1]`.
        share: f64,
    },
}

impl std::fmt::Display for EstimatorAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Algorithm1 => write!(f, "alg1"),
            Self::Algorithm4 => write!(f, "alg4"),
            Self::Quorum { threshold } => write!(f, "quorum:{threshold}"),
            Self::RelFreq { share } => write!(f, "relfreq:{share}"),
        }
    }
}

impl std::str::FromStr for EstimatorAxis {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        // `relfreq:` carries a *share* here (the engine token takes an
        // agent count), so it is intercepted before delegating the rest
        // of the grammar to EstimatorSpec — one source of truth for
        // alg1/alg4/quorum token syntax and validation.
        if let Some(arg) = s.strip_prefix("relfreq:") {
            let share: f64 = arg
                .trim()
                .parse()
                .map_err(|_| format!("estimator `{s}`: bad share `{arg}`"))?;
            if !(share > 0.0 && share <= 1.0) {
                return Err(format!("estimator `{s}`: share must lie in (0,1]"));
            }
            return Ok(Self::RelFreq { share });
        }
        match s.parse::<EstimatorSpec>()? {
            EstimatorSpec::Algorithm1 => Ok(Self::Algorithm1),
            EstimatorSpec::Algorithm4 => Ok(Self::Algorithm4),
            EstimatorSpec::Quorum { threshold } => Ok(Self::Quorum { threshold }),
            // unreachable: the prefix above consumed every relfreq token
            EstimatorSpec::RelativeFrequency { .. } => {
                Err(format!("estimator `{s}`: expected relfreq:<share>"))
            }
        }
    }
}

/// A parsed (but not yet expanded) sweep specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (output-file stem).
    pub name: String,
    /// Master seed; every shard and trial stream derives from it.
    pub seed: u64,
    /// Seeds per cell in full mode.
    pub trials: u64,
    /// Seeds per cell in quick mode (default: `max(1, trials / 4)`).
    pub quick_trials: Option<u64>,
    /// Quick mode drops rounds entries above this value.
    pub quick_max_rounds: Option<u64>,
    /// Relative-error band reported as "fraction within" (default 0.2).
    pub band: f64,
    /// Failure probability for the reported error quantile and the
    /// theory-bound column: both use `1 − delta` (default 0.1).
    pub delta: f64,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Density axis (paper convention `d = n/A`).
    pub densities: Vec<f64>,
    /// Rounds axis.
    pub rounds: Vec<u64>,
    /// Estimator axis.
    pub estimators: Vec<EstimatorAxis>,
    /// Movement axis.
    pub movements: Vec<MovementModel>,
    /// Noise axis (`None` = perfect sensing).
    pub noises: Vec<Option<NoiseSpec>>,
    /// Opt-in count-based stepping (`counts = on`): eligible shards run
    /// through the occupancy-count fast path instead of the agent-level
    /// engine. Off by default — the fast path is distributionally (not
    /// bitwise) equivalent, so enabling it changes per-seed numbers and
    /// is part of the fingerprint.
    pub counts: bool,
}

/// One expanded grid cell — the unit of sharded execution. Everything a
/// worker needs to run the cell's trials is a pure function of this
/// struct plus the sweep seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in the expanded grid (also the shard id).
    pub index: usize,
    /// Topology.
    pub topology: TopologySpec,
    /// Requested density (the axis value; the realised `d = n/A` follows
    /// from `num_agents`).
    pub density: f64,
    /// Agents placed (`n + 1` in paper convention).
    pub num_agents: usize,
    /// Rounds per trial.
    pub rounds: u64,
    /// Concrete estimator (relfreq share already resolved to agents).
    pub estimator: EstimatorSpec,
    /// Movement model.
    pub movement: MovementModel,
    /// Collision-sensing noise (`None` = perfect).
    pub noise: Option<NoiseSpec>,
}

impl Cell {
    /// Realised paper-convention density `d = n/A`.
    pub fn true_density(&self) -> f64 {
        (self.num_agents as f64 - 1.0) / self.topology.num_nodes() as f64
    }

    /// Noise axis token for reports (`none` for perfect sensing).
    pub fn noise_label(&self) -> String {
        match &self.noise {
            None => "none".to_string(),
            Some(n) => n.to_string(),
        }
    }
}

/// A grid combination that was dropped at expansion, with the reason.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedCell {
    /// Human-readable cell label (axis tokens).
    pub label: String,
    /// Why it cannot run.
    pub reason: String,
}

/// One checkpoint of a [`ShardTap`]: the fused pass snapshots the tap's
/// estimator after `rounds` rounds and fans the outcome out to `cells`.
#[derive(Debug, Clone, PartialEq)]
pub struct TapCheckpoint {
    /// Rounds at which the snapshot is taken.
    pub rounds: u64,
    /// Member cells reported at this checkpoint (more than one only when
    /// the grid contains duplicate axis values).
    pub cells: Vec<usize>,
}

/// One estimator tapping a fused shard's shared event stream, with its
/// checkpoint schedule mapped back to grid cells.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardTap {
    /// The estimator (resolved form).
    pub estimator: EstimatorSpec,
    /// Snapshot checkpoints, ascending in rounds.
    pub checkpoints: Vec<TapCheckpoint>,
}

impl ShardTap {
    /// The tap's checkpoint rounds as a [`Schedule`].
    pub fn schedule(&self) -> Schedule {
        Schedule::new(self.checkpoints.iter().map(|c| c.rounds).collect())
            .expect("taps have at least one positive checkpoint")
    }
}

/// One fused shard — the unit of sharded execution since the observer
/// pipeline landed. Member cells are identical up to estimator and
/// rounds and share one simulation family
/// ([`antdensity_engine::SimFamily`]), so each trial is **one**
/// simulation pass of `max_rounds` rounds snapshotted at every member's
/// checkpoint; the unfused path (`--no-fuse`) runs each member cell
/// separately from the *same* per-(shard, trial) RNG stream and lands on
/// bit-identical aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedShard {
    /// Shard id (position in the plan; the RNG stream label).
    pub index: usize,
    /// Member cell indices, ascending.
    pub cells: Vec<usize>,
    /// Estimator taps over the shared pass.
    pub taps: Vec<ShardTap>,
}

impl FusedShard {
    /// Rounds the fused pass must execute: the largest checkpoint of any
    /// tap.
    pub fn max_rounds(&self) -> u64 {
        self.taps
            .iter()
            .flat_map(|t| t.checkpoints.iter().map(|c| c.rounds))
            .max()
            .expect("shards have at least one checkpoint")
    }

    /// Total rounds dedicated per-cell runs would execute for the same
    /// snapshots.
    pub fn unfused_rounds(&self) -> u64 {
        self.taps
            .iter()
            .flat_map(|t| t.checkpoints.iter())
            .map(|c| c.rounds * c.cells.len() as u64)
            .sum()
    }
}

/// A fully resolved sweep: effort applied, grid expanded, fingerprinted.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedSweep {
    /// Sweep name.
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Seeds per cell after effort scaling.
    pub trials: u64,
    /// Relative-error band for the "fraction within" column.
    pub band: f64,
    /// Failure probability for quantile/bound columns.
    pub delta: f64,
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// The expanded grid, in stable order (cell index = grid position).
    pub cells: Vec<Cell>,
    /// The fusion plan: cells grouped into shards that share one
    /// simulation pass. This — not the cell list — is the unit of
    /// execution, checkpoint waves, and RNG stream derivation.
    pub fused: Vec<FusedShard>,
    /// Count-based stepping opt-in (see [`SweepSpec::counts`]).
    pub counts: bool,
    /// Combinations dropped at expansion.
    pub skipped: Vec<SkippedCell>,
    /// Hash of the resolved configuration — checkpoints bind to it, so a
    /// resume against an edited spec (or a different effort mode) is
    /// rejected instead of silently mixing aggregates.
    pub fingerprint: u64,
}

impl SweepSpec {
    /// Parses the spec file format (see module docs).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for syntax errors,
    /// unknown or duplicate keys, bad axis tokens, out-of-range values,
    /// or missing required keys (`name`, `trials`, `topology`,
    /// `density`, `rounds`).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut name: Option<String> = None;
        let mut seed: Option<u64> = None;
        let mut trials: Option<u64> = None;
        let mut quick_trials: Option<u64> = None;
        let mut quick_max_rounds: Option<u64> = None;
        let mut band: Option<f64> = None;
        let mut delta: Option<f64> = None;
        let mut topologies: Option<Vec<TopologySpec>> = None;
        let mut densities: Option<Vec<f64>> = None;
        let mut rounds: Option<Vec<u64>> = None;
        let mut estimators: Option<Vec<EstimatorAxis>> = None;
        let mut movements: Option<Vec<MovementModel>> = None;
        let mut noises: Option<Vec<Option<NoiseSpec>>> = None;
        let mut counts: Option<bool> = None;

        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let dup = |set: bool| -> Result<(), String> {
                if set {
                    Err(format!("line {}: duplicate key `{key}`", lineno + 1))
                } else {
                    Ok(())
                }
            };
            let at = |e: String| format!("line {}: {e}", lineno + 1);
            match key {
                "name" => {
                    dup(name.is_some())?;
                    if value.is_empty()
                        || !value
                            .chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                    {
                        return Err(at(format!(
                            "name `{value}` must be non-empty [A-Za-z0-9_-] (it names output files)"
                        )));
                    }
                    name = Some(value.to_string());
                }
                "seed" => {
                    dup(seed.is_some())?;
                    seed = Some(
                        value
                            .parse()
                            .map_err(|_| at(format!("bad seed `{value}`")))?,
                    );
                }
                "trials" => {
                    dup(trials.is_some())?;
                    let v: u64 = value
                        .parse()
                        .map_err(|_| at(format!("bad trials `{value}`")))?;
                    if v == 0 {
                        return Err(at("trials must be positive".into()));
                    }
                    trials = Some(v);
                }
                "quick_trials" => {
                    dup(quick_trials.is_some())?;
                    let v: u64 = value
                        .parse()
                        .map_err(|_| at(format!("bad quick_trials `{value}`")))?;
                    if v == 0 {
                        return Err(at("quick_trials must be positive".into()));
                    }
                    quick_trials = Some(v);
                }
                "quick_max_rounds" => {
                    dup(quick_max_rounds.is_some())?;
                    quick_max_rounds = Some(
                        value
                            .parse()
                            .map_err(|_| at(format!("bad quick_max_rounds `{value}`")))?,
                    );
                }
                "band" => {
                    dup(band.is_some())?;
                    let v: f64 = value
                        .parse()
                        .map_err(|_| at(format!("bad band `{value}`")))?;
                    if !(v > 0.0 && v.is_finite()) {
                        return Err(at("band must be positive".into()));
                    }
                    band = Some(v);
                }
                "delta" => {
                    dup(delta.is_some())?;
                    let v: f64 = value
                        .parse()
                        .map_err(|_| at(format!("bad delta `{value}`")))?;
                    if !(v > 0.0 && v < 1.0) {
                        return Err(at("delta must lie in (0,1)".into()));
                    }
                    delta = Some(v);
                }
                "topology" => {
                    dup(topologies.is_some())?;
                    topologies = Some(parse_list(value).map_err(at)?);
                }
                "density" => {
                    dup(densities.is_some())?;
                    let ds: Vec<f64> = value
                        .split(',')
                        .map(|v| {
                            v.trim()
                                .parse::<f64>()
                                .map_err(|_| at(format!("bad density `{v}`")))
                        })
                        .collect::<Result<_, _>>()?;
                    if ds.iter().any(|&d| !(d > 0.0 && d <= 1.0)) {
                        return Err(at("densities must lie in (0,1]".into()));
                    }
                    densities = Some(ds);
                }
                "rounds" => {
                    dup(rounds.is_some())?;
                    rounds = Some(parse_rounds(value).map_err(at)?);
                }
                "estimator" => {
                    dup(estimators.is_some())?;
                    estimators = Some(parse_list(value).map_err(at)?);
                }
                "movement" => {
                    dup(movements.is_some())?;
                    movements = Some(parse_list(value).map_err(at)?);
                }
                "noise" => {
                    dup(noises.is_some())?;
                    let ns: Vec<Option<NoiseSpec>> = value
                        .split(',')
                        .map(|v| {
                            let v = v.trim();
                            if v == "none" {
                                Ok(None)
                            } else {
                                v.parse::<NoiseSpec>().map(Some).map_err(&at)
                            }
                        })
                        .collect::<Result<_, _>>()?;
                    noises = Some(ns);
                }
                "counts" => {
                    dup(counts.is_some())?;
                    counts = Some(match value {
                        "on" => true,
                        "off" => false,
                        other => return Err(at(format!("counts must be on|off, got `{other}`"))),
                    });
                }
                other => return Err(at(format!("unknown key `{other}`"))),
            }
        }

        let missing = |what: &str| format!("missing required key `{what}`");
        Ok(Self {
            name: name.ok_or_else(|| missing("name"))?,
            seed: seed.unwrap_or(20_160_725),
            trials: trials.ok_or_else(|| missing("trials"))?,
            quick_trials,
            quick_max_rounds,
            band: band.unwrap_or(0.2),
            delta: delta.unwrap_or(0.1),
            topologies: topologies.ok_or_else(|| missing("topology"))?,
            densities: densities.ok_or_else(|| missing("density"))?,
            rounds: rounds.ok_or_else(|| missing("rounds"))?,
            estimators: estimators.unwrap_or_else(|| vec![EstimatorAxis::Algorithm1]),
            movements: movements.unwrap_or_else(|| vec![MovementModel::Pure]),
            noises: noises.unwrap_or_else(|| vec![None]),
            counts: counts.unwrap_or(false),
        })
    }

    /// Applies the effort mode and expands the grid into shard-ordered
    /// cells. Cell order is the nested axis order (topology, density,
    /// estimator, movement, noise, rounds) and is part of the
    /// determinism contract: shard `i` always describes the same cell
    /// for a given resolved spec.
    ///
    /// Invalid combinations are dropped with a recorded reason:
    /// Algorithm 4 off the 2-d torus or with `rounds ≥ side` (Theorem
    /// 32's precondition), and Algorithm 4 paired with any movement
    /// other than the first axis entry (it fixes its own
    /// stationary/drift split, so extra movement values would duplicate
    /// work).
    ///
    /// # Errors
    ///
    /// Returns an error if quick filtering empties the rounds axis.
    pub fn resolve(&self, quick: bool) -> Result<ResolvedSweep, String> {
        let trials = if quick {
            self.quick_trials
                .unwrap_or_else(|| (self.trials / 4).max(1))
        } else {
            self.trials
        };
        let rounds: Vec<u64> = match (quick, self.quick_max_rounds) {
            (true, Some(cap)) => {
                let kept: Vec<u64> = self.rounds.iter().copied().filter(|&r| r <= cap).collect();
                if kept.is_empty() {
                    return Err(format!("quick_max_rounds = {cap} drops every rounds entry"));
                }
                kept
            }
            _ => self.rounds.clone(),
        };

        let mut cells = Vec::new();
        let mut skipped = Vec::new();
        for &topology in &self.topologies {
            let a = topology.num_nodes();
            for &density in &self.densities {
                let num_agents = ((density * a as f64).round() as usize).max(2) + 1;
                for estimator in &self.estimators {
                    for (mi, movement) in self.movements.iter().enumerate() {
                        for noise in &self.noises {
                            for &r in &rounds {
                                let label = format!(
                                    "{topology} d={density} {estimator} {movement} {} t={r}",
                                    noise.map_or("none".to_string(), |n| n.to_string()),
                                );
                                let skip = |reason: &str, skipped: &mut Vec<SkippedCell>| {
                                    skipped.push(SkippedCell {
                                        label: label.clone(),
                                        reason: reason.to_string(),
                                    });
                                };
                                let resolved_estimator = match estimator {
                                    EstimatorAxis::Algorithm1 => EstimatorSpec::Algorithm1,
                                    EstimatorAxis::Algorithm4 => {
                                        if mi != 0 {
                                            skip(
                                                "alg4 fixes its own movement; kept for the first \
                                                 movement axis entry only",
                                                &mut skipped,
                                            );
                                            continue;
                                        }
                                        match topology {
                                            TopologySpec::Torus2d { side } if r < side => {
                                                EstimatorSpec::Algorithm4
                                            }
                                            TopologySpec::Torus2d { side } => {
                                                skip(
                                                    &format!(
                                                        "alg4 requires rounds < side (= {side}), \
                                                         Theorem 32"
                                                    ),
                                                    &mut skipped,
                                                );
                                                continue;
                                            }
                                            _ => {
                                                skip(
                                                    "alg4 is analysed on the 2-d torus only",
                                                    &mut skipped,
                                                );
                                                continue;
                                            }
                                        }
                                    }
                                    EstimatorAxis::Quorum { threshold } => EstimatorSpec::Quorum {
                                        threshold: *threshold,
                                    },
                                    EstimatorAxis::RelFreq { share } => {
                                        let property_agents = ((share * num_agents as f64).round()
                                            as usize)
                                            .clamp(1, num_agents);
                                        EstimatorSpec::RelativeFrequency { property_agents }
                                    }
                                };
                                cells.push(Cell {
                                    index: cells.len(),
                                    topology,
                                    density,
                                    num_agents,
                                    rounds: r,
                                    estimator: resolved_estimator,
                                    movement: movement.clone(),
                                    noise: *noise,
                                });
                            }
                        }
                    }
                }
            }
        }

        let fused = plan_fusion(&cells);
        let mut resolved = ResolvedSweep {
            name: self.name.clone(),
            seed: self.seed,
            trials,
            band: self.band,
            delta: self.delta,
            mode: if quick { "quick" } else { "full" },
            cells,
            fused,
            counts: self.counts,
            skipped,
            fingerprint: 0,
        };
        resolved.fingerprint = resolved.compute_fingerprint();
        Ok(resolved)
    }
}

/// Groups cells into fused shards: first-fit over the stable cell order,
/// matching on everything but estimator and rounds, with
/// [`SimFamily::fuse`] arbitrating estimator compatibility (Algorithm 4
/// never joins the standard family; relative-frequency taps must agree
/// on the property-group size). Deterministic — shard order and
/// membership are pure functions of the cell list, and part of the
/// resolved fingerprint.
fn plan_fusion(cells: &[Cell]) -> Vec<FusedShard> {
    let mut groups: Vec<(SimFamily, FusedShard)> = Vec::new();
    for cell in cells {
        let family = cell.estimator.sim_family();
        let pos = groups.iter().position(|(f, shard)| {
            let base = &cells[shard.cells[0]];
            base.topology == cell.topology
                && base.num_agents == cell.num_agents
                && base.movement == cell.movement
                && base.noise == cell.noise
                && f.fuse(family).is_some()
        });
        match pos {
            Some(i) => {
                let (f, shard) = &mut groups[i];
                *f = f.fuse(family).expect("checked by position predicate");
                shard.cells.push(cell.index);
                add_tap(shard, cell);
            }
            None => {
                let mut shard = FusedShard {
                    index: groups.len(),
                    cells: vec![cell.index],
                    taps: Vec::new(),
                };
                add_tap(&mut shard, cell);
                groups.push((family, shard));
            }
        }
    }
    groups.into_iter().map(|(_, shard)| shard).collect()
}

/// Registers `cell` on its shard's tap for the cell's estimator,
/// inserting the rounds checkpoint in sorted position.
fn add_tap(shard: &mut FusedShard, cell: &Cell) {
    let tap = match shard
        .taps
        .iter()
        .position(|t| t.estimator == cell.estimator)
    {
        Some(i) => &mut shard.taps[i],
        None => {
            shard.taps.push(ShardTap {
                estimator: cell.estimator.clone(),
                checkpoints: Vec::new(),
            });
            shard.taps.last_mut().expect("just pushed")
        }
    };
    match tap
        .checkpoints
        .binary_search_by_key(&cell.rounds, |c| c.rounds)
    {
        Ok(i) => tap.checkpoints[i].cells.push(cell.index),
        Err(i) => tap.checkpoints.insert(
            i,
            TapCheckpoint {
                rounds: cell.rounds,
                cells: vec![cell.index],
            },
        ),
    }
}

/// Splits a comma-separated axis list and parses each token.
fn parse_list<T: std::str::FromStr<Err = String>>(value: &str) -> Result<Vec<T>, String> {
    value.split(',').map(|v| v.trim().parse()).collect()
}

/// Parses the rounds axis: a comma-separated list of round counts, or
/// `log:<lo>:<hi>:<per-doubling>` — geometric checkpoints via
/// [`Schedule::log_spaced`], the natural dense abscissae for
/// accuracy-vs-rounds curves under the fused observer pipeline.
fn parse_rounds(value: &str) -> Result<Vec<u64>, String> {
    if let Some(rest) = value.strip_prefix("log:") {
        let bad = || format!("rounds `{value}`: expected log:<lo>:<hi>:<points-per-doubling>");
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 3 {
            return Err(bad());
        }
        let lo: u64 = parts[0].trim().parse().map_err(|_| bad())?;
        let hi: u64 = parts[1].trim().parse().map_err(|_| bad())?;
        let per_doubling: u32 = parts[2].trim().parse().map_err(|_| bad())?;
        if lo == 0 || per_doubling == 0 {
            return Err(format!(
                "rounds `{value}`: bounds and density must be positive"
            ));
        }
        if lo > hi {
            return Err(format!("rounds `{value}`: lo exceeds hi"));
        }
        return Ok(Schedule::log_spaced(lo, hi, per_doubling).points().to_vec());
    }
    let rs: Vec<u64> = value
        .split(',')
        .map(|v| {
            v.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad rounds `{v}`"))
        })
        .collect::<Result<_, _>>()?;
    if rs.contains(&0) {
        return Err("rounds must be positive".into());
    }
    Ok(rs)
}

impl ResolvedSweep {
    /// Total simulation passes per full execution: fused vs unfused.
    /// Fused, each shard runs one pass per trial; unfused, each *cell*
    /// does.
    pub fn simulation_counts(&self) -> (u64, u64) {
        (
            self.fused.len() as u64 * self.trials,
            self.cells.len() as u64 * self.trials,
        )
    }

    /// Total simulated rounds per full execution: fused vs unfused (the
    /// work the observer pipeline saves).
    pub fn simulated_round_counts(&self) -> (u64, u64) {
        let fused: u64 = self.fused.iter().map(FusedShard::max_rounds).sum();
        let unfused: u64 = self.fused.iter().map(FusedShard::unfused_rounds).sum();
        (fused * self.trials, unfused * self.trials)
    }

    /// Canonical description of everything that determines results: the
    /// fingerprint input. The `v2` tag marks the observer-pipeline
    /// sharding scheme — shard = fused cell group, RNG streams derived
    /// per (fused shard, trial) — so pre-fusion checkpoints can never be
    /// resumed into a fused run.
    fn canonical(&self) -> String {
        let mut s = format!(
            "{} {} seed {} trials {} band {} delta {} mode {}\n",
            crate::schema::FINGERPRINT_CANONICAL,
            self.name,
            self.seed,
            self.trials,
            self.band,
            self.delta,
            self.mode
        );
        for c in &self.cells {
            s.push_str(&format!(
                "cell {} {} agents {} rounds {} {} {} {}\n",
                c.index,
                c.topology,
                c.num_agents,
                c.rounds,
                c.estimator,
                c.movement,
                c.noise_label(),
            ));
        }
        for shard in &self.fused {
            s.push_str(&format!(
                "shard {} cells {:?} taps",
                shard.index, shard.cells
            ));
            for tap in &shard.taps {
                s.push_str(&format!(" {}@{}", tap.estimator, tap.schedule()));
            }
            s.push('\n');
        }
        // Appended only when enabled: every pre-existing spec (counts
        // off) keeps its fingerprint byte-for-byte, so old checkpoints
        // stay resumable.
        if self.counts {
            s.push_str("counts on\n");
        }
        s
    }

    /// SplitMix64-chained hash of [`Self::canonical`].
    fn compute_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.canonical().bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "
        # demo sweep
        name    = demo
        seed    = 7
        trials  = 4
        quick_trials = 2
        quick_max_rounds = 16

        topology  = torus2d:8, ring:64   # two stages
        density   = 0.05, 0.2
        rounds    = 8, 16, 32
        estimator = alg1, quorum:0.1
        movement  = pure
        noise     = none, sense:0.8:0.05
    ";

    #[test]
    fn parses_and_expands_full_grid() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.trials, 4);
        let full = spec.resolve(false).unwrap();
        assert_eq!(full.mode, "full");
        // 2 topo × 2 density × 2 estimator × 1 movement × 2 noise × 3 rounds
        assert_eq!(full.cells.len(), 48);
        assert!(full.skipped.is_empty());
        // stable shard order: index field matches position
        for (i, c) in full.cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn quick_mode_scales_trials_and_rounds() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        let quick = spec.resolve(true).unwrap();
        assert_eq!(quick.mode, "quick");
        assert_eq!(quick.trials, 2);
        assert!(quick.cells.iter().all(|c| c.rounds <= 16));
        assert_eq!(quick.cells.len(), 32);
        // effort is part of the fingerprint: quick never resumes full
        let full = spec.resolve(false).unwrap();
        assert_ne!(quick.fingerprint, full.fingerprint);
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        let a = spec.resolve(false).unwrap();
        let b = spec.resolve(false).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
        let mut edited = spec.clone();
        edited.seed += 1;
        assert_ne!(
            edited.resolve(false).unwrap().fingerprint,
            a.fingerprint,
            "seed must change the fingerprint"
        );
    }

    #[test]
    fn counts_key_parses_and_gates_the_fingerprint() {
        let spec = SweepSpec::parse(SPEC).unwrap();
        assert!(!spec.counts, "counts defaults to off");
        let baseline = spec.resolve(false).unwrap();

        // `counts = off` is byte-identical to the key being absent —
        // fingerprints (and thus old checkpoints) stay valid.
        let off = SweepSpec::parse(&format!("{SPEC}\ncounts = off")).unwrap();
        assert!(!off.counts);
        assert_eq!(
            off.resolve(false).unwrap().fingerprint,
            baseline.fingerprint,
            "counts = off must not move the fingerprint"
        );

        // `counts = on` changes results (different sampling path), so it
        // must change the fingerprint.
        let on = SweepSpec::parse(&format!("{SPEC}\ncounts = on")).unwrap();
        assert!(on.counts);
        let resolved_on = on.resolve(false).unwrap();
        assert!(resolved_on.counts);
        assert_ne!(
            resolved_on.fingerprint, baseline.fingerprint,
            "counts = on must move the fingerprint"
        );

        let err = SweepSpec::parse(&format!("{SPEC}\ncounts = maybe")).unwrap_err();
        assert!(err.contains("on|off"), "bad value reported: {err}");
        let err = SweepSpec::parse(&format!("{SPEC}\ncounts = on\ncounts = on")).unwrap_err();
        assert!(err.contains("duplicate"), "duplicate reported: {err}");
    }

    #[test]
    fn alg4_cells_filtered_with_reasons() {
        let text = "
            name = a4
            trials = 2
            topology = torus2d:16, ring:64
            density = 0.1
            rounds = 8, 32
            estimator = alg4
            movement = pure, lazy:0.5
        ";
        let resolved = SweepSpec::parse(text).unwrap().resolve(false).unwrap();
        // torus2d:16 keeps t=8 only (t=32 ≥ side); ring drops both; the
        // lazy movement duplicates drop too.
        assert_eq!(resolved.cells.len(), 1);
        let c = &resolved.cells[0];
        assert_eq!(c.rounds, 8);
        assert_eq!(c.estimator, EstimatorSpec::Algorithm4);
        assert_eq!(resolved.skipped.len(), 7);
        assert!(resolved
            .skipped
            .iter()
            .any(|s| s.reason.contains("Theorem 32")));
        assert!(resolved
            .skipped
            .iter()
            .any(|s| s.reason.contains("2-d torus only")));
        assert!(resolved
            .skipped
            .iter()
            .any(|s| s.reason.contains("fixes its own movement")));
    }

    #[test]
    fn relfreq_share_resolves_per_cell() {
        let text = "
            name = rf
            trials = 1
            topology = complete:100
            density = 0.1, 0.5
            rounds = 8
            estimator = relfreq:0.25
        ";
        let resolved = SweepSpec::parse(text).unwrap().resolve(false).unwrap();
        assert_eq!(resolved.cells.len(), 2);
        // d=0.1 → 11 agents → 3 property; d=0.5 → 51 agents → 13
        match resolved.cells[0].estimator {
            EstimatorSpec::RelativeFrequency { property_agents } => assert_eq!(property_agents, 3),
            ref other => panic!("unexpected estimator {other:?}"),
        }
        match resolved.cells[1].estimator {
            EstimatorSpec::RelativeFrequency { property_agents } => assert_eq!(property_agents, 13),
            ref other => panic!("unexpected estimator {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for (text, needle) in [
            ("trials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = 4", "missing required key `name`"),
            ("name = x\ntrials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = 4\nname = y", "duplicate"),
            ("name = x\ntrials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = 4\nfoo = 1", "unknown key"),
            ("name = x\ntrials = 2\ntopology = klein:8\ndensity = 0.1\nrounds = 4", "unknown topology"),
            ("name = x\ntrials = 2\ntopology = ring:8\ndensity = 1.5\nrounds = 4", "densities"),
            ("name = x\ntrials = 0\ntopology = ring:8\ndensity = 0.1\nrounds = 4", "trials must be positive"),
            ("name = bad name\ntrials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = 4", "name"),
            ("name = x\ntrials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = 4\nestimator = relfreq:1.5", "share"),
            ("name = x\ntrials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = log:16:512", "points-per-doubling"),
            ("name = x\ntrials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = log:64:16:2", "lo exceeds hi"),
            ("name = x\ntrials = 2\ntopology = ring:8\ndensity = 0.1\nrounds = log:0:16:2", "positive"),
        ] {
            let err = SweepSpec::parse(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn fusion_plan_fuses_estimators_and_rounds() {
        let full = SweepSpec::parse(SPEC).unwrap().resolve(false).unwrap();
        // 48 cells; alg1 + quorum fuse and the 3 rounds collapse into a
        // schedule → one shard per (topology, density, noise) = 8.
        assert_eq!(full.cells.len(), 48);
        assert_eq!(full.fused.len(), 8);
        let mut seen = vec![false; full.cells.len()];
        for shard in &full.fused {
            assert_eq!(shard.cells.len(), 6);
            assert_eq!(shard.taps.len(), 2, "alg1 + quorum taps");
            assert_eq!(shard.max_rounds(), 32);
            assert_eq!(shard.unfused_rounds(), 2 * (8 + 16 + 32));
            for tap in &shard.taps {
                assert_eq!(tap.schedule().points(), &[8, 16, 32]);
                for cp in &tap.checkpoints {
                    for &c in &cp.cells {
                        assert!(!seen[c], "cell {c} planned twice");
                        seen[c] = true;
                        assert_eq!(full.cells[c].rounds, cp.rounds);
                        assert_eq!(full.cells[c].estimator, tap.estimator);
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every cell must be planned");
        let (fused_sims, unfused_sims) = full.simulation_counts();
        assert_eq!((fused_sims, unfused_sims), (8 * 4, 48 * 4));
        let (fused_rounds, unfused_rounds) = full.simulated_round_counts();
        assert_eq!(fused_rounds, 8 * 32 * 4);
        assert_eq!(unfused_rounds, 8 * 2 * (8 + 16 + 32) * 4);
    }

    #[test]
    fn alg4_gets_its_own_shards() {
        let text = "
            name = fam
            trials = 1
            topology = torus2d:64
            density = 0.1
            rounds = 8, 16
            estimator = alg1, alg4, relfreq:0.25
        ";
        let resolved = SweepSpec::parse(text).unwrap().resolve(false).unwrap();
        assert_eq!(resolved.cells.len(), 6);
        // alg1 + relfreq share the standard family; alg4 is its own shard
        assert_eq!(resolved.fused.len(), 2);
        let std_shard = &resolved.fused[0];
        assert_eq!(std_shard.taps.len(), 2);
        let alg4_shard = &resolved.fused[1];
        assert_eq!(alg4_shard.taps.len(), 1);
        assert_eq!(
            alg4_shard.taps[0].estimator,
            crate::spec::EstimatorSpec::Algorithm4
        );
        assert_eq!(alg4_shard.max_rounds(), 16);
    }

    #[test]
    fn log_rounds_axis_expands_geometrically() {
        let text = "
            name = logr
            trials = 1
            topology = ring:64
            density = 0.1
            rounds = log:16:128:1
        ";
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(spec.rounds, vec![16, 32, 64, 128]);
        // the committed alg1_accuracy axis spelled as a log token
        let dense = SweepSpec::parse(&text.replace("log:16:128:1", "log:16:512:3")).unwrap();
        assert_eq!(
            dense.rounds,
            vec![16, 20, 25, 32, 40, 51, 64, 81, 102, 128, 161, 203, 256, 323, 406, 512]
        );
    }

    #[test]
    fn quick_cap_below_all_rounds_errors() {
        let text = "
            name = x
            trials = 2
            quick_max_rounds = 2
            topology = ring:8
            density = 0.1
            rounds = 4, 8
        ";
        let spec = SweepSpec::parse(text).unwrap();
        assert!(spec.resolve(true).unwrap_err().contains("drops every"));
        assert!(spec.resolve(false).is_ok());
    }
}
