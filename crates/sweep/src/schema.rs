//! The workspace's versioned schema registry.
//!
//! Every on-disk or on-wire artifact the sweep layer emits carries a
//! version marker, and every reader asserts it. Before this module the
//! markers were string literals scattered across `metrics.rs`,
//! `checkpoint.rs`, and `spec.rs` — a version bump meant a grep. Now
//! each format has exactly one constant here, read by the writer, the
//! validator (`repro check-metrics`), the serve-daemon handshake, and
//! the tests alike, so a bump is a one-line change that the compiler
//! propagates.
//!
//! The constants are **contracts**, not configuration: changing one
//! invalidates existing artifacts of that kind (checkpoints stop
//! resuming, old metrics files stop validating as current, serve
//! clients get refused at the handshake). That is exactly the point —
//! formats never drift silently.

/// Marker newly written `METRICS_<name>.json` files carry
/// (`repro sweep --metrics`). Bumped to v3 when the `cache` section
/// landed with the shard result cache.
pub const METRICS_V3: &str = "antdensity-metrics v3";

/// The v2 metrics marker; `repro check-metrics` still accepts files
/// carrying it (they have a `dist` key but predate `cache`). Bumped
/// to v2 when the `dist` section landed with the distributed runtime.
pub const METRICS_V2: &str = "antdensity-metrics v2";

/// The previous metrics marker; `repro check-metrics` still accepts
/// files carrying it (they predate the `dist` key).
pub const METRICS_V1: &str = "antdensity-metrics v1";

/// First line of every checkpoint file and of every distributed shard
/// result blob (blobs *are* checkpoint text restricted to one shard's
/// member cells).
pub const CHECKPOINT_MAGIC: &str = "antdensity-sweep-checkpoint v1";

/// Leading tag of the canonical spec description that the sweep
/// fingerprint hashes. The `v2` marks the observer-pipeline sharding
/// scheme (shard = fused cell group, RNG streams per (shard, trial));
/// bumping it orphans every existing checkpoint on purpose.
pub const FINGERPRINT_CANONICAL: &str = "sweep v2";

/// Version announced in the `repro serve` hello handshake and required
/// of clients. The line-delimited JSON job protocol (see
/// `crates/serve`) is versioned independently of the frame-based
/// worker protocol underneath it.
pub const JOB_PROTOCOL: &str = "antdensity-job-protocol v1";

/// Namespace of the shard result cache inside the content-addressed
/// store (`crates/cas`). The cached value is the shard's checkpoint
/// blob, so the namespace ties together every contract the blob
/// depends on: bump it whenever [`CHECKPOINT_MAGIC`] or
/// [`FINGERPRINT_CANONICAL`] would not be enough to invalidate stale
/// entries (entries under the old namespace are simply never read
/// again). Keys under this namespace are
/// `<fingerprint-hex>/shard<index>`.
pub const SHARD_CACHE_V1: &str = "antdensity-shard-cache v1";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_are_distinct_and_versioned() {
        let all = [
            METRICS_V3,
            METRICS_V2,
            METRICS_V1,
            CHECKPOINT_MAGIC,
            FINGERPRINT_CANONICAL,
            JOB_PROTOCOL,
            SHARD_CACHE_V1,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(
                a.contains("v1") || a.contains("v2") || a.contains("v3"),
                "unversioned: {a}"
            );
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
