//! The shard result cache: sweep-layer semantics over the
//! content-addressed store in `crates/cas`.
//!
//! A fused shard's aggregate blob is a pure function of
//! `(resolved-spec fingerprint, shard index)` — the determinism the
//! checkpoint/resume and distributed layers are already built on. This
//! module memoizes that function on disk so warm reruns of a sweep
//! (same spec, or a different sweep whose grid overlaps cell-for-cell)
//! skip simulation entirely and still render byte-identical reports:
//! the report is computed from the merged aggregates, and a cached
//! blob *is* the checkpoint text the shard would have produced.
//!
//! Correctness is inherited, not engineered: every entry is verified
//! on read twice — once structurally by the store (length + checksum +
//! key match), once semantically here ([`crate::dist::parse_blob`]
//! re-checks the fingerprint and cell count). Anything that fails
//! either check counts as a miss and the shard is recomputed; a cache
//! can cost time, never bytes.
//!
//! One [`ShardCache`] may be shared by any number of threads and
//! processes (sweep runner waves, serve executors, dist workers): the
//! store's tmp+rename writes make racing writers benign, and hit/miss
//! accounting is atomic.

use crate::dist;
use crate::schema::SHARD_CACHE_V1;
use crate::spec::ResolvedSweep;
use antdensity_cas as cas;
use antdensity_telemetry as telemetry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// Process-global mirrors of the per-cache counters, so cache traffic
// shows up in `--metrics` counter dumps and CI can grep for it.
static TM_HITS: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.cache.hits");
static TM_MISSES: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.cache.misses");
static TM_STORES: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.cache.stores");
static TM_CORRUPT: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.cache.corrupt");
static TM_EVICTIONS: telemetry::LazyCounter = telemetry::LazyCounter::new("sweep.cache.evictions");
static TM_VERIFY_FAILURES: telemetry::LazyCounter =
    telemetry::LazyCounter::new("sweep.cache.verify_failures");

/// Counters one cache instance accumulated; surfaced in the METRICS
/// schema v3 `cache` section.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served after full verification.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Blobs published to the store.
    pub stores: u64,
    /// Entries that existed but failed structural or semantic
    /// verification (truncated, bit-flipped, wrong fingerprint, …) and
    /// were recomputed instead.
    pub corrupt: u64,
    /// Payload bytes served by hits.
    pub bytes_read: u64,
    /// On-disk bytes written by stores.
    pub bytes_written: u64,
    /// Entries removed by LRU eviction passes.
    pub evictions: u64,
    /// `--cache-verify` recomputations that did **not** byte-match the
    /// cached blob. Always zero in a healthy run; a nonzero count
    /// aborts the sweep loudly.
    pub verify_failures: u64,
}

/// A process-shared, on-disk cache of fused shard result blobs, keyed
/// by `(shard-cache schema version, spec fingerprint, shard index)`.
///
/// The schema version is the store namespace
/// ([`SHARD_CACHE_V1`]); the fingerprint already folds
/// in the canonical spec description *and* the sharding scheme
/// ([`crate::schema::FINGERPRINT_CANONICAL`]), so any change to what a
/// shard means invalidates entries automatically — stale entries are
/// simply never looked up again.
#[derive(Debug)]
pub struct ShardCache {
    store: cas::Store,
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    evictions: AtomicU64,
    verify_failures: AtomicU64,
}

impl ShardCache {
    /// Opens (creating if needed) the shard cache rooted at `dir`.
    /// Sweeps, serve executors, and dist workers pointed at the same
    /// directory share one cache.
    ///
    /// # Errors
    ///
    /// Returns the error text if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<ShardCache, String> {
        Ok(ShardCache {
            store: cas::Store::open(dir, SHARD_CACHE_V1)?,
            root: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            verify_failures: AtomicU64::new(0),
        })
    }

    /// The directory entries live in (the namespaced subdirectory, not
    /// the root passed to [`ShardCache::open`]).
    pub fn dir(&self) -> PathBuf {
        self.store.dir().to_path_buf()
    }

    /// The root directory passed to [`ShardCache::open`] — what a
    /// sibling process should open to share this cache (the
    /// coordinator forwards it to spawned dist workers as
    /// `--cache ROOT`).
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn key(resolved: &ResolvedSweep, index: usize) -> String {
        format!("{:016x}/shard{index}", resolved.fingerprint)
    }

    /// Looks up the blob for shard `index` of `resolved`. Returns the
    /// verified checkpoint-text blob, or `None` (counted as a miss or,
    /// when an entry existed but failed verification, as corrupt) —
    /// the caller recomputes either way.
    pub fn blob_get(&self, resolved: &ResolvedSweep, index: usize) -> Option<String> {
        match self.store.get(&Self::key(resolved, index)) {
            cas::Lookup::Hit(blob) => {
                // Semantic check on top of the store's structural one:
                // the blob must answer for this spec. `parse_blob`
                // validates fingerprint and cell count.
                if dist::parse_blob(resolved, &blob).is_ok() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    TM_HITS.incr();
                    self.bytes_read
                        .fetch_add(blob.len() as u64, Ordering::Relaxed);
                    Some(blob)
                } else {
                    self.corrupt.fetch_add(1, Ordering::Relaxed);
                    TM_CORRUPT.incr();
                    None
                }
            }
            cas::Lookup::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                TM_MISSES.incr();
                None
            }
            cas::Lookup::Corrupt => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                TM_CORRUPT.incr();
                None
            }
        }
    }

    /// Publishes a freshly computed blob for shard `index`. Best
    /// effort: a full disk or permission error costs the entry, not
    /// the sweep.
    pub fn blob_put(&self, resolved: &ResolvedSweep, index: usize, blob: &str) {
        if let Ok(written) = self.store.put(&Self::key(resolved, index), blob) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            TM_STORES.incr();
            self.bytes_written.fetch_add(written, Ordering::Relaxed);
        }
    }

    /// Records a `--cache-verify` byte-mismatch (the caller aborts the
    /// run after calling this).
    pub fn note_verify_failure(&self) {
        self.verify_failures.fetch_add(1, Ordering::Relaxed);
        TM_VERIFY_FAILURES.incr();
    }

    /// LRU eviction pass: shrinks the namespace to at most `max_bytes`
    /// (hits refresh recency). Runs at the end of a sweep, after
    /// publishing.
    pub fn evict_to(&self, max_bytes: u64) -> cas::Eviction {
        let pass = self.store.evict_to(max_bytes);
        self.evictions.fetch_add(pass.evicted, Ordering::Relaxed);
        TM_EVICTIONS.add(pass.evicted);
        pass
    }

    /// Total on-disk bytes of cached blobs.
    pub fn total_bytes(&self) -> u64 {
        self.store.total_bytes()
    }

    /// Snapshot of this instance's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn resolved() -> ResolvedSweep {
        let spec = SweepSpec::parse(
            "name = cache_unit\nseed = 7\ntrials = 2\ntopology = complete:16\ndensity = 0.2\nrounds = 4\nestimator = alg1\n",
        )
        .unwrap();
        spec.resolve(true).unwrap()
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "antdensity_shardcache_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_counts_and_serves_verbatim() {
        let root = scratch("roundtrip");
        let cache = ShardCache::open(&root).unwrap();
        let r = resolved();
        assert_eq!(cache.blob_get(&r, 0), None);
        let blob = dist::shard_blob(&r, 0, true);
        cache.blob_put(&r, 0, &blob);
        assert_eq!(cache.blob_get(&r, 0).as_deref(), Some(blob.as_str()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        assert_eq!(stats.bytes_read, blob.len() as u64);
        assert!(
            stats.bytes_written > blob.len() as u64,
            "entry carries a header"
        );
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn blob_for_another_spec_is_rejected_as_corrupt() {
        let root = scratch("wrongspec");
        let cache = ShardCache::open(&root).unwrap();
        let r = resolved();
        let other = SweepSpec::parse(
            "name = cache_unit_b\nseed = 8\ntrials = 2\ntopology = complete:16\ndensity = 0.2\nrounds = 4\nestimator = alg1\n",
        )
        .unwrap()
        .resolve(true)
        .unwrap();
        // Force a wrong-fingerprint entry under shard 0's key by
        // writing the other spec's blob through the raw store.
        let store = cas::Store::open(&root, SHARD_CACHE_V1).unwrap();
        let key = format!("{:016x}/shard0", r.fingerprint);
        store.put(&key, &dist::shard_blob(&other, 0, true)).unwrap();
        assert_eq!(cache.blob_get(&r, 0), None);
        assert_eq!(cache.stats().corrupt, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
