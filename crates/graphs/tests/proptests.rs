//! Property-based tests for the graph substrate.

use antdensity_graphs::dist::WalkDistribution;
use antdensity_graphs::generators;
use antdensity_graphs::{AdjGraph, Hypercube, NodeId, Ring, Topology, Torus2d, TorusKd};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Checks neighbor symmetry with multiplicity: count of u in N(v) equals
/// count of v in N(u). This is the property that makes the uniform
/// distribution stationary (the paper's Lemma 2 requirement).
fn assert_symmetric<T: Topology>(topo: &T) {
    for v in 0..topo.num_nodes() {
        for u in topo.neighbors(v) {
            let forth = topo.neighbors(v).filter(|&w| w == u).count();
            let back = topo.neighbors(u).filter(|&w| w == v).count();
            assert_eq!(forth, back, "asymmetric multiplicity between {v} and {u}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn torus2d_is_symmetric(side in 1u64..12) {
        assert_symmetric(&Torus2d::new(side));
    }

    #[test]
    fn torus_kd_is_symmetric(dims in 1u32..4, side in 1u64..6) {
        assert_symmetric(&TorusKd::new(dims, side));
    }

    #[test]
    fn ring_is_symmetric(n in 1u64..40) {
        assert_symmetric(&Ring::new(n));
    }

    #[test]
    fn hypercube_is_symmetric(dims in 1u32..8) {
        assert_symmetric(&Hypercube::new(dims));
    }

    #[test]
    fn torus2d_displacement_roundtrip(side in 2u64..16, v in 0u64..256, u in 0u64..256) {
        let t = Torus2d::new(side);
        let a = v % t.num_nodes();
        let b = u % t.num_nodes();
        let (dx, dy) = t.displacement(a, b);
        prop_assert_eq!(t.offset(a, dx, dy), b);
        // displacement components stay in the minimal band
        prop_assert!(dx.abs() <= side as i64 / 2);
        prop_assert!(dy.abs() <= side as i64 / 2);
    }

    #[test]
    fn torus_kd_offset_roundtrip(
        dims in 1u32..4,
        side in 2u64..6,
        v_raw in 0u64..1000,
        dim_raw in 0u32..4,
        delta in -7i64..7,
    ) {
        let t = TorusKd::new(dims, side);
        let v = v_raw % t.num_nodes();
        let dim = dim_raw % dims;
        let u = t.offset(v, dim, delta);
        let back = t.offset(u, dim, -delta);
        prop_assert_eq!(back, v);
    }

    #[test]
    fn random_steps_stay_in_range(side in 1u64..10, seed in any::<u64>()) {
        let t = Torus2d::new(side);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut v = t.uniform_node(&mut rng);
        for _ in 0..50 {
            v = t.random_neighbor(v, &mut rng);
            prop_assert!(v < t.num_nodes());
        }
    }

    #[test]
    fn csr_graph_roundtrips_edges(
        n in 2u64..20,
        edge_bits in prop::collection::vec(any::<bool>(), 0..190),
    ) {
        // build a random subset of possible pairs, always add a spanning path
        // so no node is isolated.
        let mut edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let mut idx = 0usize;
        'outer: for u in 0..n {
            for v in (u + 1)..n {
                if u + 1 == v { continue; } // path edges already there
                if idx >= edge_bits.len() { break 'outer; }
                if edge_bits[idx] {
                    edges.push((u, v));
                }
                idx += 1;
            }
        }
        let g = AdjGraph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.num_edges() as usize, edges.len());
        for &(u, v) in &edges {
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
        }
        // degree sum = 2 |E|
        let degsum: usize = (0..n).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degsum as u64, 2 * g.num_edges());
        assert_symmetric(&g);
    }

    #[test]
    fn csr_rebuild_preserves_every_move(side in 1u64..10, dims in 1u32..7) {
        use antdensity_graphs::CsrGraph;
        // structured topologies (multisets included, e.g. side <= 2)
        let torus = Torus2d::new(side);
        let csr = CsrGraph::from_topology(&torus);
        prop_assert_eq!(csr.num_nodes(), torus.num_nodes());
        for v in 0..torus.num_nodes() {
            prop_assert_eq!(csr.degree(v), torus.degree(v));
            for i in 0..torus.degree(v) {
                prop_assert_eq!(csr.neighbor(v, i), torus.neighbor(v, i));
            }
        }
        assert_symmetric(&csr);
        let cube = Hypercube::new(dims);
        let csr = CsrGraph::from_topology(&cube);
        prop_assert_eq!(csr.regular_degree(), Some(dims as usize));
        assert_symmetric(&csr);
    }

    #[test]
    fn csr_random_neighbor_matches_default_draws(
        side in 1u64..10,
        seed in any::<u64>(),
    ) {
        use antdensity_graphs::CsrGraph;
        use rand::Rng;
        // the CSR zone-hoisted draw is bit-for-bit gen_range(0..d)
        let csr = CsrGraph::from_topology(&Torus2d::new(side));
        let mut fast = SmallRng::seed_from_u64(seed);
        let mut reference = fast.clone();
        let mut v = csr.uniform_node(&mut fast);
        let mut w = reference.gen_range(0..csr.num_nodes());
        prop_assert_eq!(v, w);
        for _ in 0..40 {
            v = csr.random_neighbor(v, &mut fast);
            w = csr.neighbor(w, reference.gen_range(0..csr.degree(w)));
            prop_assert_eq!(v, w);
        }
    }

    #[test]
    fn generated_csr_families_are_walkable(
        cliques in 2u64..8,
        size in 3u64..8,
        gside in 4u64..12,
        frac_pm in 0u32..600,
        seed in any::<u64>(),
    ) {
        use antdensity_graphs::CsrGraph;
        let rc = CsrGraph::from_adj(&generators::ring_of_cliques(cliques, size).unwrap());
        prop_assert_eq!(rc.num_nodes(), cliques * size);
        prop_assert!(rc.is_connected());
        assert_symmetric(&rc);

        let mut rng = SmallRng::seed_from_u64(seed);
        match generators::grid_with_holes(gside, f64::from(frac_pm) / 1000.0, &mut rng) {
            Ok(adj) => {
                let g = CsrGraph::from_adj(&adj);
                prop_assert!(g.is_connected(), "largest component must be connected");
                prop_assert!(g.max_degree() <= 4);
                prop_assert!(g.num_nodes() <= gside * gside);
                assert_symmetric(&g);
            }
            // tiny grids at high hole fractions may leave no usable
            // component — an error, never a bad graph
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.contains("no connected component"));
            }
        }
    }

    #[test]
    fn distribution_mass_conserved(
        side in 1u64..8,
        start_raw in 0u64..64,
        steps in 0u64..30,
    ) {
        let t = Torus2d::new(side);
        let start = start_raw % t.num_nodes();
        let mut d = WalkDistribution::point(&t, start);
        d.evolve(&t, steps);
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!(d.probs().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn distribution_symmetry_around_start(
        side in 3u64..9,
        steps in 0u64..20,
    ) {
        // Walk distribution from (0,0) is symmetric under x -> -x.
        let t = Torus2d::new(side);
        let mut d = WalkDistribution::point(&t, t.node(0, 0));
        d.evolve(&t, steps);
        for v in 0..t.num_nodes() {
            let (x, y) = t.coord(v);
            let mirrored = t.node((side - x) % side, y);
            prop_assert!((d.prob(v) - d.prob(mirrored)).abs() < 1e-12);
        }
    }

    #[test]
    fn recollision_series_bounded_by_max_prob(
        side in 2u64..8,
        steps in 1u64..20,
    ) {
        // sum p^2 <= max p * sum p = max p.
        let t = Torus2d::new(side);
        let start = 0;
        let rec = antdensity_graphs::dist::recollision_series(&t, start, steps);
        let maxp = antdensity_graphs::dist::max_probability_series(&t, start, steps);
        for m in 0..=steps as usize {
            prop_assert!(rec[m] <= maxp[m] + 1e-12);
        }
    }

    #[test]
    fn generated_graphs_are_valid(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(60, 2, &mut rng).unwrap();
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.num_nodes(), 60);
        assert_symmetric(&g);
        let g = generators::random_regular(40, 4, 200, &mut rng).unwrap();
        prop_assert_eq!(g.regular_degree(), Some(4));
        prop_assert!(g.is_connected());
    }

    #[test]
    fn watts_strogatz_edge_count_invariant(
        seed in any::<u64>(),
        beta in 0.0..=1.0f64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 40u64;
        let k = 4usize;
        let g = generators::watts_strogatz(n, k, beta, &mut rng).unwrap();
        prop_assert_eq!(g.num_edges(), n * k as u64 / 2);
    }

    #[test]
    fn apply_moves_matches_neighbor_everywhere(seed in any::<u64>()) {
        // Every branchless batched override must equal the scalar
        // `neighbor` on random positions and random valid move indices
        // (TorusKd exercises the trait's default implementation).
        fn check<T: Topology>(topo: &T, rng: &mut SmallRng) {
            let degree = topo.regular_degree().unwrap() as u32;
            let n = 257; // not a multiple of any internal batch size
            let positions: Vec<u32> = (0..n)
                .map(|_| rng.gen_range(0..topo.num_nodes()) as u32)
                .collect();
            let moves: Vec<u32> = (0..n).map(|_| rng.gen_range(0..degree)).collect();
            let mut batched = positions.clone();
            topo.apply_moves(&mut batched, &moves);
            for j in 0..n as usize {
                assert_eq!(
                    batched[j] as NodeId,
                    topo.neighbor(positions[j] as NodeId, moves[j] as usize),
                    "agent {j} at {} move {}",
                    positions[j],
                    moves[j]
                );
            }
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        check(&Torus2d::new(2), &mut rng);
        check(&Torus2d::new(3), &mut rng);
        check(&Torus2d::new(37), &mut rng);
        check(&Torus2d::new(1024), &mut rng);
        check(&Ring::new(1), &mut rng);
        check(&Ring::new(97), &mut rng);
        check(&Hypercube::new(1), &mut rng);
        check(&Hypercube::new(13), &mut rng);
        check(&TorusKd::new(3, 5), &mut rng);
        check(&antdensity_graphs::CompleteGraph::new(513), &mut rng);
    }
}
