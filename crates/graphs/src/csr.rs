//! [`CsrGraph`]: the engine-facing compressed-sparse-row topology.
//!
//! [`crate::AdjGraph`] already stores general graphs in CSR form, but it
//! is sized for *analysis* (usize offsets, u64 targets, simple-graph
//! validation). `CsrGraph` is the **walk-kernel** citizen:
//!
//! * `u32` offsets and targets — half the memory traffic of `AdjGraph`,
//!   sized exactly to the dense engine's packed-position domain
//!   (`antdensity-engine` caps node ids at `u32`);
//! * per-node precomputed Lemire rejection zones, so the uniform
//!   neighbor draw on *irregular* degrees needs no hardware division on
//!   the hot path (the same multiply-shift idea as [`crate::FastDiv`],
//!   applied to bounded sampling) while consuming **bit-for-bit** the
//!   stream `rng.gen_range(0..degree)` would;
//! * a batched [`Topology::apply_moves`] fast path — one offset load,
//!   one target gather per agent;
//! * the regular degree cached at construction, so the engine's
//!   batched-kernel eligibility check is O(1);
//! * **multiset** neighbor lists, like every structured topology: a
//!   [`CsrGraph::from_topology`] rebuild preserves each node's move list
//!   *in order and with multiplicity*, which makes a CSR rebuild of a
//!   torus/ring/hypercube draw the identical RNG stream as the native
//!   implementation — the equivalence contract the engine's
//!   `csr_equivalence` suite pins.
//!
//! Graphs come from three places: converting an [`crate::AdjGraph`]
//! (any generator in [`crate::generators`]), rebuilding a structured
//! [`Topology`], or an explicit edge list.

use crate::adjacency::{AdjGraph, BuildGraphError};
use crate::fastdiv::lemire_zone;
use crate::topology::{MoveScratch, NodeId, Topology};
use rand::RngCore;

/// Per-tile CSR data footprint the blocked gather aims for: half of a
/// conservative 512 KiB L2, leaving the other half for the streamed
/// position/move/key traffic.
const TILE_FOOTPRINT_BYTES: usize = 256 * 1024;

/// Below this many agents a blocked apply cannot pay for its extra
/// passes; fall through to the plain gather.
const BLOCKED_MIN_AGENTS: usize = 1 << 15;

/// A general undirected graph in compact CSR form, tuned for the walk
/// kernels. Neighbor lists are multisets (duplicate entries model
/// duplicate moves, exactly as [`crate::Torus2d`] on side 2).
///
/// # Example
///
/// ```
/// use antdensity_graphs::{CsrGraph, Topology, Torus2d};
///
/// // A CSR rebuild of a structured topology is move-for-move identical.
/// let torus = Torus2d::new(8);
/// let csr = CsrGraph::from_topology(&torus);
/// assert_eq!(csr.num_nodes(), 64);
/// assert_eq!(csr.regular_degree(), Some(4));
/// for v in 0..64 {
///     for i in 0..4 {
///         assert_eq!(csr.neighbor(v, i), torus.neighbor(v, i));
///     }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for node `v`.
    offsets: Vec<u32>,
    /// Concatenated neighbor (move) lists.
    targets: Vec<u32>,
    /// Per-node Lemire rejection zone for the non-power-of-two degree
    /// draw (unused — zero — at power-of-two-degree nodes).
    zones: Vec<u64>,
    /// `Some(d)` iff every node has degree `d`, cached at construction.
    regular: Option<usize>,
}

impl CsrGraph {
    /// Builds from per-node move lists already in CSR order.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent, any node has no moves, a
    /// target is out of range, or the graph exceeds the `u32` domain.
    fn from_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        assert!(offsets.len() >= 2, "graph must have at least one node");
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            targets.len(),
            "final offset must cover the target array"
        );
        let n = offsets.len() - 1;
        let mut zones = Vec::with_capacity(n);
        let mut regular: Option<usize> = None;
        for v in 0..n {
            let d = (offsets[v + 1] - offsets[v]) as usize;
            assert!(d > 0, "node {v} has no moves (walks would get stuck)");
            regular = match (v, regular) {
                (0, _) => Some(d),
                (_, Some(r)) if r == d => Some(r),
                _ => None,
            };
            zones.push(if (d as u64).is_power_of_two() {
                0
            } else {
                lemire_zone(d as u64)
            });
        }
        for &t in &targets {
            assert!((t as usize) < n, "target {t} out of range for {n} nodes");
        }
        Self {
            offsets,
            targets,
            zones,
            regular,
        }
    }

    /// Converts an [`AdjGraph`] (keeping its sorted neighbor order).
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds the `u32` node/move domain.
    pub fn from_adj(graph: &AdjGraph) -> Self {
        Self::from_topology(graph)
    }

    /// Rebuilds any [`Topology`] as an explicit CSR graph, preserving
    /// each node's move list **in order and with multiplicity** — so
    /// `csr.neighbor(v, i) == topo.neighbor(v, i)` for every valid
    /// `(v, i)`, and a random walk on the rebuild consumes the identical
    /// RNG stream as on the original.
    ///
    /// # Panics
    ///
    /// Panics if the topology has more than `u32::MAX` nodes or moves
    /// (the CSR arrays are `u32`-indexed by design).
    pub fn from_topology<T: Topology>(topo: &T) -> Self {
        let n = topo.num_nodes();
        assert!(n <= u32::MAX as u64, "CSR node ids are u32, got {n} nodes");
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut targets = Vec::new();
        offsets.push(0u32);
        for v in 0..n {
            let d = topo.degree(v);
            for i in 0..d {
                targets.push(topo.neighbor(v, i) as u32);
            }
            assert!(
                targets.len() <= u32::MAX as usize,
                "CSR move arrays are u32-indexed; graph has too many moves"
            );
            offsets.push(targets.len() as u32);
        }
        Self::from_parts(offsets, targets)
    }

    /// Builds a simple graph from an undirected edge list (validated by
    /// [`AdjGraph::from_edges`], then compacted).
    ///
    /// # Errors
    ///
    /// As [`AdjGraph::from_edges`].
    pub fn from_edges(n: u64, edges: &[(NodeId, NodeId)]) -> Result<Self, BuildGraphError> {
        Ok(Self::from_adj(&AdjGraph::from_edges(n, edges)?))
    }

    /// Slice of the moves at `v` — the cache-friendly access the batched
    /// kernels and the spectral matvec iterate.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors_slice(&self, v: NodeId) -> &[u32] {
        let vu = v as usize;
        assert!(vu + 1 < self.offsets.len(), "node {v} out of range");
        &self.targets[self.offsets[vu] as usize..self.offsets[vu + 1] as usize]
    }

    /// Total number of moves `Σ_v deg(v)` (twice the edge count on
    /// simple graphs; duplicate moves counted with multiplicity).
    pub fn num_moves(&self) -> usize {
        self.targets.len()
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .min()
            .expect("graph is non-empty")
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .expect("graph is non-empty")
    }

    /// Average degree `deḡ = Σ deg / |V|`.
    pub fn avg_degree(&self) -> f64 {
        self.targets.len() as f64 / self.num_nodes() as f64
    }

    /// The counting-sort core of [`Topology::apply_moves_blocked`]:
    /// partitions agents into node tiles of `1 << tile_shift` source
    /// nodes, then gathers tile by tile so the offset/target reads of one
    /// tile stay cache-resident. Output is bit-identical to
    /// [`Topology::apply_moves`] — only the gather order changes.
    fn apply_moves_tiled(
        &self,
        positions: &mut [u32],
        moves: &[u32],
        scratch: &mut MoveScratch,
        tile_shift: u32,
    ) {
        assert_eq!(positions.len(), moves.len(), "one move per position");
        assert!(
            positions.len() <= u32::MAX as usize,
            "blocked apply packs agent indices into u32"
        );
        let num_tiles = ((self.num_nodes() as usize - 1) >> tile_shift) + 1;
        scratch.tile_counts.clear();
        scratch.tile_counts.resize(num_tiles, 0);
        for &p in positions.iter() {
            scratch.tile_counts[(p >> tile_shift) as usize] += 1;
        }
        scratch.cursors.clear();
        scratch.cursors.reserve(num_tiles);
        let mut acc = 0u32;
        for &c in &scratch.tile_counts {
            scratch.cursors.push(acc);
            acc += c;
        }
        scratch.keys.clear();
        scratch.keys.resize(positions.len(), 0);
        for (j, &p) in positions.iter().enumerate() {
            let cursor = &mut scratch.cursors[(p >> tile_shift) as usize];
            scratch.keys[*cursor as usize] = ((p as u64) << 32) | j as u64;
            *cursor += 1;
        }
        // Tile-major gather: `keys` is sorted by tile, so the offset and
        // target reads of consecutive iterations share one tile's working
        // set; the `moves[j]` / `positions[j]` accesses are increasing
        // within each tile (the sort is stable), so those streams advance
        // monotonically instead of thrashing.
        for &key in &scratch.keys {
            let p = (key >> 32) as usize;
            let j = key as u32 as usize;
            let start = self.offsets[p];
            debug_assert!(moves[j] < self.offsets[p + 1] - start);
            positions[j] = self.targets[(start + moves[j]) as usize];
        }
    }

    /// Whether the graph is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes() as usize;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0u32);
        let mut count = 1usize;
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors_slice(v as NodeId) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        count == n
    }
}

impl Topology for CsrGraph {
    #[inline]
    fn num_nodes(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        let vu = v as usize;
        assert!(vu + 1 < self.offsets.len(), "node {v} out of range");
        (self.offsets[vu + 1] - self.offsets[vu]) as usize
    }

    #[inline]
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        let ns = self.neighbors_slice(v);
        assert!(i < ns.len(), "move index {i} out of range");
        ns[i] as NodeId
    }

    /// One offset load, one degree draw, one target gather — with the
    /// per-node precomputed rejection zone replacing `gen_range`'s
    /// per-draw `%`. Consumes the RNG **bit-for-bit** as the default
    /// implementation (`rng.gen_range(0..degree)`): power-of-two degrees
    /// take the mask path, others the Lemire multiply-shift loop with
    /// the identical zone value.
    #[inline]
    fn random_neighbor<R: RngCore + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        let vu = v as usize;
        assert!(vu + 1 < self.offsets.len(), "node {v} out of range");
        let start = self.offsets[vu] as usize;
        let d = (self.offsets[vu + 1] as usize - start) as u64;
        debug_assert!(d > 0, "node {v} has no moves");
        let i = if d.is_power_of_two() {
            rng.next_u64() & (d - 1)
        } else {
            let zone = self.zones[vu];
            loop {
                let m = (rng.next_u64() as u128) * (d as u128);
                if (m as u64) <= zone {
                    break (m >> 64) as u64;
                }
            }
        };
        self.targets[start + i as usize] as NodeId
    }

    /// The batched pure-walk fast path on regular CSR graphs: for each
    /// agent, one offset load plus one gather from the target array.
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        assert_eq!(positions.len(), moves.len(), "one move per position");
        for (p, &i) in positions.iter_mut().zip(moves) {
            let start = self.offsets[*p as usize];
            debug_assert!(i < self.offsets[*p as usize + 1] - start);
            *p = self.targets[(start + i) as usize];
        }
    }

    /// Counting-sort tiling of the gather (see
    /// [`Topology::apply_moves_blocked`]): agents are partitioned by
    /// source-node tile sized so one tile's offsets + targets fit in half
    /// an L2, then gathered tile-major. Falls back to the plain gather
    /// when the whole CSR already fits one tile or the agent count is too
    /// small to amortize the partition passes.
    fn apply_moves_blocked(&self, positions: &mut [u32], moves: &[u32], scratch: &mut MoveScratch) {
        let n = self.offsets.len() - 1;
        // Offsets plus the average move list, in bytes per node.
        let per_node = 4 + 4 * (self.targets.len() / n).max(1);
        let nodes_per_tile = ((TILE_FOOTPRINT_BYTES / per_node).max(1) + 1).next_power_of_two() / 2;
        if positions.len() < BLOCKED_MIN_AGENTS || n <= nodes_per_tile {
            self.apply_moves(positions, moves);
            return;
        }
        self.apply_moves_tiled(positions, moves, scratch, nodes_per_tile.trailing_zeros());
    }

    #[inline]
    fn regular_degree(&self) -> Option<usize> {
        self.regular
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{lollipop, random_regular};
    use crate::torus::{Ring, Torus2d};
    use crate::Hypercube;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn from_topology_preserves_move_lists_exactly() {
        let torus = Torus2d::new(5);
        let csr = CsrGraph::from_topology(&torus);
        assert_eq!(csr.num_nodes(), 25);
        assert_eq!(csr.regular_degree(), Some(4));
        assert_eq!(csr.num_moves(), 100);
        for v in 0..25 {
            assert_eq!(csr.degree(v), torus.degree(v));
            for i in 0..4 {
                assert_eq!(csr.neighbor(v, i), torus.neighbor(v, i), "({v},{i})");
            }
        }
    }

    #[test]
    fn from_topology_keeps_multiset_duplicates() {
        // side-2 torus: +1 and -1 moves coincide, listed twice
        let torus = Torus2d::new(2);
        let csr = CsrGraph::from_topology(&torus);
        assert_eq!(csr.regular_degree(), Some(4));
        let moves: Vec<NodeId> = csr
            .neighbors_slice(0)
            .iter()
            .map(|&t| t as NodeId)
            .collect();
        let native: Vec<NodeId> = torus.neighbors(0).collect();
        assert_eq!(moves, native);
    }

    #[test]
    fn random_neighbor_draws_identical_bits_to_default() {
        // CSR's zone-hoisted draw must equal gen_range(0..d) bit-for-bit
        // on power-of-two (4), tiny (2), and awkward (3, 5, 7) degrees.
        let graphs = [
            CsrGraph::from_topology(&Torus2d::new(6)),   // degree 4
            CsrGraph::from_topology(&Ring::new(9)),      // degree 2
            CsrGraph::from_topology(&Hypercube::new(5)), // degree 5
            CsrGraph::from_adj(&lollipop(8, 3)),         // degrees 1..=8
            CsrGraph::from_topology(&Hypercube::new(3)), // degree 3
        ];
        for g in &graphs {
            for seed in 0..10u64 {
                for v in 0..g.num_nodes() {
                    let mut fast = SmallRng::seed_from_u64(seed ^ (v << 7));
                    let mut reference = fast.clone();
                    let got = g.random_neighbor(v, &mut fast);
                    let want = g.neighbor(v, reference.gen_range(0..g.degree(v)));
                    assert_eq!(got, want, "node {v} seed {seed}");
                    // residual state identical: the next raw draw agrees
                    assert_eq!(fast.next_u64(), reference.next_u64());
                }
            }
        }
    }

    #[test]
    fn apply_moves_matches_neighbor_lookup() {
        let g = CsrGraph::from_topology(&Hypercube::new(4));
        let mut rng = SmallRng::seed_from_u64(3);
        let mut positions: Vec<u32> = (0..200).map(|_| rng.gen_range(0..16u64) as u32).collect();
        let moves: Vec<u32> = (0..200).map(|_| rng.gen_range(0..4u64) as u32).collect();
        let expect: Vec<u32> = positions
            .iter()
            .zip(&moves)
            .map(|(&p, &m)| g.neighbor(p as NodeId, m as usize) as u32)
            .collect();
        g.apply_moves(&mut positions, &moves);
        assert_eq!(positions, expect);
    }

    #[test]
    fn tiled_apply_is_bit_identical_to_plain() {
        // Force tiny tiles so the counting-sort path runs on a small
        // graph — regular (torus) and irregular (lollipop) degrees, with
        // ragged tile counts (25 nodes, 8-node tiles).
        let graphs = [
            CsrGraph::from_topology(&Torus2d::new(5)),
            CsrGraph::from_adj(&lollipop(20, 5)),
        ];
        for g in &graphs {
            let n = g.num_nodes();
            for seed in 0..5u64 {
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut plain: Vec<u32> = (0..5000).map(|_| rng.gen_range(0..n) as u32).collect();
                let moves: Vec<u32> = plain
                    .iter()
                    .map(|&p| rng.gen_range(0..g.degree(p as NodeId) as u64) as u32)
                    .collect();
                let mut tiled = plain.clone();
                g.apply_moves(&mut plain, &moves);
                let mut scratch = MoveScratch::new();
                for shift in [0u32, 3] {
                    let mut t = tiled.clone();
                    g.apply_moves_tiled(&mut t, &moves, &mut scratch, shift);
                    assert_eq!(t, plain, "shift {shift} seed {seed}");
                }
                g.apply_moves_tiled(&mut tiled, &moves, &mut scratch, 3);
                assert_eq!(tiled, plain);
            }
        }
    }

    #[test]
    fn blocked_apply_entry_point_matches_plain() {
        // The public entry point (auto tile sizing, which on this small
        // graph falls back to the plain gather) and a forced-tile run
        // agree with apply_moves.
        let g = CsrGraph::from_topology(&Hypercube::new(6));
        let mut rng = SmallRng::seed_from_u64(9);
        let mut plain: Vec<u32> = (0..3000).map(|_| rng.gen_range(0..64u64) as u32).collect();
        let moves: Vec<u32> = (0..3000).map(|_| rng.gen_range(0..6u64) as u32).collect();
        let mut blocked = plain.clone();
        g.apply_moves(&mut plain, &moves);
        g.apply_moves_blocked(&mut blocked, &moves, &mut MoveScratch::new());
        assert_eq!(blocked, plain);
    }

    #[test]
    fn from_edges_and_structure_queries() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_moves(), 10);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.5).abs() < 1e-12);
        assert!(g.is_connected());
        assert_eq!(g.regular_degree(), None);
        assert_eq!(g.neighbors_slice(0), &[1, 2, 3]);
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn from_edges_propagates_validation() {
        assert!(CsrGraph::from_edges(3, &[(0, 1)]).is_err()); // isolated node
        assert!(CsrGraph::from_edges(2, &[(0, 0)]).is_err()); // self loop
    }

    #[test]
    fn random_regular_conversion_keeps_regularity() {
        let mut rng = SmallRng::seed_from_u64(7);
        let adj = random_regular(60, 6, 200, &mut rng).unwrap();
        let csr = CsrGraph::from_adj(&adj);
        assert_eq!(csr.regular_degree(), Some(6));
        assert!(csr.is_connected());
        for v in 0..60 {
            assert_eq!(
                csr.neighbors_slice(v),
                adj.neighbors_slice(v)
                    .iter()
                    .map(|&u| u as u32)
                    .collect::<Vec<_>>()
                    .as_slice()
            );
        }
    }

    #[test]
    #[should_panic(expected = "no moves")]
    fn zero_degree_node_rejected() {
        let _ = CsrGraph::from_parts(vec![0, 0, 1], vec![0]);
    }
}
