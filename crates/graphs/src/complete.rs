//! The complete graph with self-loops: the paper's idealised baseline.
//!
//! Section 1.1: "Consider agents positioned not on the grid, but on a
//! complete graph. In each round, each agent steps to a uniformly random
//! position" — i.e. the next position is uniform over *all* A nodes,
//! including the current one. We model this as a degree-A multigraph whose
//! move list at every vertex is `[0, 1, …, A−1]`, so one walk step is an
//! independent uniform sample and encounter-rate estimation reduces to
//! i.i.d. Bernoulli(d) sampling (the Chernoff baseline every other
//! topology is compared against).

use crate::topology::{NodeId, Topology};

/// Complete graph on `A` nodes where each step resamples the position
/// uniformly (self-loop included at every vertex).
///
/// # Example
///
/// ```
/// use antdensity_graphs::{CompleteGraph, Topology};
///
/// let g = CompleteGraph::new(10);
/// assert_eq!(g.degree(3), 10);
/// assert_eq!(g.neighbor(3, 3), 3); // self-loop: uniform resampling
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompleteGraph {
    nodes: u64,
}

impl CompleteGraph {
    /// Creates the complete graph on `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `nodes` exceeds `usize::MAX` (degrees are
    /// `usize`).
    pub fn new(nodes: u64) -> Self {
        assert!(nodes > 0, "complete graph needs at least one node");
        assert!(
            usize::try_from(nodes).is_ok(),
            "node count must fit in usize (degrees are usize)"
        );
        Self { nodes }
    }
}

impl Topology for CompleteGraph {
    #[inline]
    fn num_nodes(&self) -> u64 {
        self.nodes
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        assert!(v < self.nodes, "node {v} out of range");
        self.nodes as usize
    }

    #[inline]
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        assert!(v < self.nodes, "node {v} out of range");
        assert!((i as u64) < self.nodes, "move index {i} out of range");
        i as NodeId
    }

    /// Stepping is uniform resampling, so walking never needs the O(A)
    /// move list: override with a direct uniform draw. Consumes the same
    /// RNG bits as the default (`span = degree = A` either way), so
    /// generic kernels that go through `degree`/`neighbor` are
    /// bit-identical to this override.
    fn random_neighbor<R: rand::RngCore + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        assert!(v < self.nodes, "node {v} out of range");
        self.uniform_node(rng)
    }

    /// Batched stepping is a copy: move index `i` *is* the destination.
    #[inline]
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        assert_eq!(positions.len(), moves.len(), "one move per position");
        debug_assert!(
            moves.iter().all(|&i| (i as u64) < self.nodes),
            "move index out of range"
        );
        positions.copy_from_slice(moves);
    }

    fn regular_degree(&self) -> Option<usize> {
        Some(self.nodes as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_node_is_a_move() {
        let g = CompleteGraph::new(5);
        let moves: Vec<NodeId> = g.neighbors(2).collect();
        assert_eq!(moves, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_step_is_uniform() {
        let g = CompleteGraph::new(4);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[g.random_neighbor(1, &mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "counts {counts:?}");
        }
    }

    #[test]
    fn single_node_graph() {
        let g = CompleteGraph::new(1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.neighbor(0, 0), 0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(g.random_neighbor(0, &mut rng), 0);
    }

    #[test]
    fn regular_degree_is_a() {
        assert_eq!(CompleteGraph::new(17).regular_degree(), Some(17));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_graph_panics() {
        let _ = CompleteGraph::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let _ = CompleteGraph::new(3).degree(3);
    }
}
