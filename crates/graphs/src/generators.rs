//! Random and deterministic graph generators.
//!
//! The network-size experiments (Section 5.1) need graph families spanning
//! the fast/slow mixing spectrum the paper contrasts:
//!
//! * [`random_regular`] — regular expanders w.h.p. (Section 4.4's setting),
//! * [`barabasi_albert`] — preferential attachment, the paper's suggested
//!   "popular graph model … with power-law degree distributions" (§5.1.5),
//! * [`watts_strogatz`] — small-world graphs with tunable mixing,
//! * [`erdos_renyi`] — the classical baseline,
//! * plus deterministic small graphs ([`path_graph`], [`cycle_graph`],
//!   [`star_graph`], [`complete_adj`], [`lollipop`]) for exact tests.

use crate::adjacency::{AdjGraph, BuildGraphError};
use crate::topology::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Errors from the random generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// Parameters are structurally impossible (message explains why).
    BadParameters(
        /// Human-readable reason.
        String,
    ),
    /// The sampler failed to produce a valid (simple/connected) graph
    /// within its retry budget.
    RetriesExhausted {
        /// Number of attempts made.
        attempts: u32,
    },
    /// The sampled edge set failed graph validation.
    Build(
        /// Underlying build error.
        BuildGraphError,
    ),
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadParameters(msg) => write!(f, "bad generator parameters: {msg}"),
            Self::RetriesExhausted { attempts } => {
                write!(f, "generator failed after {attempts} attempts")
            }
            Self::Build(e) => write!(f, "generated edge set invalid: {e}"),
        }
    }
}

impl std::error::Error for GenerateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildGraphError> for GenerateError {
    fn from(e: BuildGraphError) -> Self {
        Self::Build(e)
    }
}

/// Erdős–Rényi `G(n, p)` via geometric edge skipping (O(n + |E|)).
///
/// The sample may be disconnected or contain isolated nodes, in which case
/// graph validation fails; use [`erdos_renyi_connected`] to retry until
/// connected.
///
/// # Errors
///
/// Returns [`GenerateError::BadParameters`] if `n < 2` or `p ∉ (0, 1]`,
/// or [`GenerateError::Build`] if the sample has an isolated node.
pub fn erdos_renyi<R: Rng + ?Sized>(
    n: u64,
    p: f64,
    rng: &mut R,
) -> Result<AdjGraph, GenerateError> {
    if n < 2 {
        return Err(GenerateError::BadParameters(
            "G(n,p) needs n >= 2".to_string(),
        ));
    }
    if !(p > 0.0 && p <= 1.0) {
        return Err(GenerateError::BadParameters(format!(
            "edge probability {p} outside (0,1]"
        )));
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                edges.push((u, v));
            }
        }
        return Ok(AdjGraph::from_edges(n, &edges)?);
    }
    // Iterate over pair index space with geometric skips.
    let total_pairs = n * (n - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        // skip ~ Geometric(p): floor(ln(U)/ln(1-p))
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total_pairs {
            break;
        }
        edges.push(pair_from_index(idx, n));
        idx += 1;
        if idx >= total_pairs {
            break;
        }
    }
    Ok(AdjGraph::from_edges(n, &edges)?)
}

/// Maps a linear index over `{(u,v): u<v}` to the pair, ordering pairs by
/// `u` then `v`.
fn pair_from_index(idx: u64, n: u64) -> (NodeId, NodeId) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... derive by scanning:
    // row u has (n-1-u) pairs.
    let mut u = 0u64;
    let mut remaining = idx;
    loop {
        let row = n - 1 - u;
        if remaining < row {
            return (u, u + 1 + remaining);
        }
        remaining -= row;
        u += 1;
    }
}

/// Erdős–Rényi retried until the sample is connected.
///
/// # Errors
///
/// [`GenerateError::BadParameters`] as for [`erdos_renyi`];
/// [`GenerateError::RetriesExhausted`] after `max_attempts` disconnected
/// samples (choose `p ≳ ln n / n` to make success likely).
pub fn erdos_renyi_connected<R: Rng + ?Sized>(
    n: u64,
    p: f64,
    max_attempts: u32,
    rng: &mut R,
) -> Result<AdjGraph, GenerateError> {
    for _ in 0..max_attempts {
        match erdos_renyi(n, p, rng) {
            Ok(g) if g.is_connected() => return Ok(g),
            Ok(_) | Err(GenerateError::Build(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(GenerateError::RetriesExhausted {
        attempts: max_attempts,
    })
}

/// Random `d`-regular simple graph via the Steger–Wormald incremental
/// pairing model: repeatedly match two random remaining stubs, rejecting
/// pairs that would create a self-loop or parallel edge, restarting the
/// attempt if the construction stalls.
///
/// This succeeds quickly for any `d = O(n^{1/3})` (whole-pairing rejection
/// would need `e^{Θ(d²)}` attempts). Such graphs are expanders with high
/// probability — the paper's Section 4.4 setting.
///
/// # Errors
///
/// [`GenerateError::BadParameters`] if `n·d` is odd, `d == 0`, or
/// `d ≥ n`; [`GenerateError::RetriesExhausted`] if no simple connected
/// pairing was found in `max_attempts` restarts.
pub fn random_regular<R: Rng + ?Sized>(
    n: u64,
    d: usize,
    max_attempts: u32,
    rng: &mut R,
) -> Result<AdjGraph, GenerateError> {
    if d == 0 {
        return Err(GenerateError::BadParameters(
            "degree must be positive".to_string(),
        ));
    }
    if d as u64 >= n {
        return Err(GenerateError::BadParameters(format!(
            "degree {d} must be below node count {n}"
        )));
    }
    if !(n * d as u64).is_multiple_of(2) {
        return Err(GenerateError::BadParameters(format!(
            "n*d = {} must be even",
            n * d as u64
        )));
    }
    let stubs_total = (n as usize) * d;
    use std::collections::HashSet;
    'attempt: for _ in 0..max_attempts {
        let mut stubs: Vec<NodeId> = Vec::with_capacity(stubs_total);
        for v in 0..n {
            for _ in 0..d {
                stubs.push(v);
            }
        }
        stubs.shuffle(rng);
        let mut edge_set: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(stubs_total / 2);
        let mut stall = 0usize;
        while !stubs.is_empty() {
            let i = rng.gen_range(0..stubs.len());
            let j = rng.gen_range(0..stubs.len());
            if i == j {
                continue;
            }
            let (u, v) = (stubs[i], stubs[j]);
            let key = (u.min(v), u.max(v));
            if u == v || edge_set.contains(&key) {
                stall += 1;
                // When few stubs remain every pair may be invalid; restart.
                if stall > 100 + stubs.len() * stubs.len() {
                    continue 'attempt;
                }
                continue;
            }
            stall = 0;
            edge_set.insert(key);
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            stubs.swap_remove(hi);
            stubs.swap_remove(lo);
        }
        let mut edges: Vec<(NodeId, NodeId)> = edge_set.into_iter().collect();
        edges.sort_unstable();
        let g = AdjGraph::from_edges(n, &edges)?;
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(GenerateError::RetriesExhausted {
        attempts: max_attempts,
    })
}

/// Barabási–Albert preferential attachment: starts from a complete graph
/// on `m+1` seed nodes; each subsequent node attaches to `m` distinct
/// existing nodes chosen with probability proportional to degree.
///
/// Produces the power-law degree distributions Section 5.1.5 asks about.
///
/// # Errors
///
/// [`GenerateError::BadParameters`] if `m == 0` or `n ≤ m`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: u64,
    m: usize,
    rng: &mut R,
) -> Result<AdjGraph, GenerateError> {
    if m == 0 {
        return Err(GenerateError::BadParameters(
            "attachment count m must be positive".to_string(),
        ));
    }
    if n <= m as u64 {
        return Err(GenerateError::BadParameters(format!(
            "need n > m (= {m}), got n = {n}"
        )));
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    // repeated-node list: node v appears deg(v) times — sampling an
    // element uniformly is degree-proportional sampling.
    let mut chances: Vec<NodeId> = Vec::new();
    let seed = (m + 1) as u64;
    for u in 0..seed {
        for v in (u + 1)..seed {
            edges.push((u, v));
            chances.push(u);
            chances.push(v);
        }
    }
    let mut picked: Vec<NodeId> = Vec::with_capacity(m);
    for new in seed..n {
        picked.clear();
        while picked.len() < m {
            let &cand = chances.choose(rng).expect("chance list non-empty");
            if !picked.contains(&cand) {
                picked.push(cand);
            }
        }
        for &p in &picked {
            edges.push((p, new));
            chances.push(p);
            chances.push(new);
        }
    }
    Ok(AdjGraph::from_edges(n, &edges)?)
}

/// Watts–Strogatz small world: ring lattice where each node connects to
/// its `k/2` nearest neighbors per side, then each edge is rewired with
/// probability `beta` (avoiding self-loops and duplicates).
///
/// `beta = 0` is the slow-mixing circulant lattice; `beta → 1` approaches
/// a random graph — a convenient dial for the paper's fast-vs-slow mixing
/// comparisons.
///
/// # Errors
///
/// [`GenerateError::BadParameters`] if `k` is odd, zero, or `≥ n`, or
/// `beta ∉ [0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: u64,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<AdjGraph, GenerateError> {
    if k == 0 || !k.is_multiple_of(2) {
        return Err(GenerateError::BadParameters(format!(
            "lattice degree k = {k} must be positive and even"
        )));
    }
    if k as u64 >= n {
        return Err(GenerateError::BadParameters(format!(
            "lattice degree {k} must be below node count {n}"
        )));
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GenerateError::BadParameters(format!(
            "rewiring probability {beta} outside [0,1]"
        )));
    }
    use std::collections::HashSet;
    let norm = |u: NodeId, v: NodeId| (u.min(v), u.max(v));
    let mut edge_set: HashSet<(NodeId, NodeId)> = HashSet::new();
    // Each lattice edge has an owner: the node it emanates from. The
    // classic Watts–Strogatz rewiring keeps the owner endpoint and only
    // redirects the far endpoint, so every node retains its k/2 owned
    // edges and can never be isolated.
    let mut owned: Vec<(NodeId, NodeId)> = Vec::with_capacity((n as usize) * k / 2);
    for v in 0..n {
        for j in 1..=(k / 2) as u64 {
            let u = (v + j) % n;
            owned.push((v, u));
            edge_set.insert(norm(v, u));
        }
    }
    for (owner, other) in owned {
        if rng.gen_bool(beta) {
            edge_set.remove(&norm(owner, other));
            let mut attempts = 0;
            loop {
                let w = rng.gen_range(0..n);
                if w != owner && !edge_set.contains(&norm(owner, w)) {
                    edge_set.insert(norm(owner, w));
                    break;
                }
                attempts += 1;
                if attempts > 100 {
                    // dense corner case: give the edge back
                    edge_set.insert(norm(owner, other));
                    break;
                }
            }
        }
    }
    let mut edges: Vec<(NodeId, NodeId)> = edge_set.into_iter().collect();
    edges.sort_unstable();
    Ok(AdjGraph::from_edges(n, &edges)?)
}

/// Barry-style irregular region: a non-wrapping `side × side` grid
/// lattice (4-neighborhood) with each cell independently removed with
/// probability `hole_frac`, reduced to its **largest connected
/// component** and renumbered densely in row-major order of the
/// surviving cells. The result has jagged boundaries, interior holes,
/// and degrees between 1 and 4 — exactly the "regions with holes"
/// setting of the lattice-based density-estimation literature, and a
/// dial (`hole_frac`) for how badly mixing degrades.
///
/// Deterministic given the RNG state; the caller owns the seed.
///
/// # Errors
///
/// [`GenerateError::BadParameters`] if `side < 2`, if
/// `hole_frac ∉ [0, 0.9]`, or if the drawn mask left no connected
/// component of at least two cells (only plausible at extreme hole
/// fractions on tiny grids; no retry can fix it for a fixed mask
/// stream, so it is reported as a parameter problem, not a sampling
/// one).
pub fn grid_with_holes<R: Rng + ?Sized>(
    side: u64,
    hole_frac: f64,
    rng: &mut R,
) -> Result<AdjGraph, GenerateError> {
    if side < 2 {
        return Err(GenerateError::BadParameters(format!(
            "grid side {side} must be at least 2"
        )));
    }
    if !(0.0..=0.9).contains(&hole_frac) {
        return Err(GenerateError::BadParameters(format!(
            "hole fraction {hole_frac} outside [0, 0.9]"
        )));
    }
    let cells = (side * side) as usize;
    // One mask draw per cell in row-major order: the whole geometry is a
    // pure function of (side, hole_frac, rng stream).
    let open: Vec<bool> = (0..cells).map(|_| !rng.gen_bool(hole_frac)).collect();
    // Largest connected component over open cells (4-neighborhood).
    let mut component = vec![u32::MAX; cells];
    let mut best: (usize, u32) = (0, u32::MAX); // (size, id)
    let mut next_id = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..cells {
        if !open[start] || component[start] != u32::MAX {
            continue;
        }
        let id = next_id;
        next_id += 1;
        component[start] = id;
        queue.push_back(start);
        let mut size = 0usize;
        while let Some(c) = queue.pop_front() {
            size += 1;
            let (x, y) = (c as u64 % side, c as u64 / side);
            for (nx, ny) in grid_neighbors(x, y, side) {
                let nc = (ny * side + nx) as usize;
                if open[nc] && component[nc] == u32::MAX {
                    component[nc] = id;
                    queue.push_back(nc);
                }
            }
        }
        if size > best.0 {
            best = (size, id);
        }
    }
    if best.0 < 2 {
        return Err(GenerateError::BadParameters(format!(
            "hole mask left no connected component of at least two cells \
(side {side}, hole fraction {hole_frac})"
        )));
    }
    // Dense renumbering in row-major order of surviving cells.
    let mut dense = vec![u64::MAX; cells];
    let mut n = 0u64;
    for (c, slot) in dense.iter_mut().enumerate() {
        if component[c] == best.1 {
            *slot = n;
            n += 1;
        }
    }
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for c in 0..cells {
        if dense[c] == u64::MAX {
            continue;
        }
        let (x, y) = (c as u64 % side, c as u64 / side);
        // right and down only: each undirected edge emitted once
        for (nx, ny) in [(x + 1, y), (x, y + 1)] {
            if nx < side && ny < side {
                let nc = (ny * side + nx) as usize;
                if dense[nc] != u64::MAX {
                    edges.push((dense[c], dense[nc]));
                }
            }
        }
    }
    Ok(AdjGraph::from_edges(n, &edges)?)
}

/// The in-bounds 4-neighbors of `(x, y)` on a non-wrapping grid.
fn grid_neighbors(x: u64, y: u64, side: u64) -> impl Iterator<Item = (u64, u64)> {
    [
        (x.wrapping_sub(1), y),
        (x + 1, y),
        (x, y.wrapping_sub(1)),
        (x, y + 1),
    ]
    .into_iter()
    .filter(move |&(a, b)| a < side && b < side)
}

/// Ring of cliques: `cliques` copies of `K_{clique_size}` arranged in a
/// cycle, consecutive cliques joined by a single bridge edge (clique
/// `i`'s node 0 to clique `i+1`'s node 1). The classic
/// bottleneck/slow-mixing family — dense local neighborhoods, global
/// conductance `Θ(1/(cliques · clique_size²))` — complementing the
/// expander end of the spectrum. Deterministic.
///
/// # Errors
///
/// [`GenerateError::BadParameters`] if `cliques < 2` or
/// `clique_size < 3` (bridge endpoints must be distinct and each clique
/// must survive losing a bridge node).
pub fn ring_of_cliques(cliques: u64, clique_size: u64) -> Result<AdjGraph, GenerateError> {
    if cliques < 2 {
        return Err(GenerateError::BadParameters(format!(
            "need at least 2 cliques, got {cliques}"
        )));
    }
    if clique_size < 3 {
        return Err(GenerateError::BadParameters(format!(
            "clique size {clique_size} must be at least 3"
        )));
    }
    let n = cliques
        .checked_mul(clique_size)
        .ok_or_else(|| GenerateError::BadParameters("node count overflows u64".to_string()))?;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for c in 0..cliques {
        let base = c * clique_size;
        for u in 0..clique_size {
            for v in (u + 1)..clique_size {
                edges.push((base + u, base + v));
            }
        }
        let next = ((c + 1) % cliques) * clique_size;
        edges.push((base, next + 1));
    }
    Ok(AdjGraph::from_edges(n, &edges)?)
}

/// Path graph `0 − 1 − … − (n−1)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn path_graph(n: u64) -> AdjGraph {
    assert!(n >= 2, "path needs at least two nodes");
    let edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
    AdjGraph::from_edges(n, &edges).expect("path edges are valid")
}

/// Cycle graph on `n` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle_graph(n: u64) -> AdjGraph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1)).collect();
    edges.push((n - 1, 0));
    AdjGraph::from_edges(n, &edges).expect("cycle edges are valid")
}

/// Star graph: node 0 joined to all others.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star_graph(n: u64) -> AdjGraph {
    assert!(n >= 2, "star needs at least two nodes");
    let edges: Vec<_> = (1..n).map(|v| (0, v)).collect();
    AdjGraph::from_edges(n, &edges).expect("star edges are valid")
}

/// Complete simple graph as an [`AdjGraph`] (no self-loops; contrast with
/// [`crate::CompleteGraph`], which models uniform re-sampling).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete_adj(n: u64) -> AdjGraph {
    assert!(n >= 2, "complete graph needs at least two nodes");
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    AdjGraph::from_edges(n, &edges).expect("complete edges are valid")
}

/// Lollipop graph: a clique on `clique` nodes with a path of `tail` extra
/// nodes hanging off node 0 — the classic slow-mixing example, useful for
/// stress-testing burn-in.
///
/// # Panics
///
/// Panics if `clique < 3` or `tail == 0`.
pub fn lollipop(clique: u64, tail: u64) -> AdjGraph {
    assert!(clique >= 3, "lollipop clique needs at least three nodes");
    assert!(tail >= 1, "lollipop needs a tail");
    let n = clique + tail;
    let mut edges = Vec::new();
    for u in 0..clique {
        for v in (u + 1)..clique {
            edges.push((u, v));
        }
    }
    edges.push((0, clique));
    for i in 0..tail - 1 {
        edges.push((clique + i, clique + i + 1));
    }
    AdjGraph::from_edges(n, &edges).expect("lollipop edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 500u64;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.num_edges() as f64;
        // 5 sigma band for Binomial(124750, 0.05)
        let sigma = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sigma,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = erdos_renyi(6, 1.0, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn erdos_renyi_connected_retries() {
        let mut rng = SmallRng::seed_from_u64(3);
        // p well above the ln n / n threshold
        let g = erdos_renyi_connected(200, 0.05, 50, &mut rng).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn pair_from_index_enumerates_all_pairs() {
        let n = 7u64;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..total {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), total as usize);
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = random_regular(100, 4, 500, &mut rng).unwrap();
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn random_regular_rejects_odd_total() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(matches!(
            random_regular(5, 3, 10, &mut rng),
            Err(GenerateError::BadParameters(_))
        ));
    }

    #[test]
    fn random_regular_degree_too_large() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(matches!(
            random_regular(4, 4, 10, &mut rng),
            Err(GenerateError::BadParameters(_))
        ));
    }

    #[test]
    fn barabasi_albert_structure() {
        let mut rng = SmallRng::seed_from_u64(6);
        let n = 300u64;
        let m = 3usize;
        let g = barabasi_albert(n, m, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), n);
        // |E| = C(m+1, 2) + (n - m - 1) * m
        let expected_edges = (m * (m + 1) / 2) as u64 + (n - m as u64 - 1) * m as u64;
        assert_eq!(g.num_edges(), expected_edges);
        assert!(g.is_connected());
        assert!(g.min_degree() >= m);
        // preferential attachment should create a hub noticeably above m
        assert!(g.max_degree() > 3 * m);
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = watts_strogatz(20, 4, 0.0, &mut rng).unwrap();
        assert_eq!(g.regular_degree(), Some(4));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 19));
        assert!(g.has_edge(0, 18));
    }

    #[test]
    fn watts_strogatz_keeps_edge_count() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 100u64;
        let k = 6;
        let g = watts_strogatz(n, k, 0.3, &mut rng).unwrap();
        assert_eq!(g.num_edges(), n * (k as u64) / 2);
    }

    #[test]
    fn watts_strogatz_rejects_odd_k() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(matches!(
            watts_strogatz(10, 3, 0.5, &mut rng),
            Err(GenerateError::BadParameters(_))
        ));
    }

    #[test]
    fn deterministic_small_graphs() {
        let p = path_graph(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);

        let c = cycle_graph(5);
        assert_eq!(c.regular_degree(), Some(2));
        assert!(!c.is_bipartite());

        let s = star_graph(6);
        assert_eq!(s.degree(0), 5);
        assert_eq!(s.degree(3), 1);
        assert!(s.is_bipartite());

        let k = complete_adj(5);
        assert_eq!(k.num_edges(), 10);
        assert_eq!(k.regular_degree(), Some(4));

        let l = lollipop(4, 3);
        assert_eq!(l.num_nodes(), 7);
        assert_eq!(l.num_edges(), 6 + 3);
        assert!(l.is_connected());
        assert_eq!(l.degree(6), 1); // tail end
    }

    #[test]
    fn grid_with_holes_zero_fraction_is_full_grid() {
        let mut rng = SmallRng::seed_from_u64(10);
        let g = grid_with_holes(5, 0.0, &mut rng).unwrap();
        assert_eq!(g.num_nodes(), 25);
        // interior degree 4, corner degree 2
        assert_eq!(g.degree(12), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.num_edges(), 2 * 5 * 4); // 2 * side * (side-1)
        assert!(g.is_connected());
    }

    #[test]
    fn grid_with_holes_carves_connected_irregular_region() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = grid_with_holes(16, 0.3, &mut rng).unwrap();
        assert!(g.num_nodes() < 256, "holes must remove cells");
        assert!(g.num_nodes() > 64, "the giant component should dominate");
        assert!(g.is_connected(), "must reduce to one component");
        assert!(g.max_degree() <= 4);
        assert_eq!(g.regular_degree(), None, "holes make the region irregular");
    }

    #[test]
    fn grid_with_holes_is_seed_deterministic() {
        let a = grid_with_holes(12, 0.25, &mut SmallRng::seed_from_u64(5)).unwrap();
        let b = grid_with_holes(12, 0.25, &mut SmallRng::seed_from_u64(5)).unwrap();
        assert_eq!(a, b);
        let c = grid_with_holes(12, 0.25, &mut SmallRng::seed_from_u64(6)).unwrap();
        assert_ne!(a, c, "different mask seeds give different regions");
    }

    #[test]
    fn grid_with_holes_rejects_bad_parameters() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            grid_with_holes(1, 0.1, &mut rng),
            Err(GenerateError::BadParameters(_))
        ));
        assert!(matches!(
            grid_with_holes(8, 0.95, &mut rng),
            Err(GenerateError::BadParameters(_))
        ));
    }

    #[test]
    fn ring_of_cliques_structure() {
        let g = ring_of_cliques(4, 5).unwrap();
        assert_eq!(g.num_nodes(), 20);
        // 4 * C(5,2) clique edges + 4 bridges
        assert_eq!(g.num_edges(), 4 * 10 + 4);
        assert!(g.is_connected());
        assert!(!g.is_bipartite(), "cliques contain triangles");
        // bridge endpoints have degree clique_size, others clique_size-1
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.degree(2), 4);
        assert_eq!(g.regular_degree(), None);
        // two cliques still build (distinct bridge edges)
        assert!(ring_of_cliques(2, 3).unwrap().is_connected());
    }

    #[test]
    fn ring_of_cliques_rejects_degenerate() {
        assert!(matches!(
            ring_of_cliques(1, 5),
            Err(GenerateError::BadParameters(_))
        ));
        assert!(matches!(
            ring_of_cliques(3, 2),
            Err(GenerateError::BadParameters(_))
        ));
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let g1 = barabasi_albert(50, 2, &mut SmallRng::seed_from_u64(42)).unwrap();
        let g2 = barabasi_albert(50, 2, &mut SmallRng::seed_from_u64(42)).unwrap();
        assert_eq!(g1, g2);
        let g3 = random_regular(50, 4, 100, &mut SmallRng::seed_from_u64(9)).unwrap();
        let g4 = random_regular(50, 4, 100, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(g3, g4);
    }

    #[test]
    fn error_display_formats() {
        let e = GenerateError::RetriesExhausted { attempts: 3 };
        assert!(e.to_string().contains("3 attempts"));
        let e = GenerateError::BadParameters("because".into());
        assert!(e.to_string().contains("because"));
    }
}
