//! The k-dimensional hypercube (Section 4.5 of the paper).
//!
//! Vertices are the bit strings {0,1}^k (A = 2^k nodes); each walk step
//! flips one uniformly chosen bit. The paper proves (Lemma 25) that the
//! re-collision probability decays like `(9/10)^{m−1} + 1/√A`: local
//! mixing *improves* with size even though the global mixing time grows.

use crate::topology::{NodeId, Topology};

/// The hypercube on `{0,1}^dims` with bit-flip moves.
///
/// # Example
///
/// ```
/// use antdensity_graphs::{Hypercube, Topology};
///
/// let h = Hypercube::new(4); // 16 nodes, degree 4
/// assert_eq!(h.num_nodes(), 16);
/// assert_eq!(h.neighbor(0b0101, 1), 0b0111);
/// assert_eq!(h.hamming_distance(0b0000, 0b1011), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hypercube {
    dims: u32,
}

impl Hypercube {
    /// Creates the `dims`-dimensional hypercube (`2^dims` nodes).
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0` or `dims >= 64`.
    pub fn new(dims: u32) -> Self {
        assert!(dims > 0, "hypercube needs at least one dimension");
        assert!(dims < 64, "dims must be below 64 to fit node ids in u64");
        Self { dims }
    }

    /// Number of dimensions k.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Hamming distance between two vertices.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is out of range.
    pub fn hamming_distance(&self, a: NodeId, b: NodeId) -> u32 {
        assert!(
            a < self.num_nodes() && b < self.num_nodes(),
            "node out of range"
        );
        (a ^ b).count_ones()
    }
}

impl Topology for Hypercube {
    #[inline]
    fn num_nodes(&self) -> u64 {
        1u64 << self.dims
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        assert!(v < self.num_nodes(), "node {v} out of range");
        self.dims as usize
    }

    // Degree d = dims is a power of two for the common d ∈ {1,2,4,8,16,…}
    // cubes; the generic `random_neighbor` default reduces to a d-bit
    // mask there (the vendored sampler special-cases power-of-two spans),
    // so no per-type override is needed.
    #[inline]
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        assert!(v < self.num_nodes(), "node {v} out of range");
        assert!(i < self.dims as usize, "move index {i} out of range");
        v ^ (1u64 << i)
    }

    /// Branchless batched stepping: one XOR per agent.
    ///
    /// # Panics
    ///
    /// Panics if `dims > 32` — larger cubes cannot pack every node id
    /// into the `u32` positions this API requires, and a 32-bit XOR
    /// would silently flip the wrong coordinate.
    #[inline]
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        assert_eq!(positions.len(), moves.len(), "one move per position");
        assert!(
            self.dims <= 32,
            "u32-packed stepping supports at most 32 dimensions, got {}",
            self.dims
        );
        for (p, &i) in positions.iter_mut().zip(moves) {
            debug_assert!((*p as u64) < self.num_nodes(), "node {p} out of range");
            debug_assert!((i as usize) < self.dims as usize, "move {i} out of range");
            *p ^= 1u32 << (i & 31);
        }
    }

    #[inline]
    fn regular_degree(&self) -> Option<usize> {
        Some(self.dims as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbors_differ_in_one_bit() {
        let h = Hypercube::new(5);
        for v in 0..h.num_nodes() {
            for u in h.neighbors(v) {
                assert_eq!(h.hamming_distance(v, u), 1);
            }
        }
    }

    #[test]
    fn neighbors_are_distinct_and_symmetric() {
        let h = Hypercube::new(4);
        for v in 0..h.num_nodes() {
            let ns: Vec<NodeId> = h.neighbors(v).collect();
            let mut sorted = ns.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), ns.len(), "duplicate move at {v}");
            for u in ns {
                assert!(h.neighbors(u).any(|w| w == v));
            }
        }
    }

    #[test]
    fn bipartite_by_parity() {
        // Every step flips one bit and hence the popcount parity — the
        // hypercube is bipartite, as the paper notes when restricting to
        // W² in Section 4.5.
        let h = Hypercube::new(6);
        for v in 0..h.num_nodes() {
            for u in h.neighbors(v) {
                assert_ne!(v.count_ones() % 2, u.count_ones() % 2);
            }
        }
    }

    #[test]
    fn one_dimensional_hypercube_is_an_edge() {
        let h = Hypercube::new(1);
        assert_eq!(h.num_nodes(), 2);
        assert_eq!(h.neighbor(0, 0), 1);
        assert_eq!(h.neighbor(1, 0), 0);
    }

    #[test]
    fn degree_equals_dims() {
        assert_eq!(Hypercube::new(10).regular_degree(), Some(10));
    }

    #[test]
    #[should_panic(expected = "below 64")]
    fn dims_64_panics() {
        let _ = Hypercube::new(64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_move_panics() {
        let _ = Hypercube::new(3).neighbor(0, 3);
    }
}
