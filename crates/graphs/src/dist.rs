//! Exact evolution of random-walk distributions.
//!
//! Every re-collision bound in the paper is a statement about m-step walk
//! distributions:
//!
//! * **Lemma 9** — `max_v P[walk at v after m] = O(1/(m+1) + 1/A)` on the
//!   2-d torus (and Lemma 4 reduces the two-agent re-collision probability
//!   to exactly this quantity);
//! * **Corollary 10** — the equalization (return) probability is
//!   `Θ(1/(m+1)) + O(1/A)` for even m, 0 for odd m;
//! * **Lemma 20 / 22 / 23 / 25** — the ring, k-dim torus, expander and
//!   hypercube analogues.
//!
//! This module computes those quantities *exactly* by sparse
//! matrix–vector products against the walk matrix, so the experiment
//! harness can verify decay shapes with zero Monte-Carlo noise (and the
//! simulation engine can be cross-validated against ground truth).

use crate::adjacency::AdjGraph;
use crate::topology::{NodeId, Topology};

/// A probability distribution over the nodes of a topology.
///
/// # Example
///
/// ```
/// use antdensity_graphs::{Ring, WalkDistribution};
///
/// let ring = Ring::new(4);
/// let mut dist = WalkDistribution::point(&ring, 0);
/// dist.step(&ring);
/// assert_eq!(dist.prob(1), 0.5);
/// assert_eq!(dist.prob(3), 0.5);
/// assert_eq!(dist.prob(0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WalkDistribution {
    probs: Vec<f64>,
    scratch: Vec<f64>,
}

impl WalkDistribution {
    /// Point mass at `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or the topology has more nodes than
    /// `usize::MAX`.
    pub fn point<T: Topology>(topo: &T, v: NodeId) -> Self {
        let n = usize::try_from(topo.num_nodes()).expect("node count fits usize");
        assert!((v as usize) < n, "node {v} out of range");
        let mut probs = vec![0.0; n];
        probs[v as usize] = 1.0;
        Self {
            probs,
            scratch: vec![0.0; n],
        }
    }

    /// Uniform distribution (the paper's initial placement, and the
    /// stationary distribution of every regular topology).
    pub fn uniform<T: Topology>(topo: &T) -> Self {
        let n = usize::try_from(topo.num_nodes()).expect("node count fits usize");
        Self {
            probs: vec![1.0 / n as f64; n],
            scratch: vec![0.0; n],
        }
    }

    /// Degree-proportional stationary distribution `π(v) = deg(v)/2|E|`
    /// of an irregular graph (Section 5.1's setting).
    pub fn stationary(graph: &AdjGraph) -> Self {
        let n = usize::try_from(graph.num_nodes()).expect("node count fits usize");
        let two_e = 2.0 * graph.num_edges() as f64;
        let probs = (0..graph.num_nodes())
            .map(|v| graph.degree(v) as f64 / two_e)
            .collect();
        Self {
            probs,
            scratch: vec![0.0; n],
        }
    }

    /// Builds a distribution from explicit probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs` is empty, has negative entries, or does not sum
    /// to 1 within 1e-9.
    pub fn from_probs(probs: Vec<f64>) -> Self {
        assert!(!probs.is_empty(), "distribution needs at least one node");
        assert!(
            probs.iter().all(|&p| p >= 0.0),
            "probabilities must be non-negative"
        );
        let mass: f64 = probs.iter().sum();
        assert!(
            (mass - 1.0).abs() < 1e-9,
            "probabilities must sum to 1 (got {mass})"
        );
        let n = probs.len();
        Self {
            probs,
            scratch: vec![0.0; n],
        }
    }

    /// One step of the uniform-move random walk on `topo`.
    ///
    /// # Panics
    ///
    /// Panics if the topology's node count does not match this
    /// distribution.
    pub fn step<T: Topology>(&mut self, topo: &T) {
        assert_eq!(
            self.probs.len() as u64,
            topo.num_nodes(),
            "topology size mismatch"
        );
        self.scratch.iter_mut().for_each(|x| *x = 0.0);
        for v in 0..self.probs.len() {
            let p = self.probs[v];
            if p == 0.0 {
                continue;
            }
            let vid = v as NodeId;
            let d = topo.degree(vid);
            let share = p / d as f64;
            for i in 0..d {
                self.scratch[topo.neighbor(vid, i) as usize] += share;
            }
        }
        std::mem::swap(&mut self.probs, &mut self.scratch);
    }

    /// Advances `m` steps.
    pub fn evolve<T: Topology>(&mut self, topo: &T, m: u64) {
        for _ in 0..m {
            self.step(topo);
        }
    }

    /// Probability mass at node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn prob(&self, v: NodeId) -> f64 {
        self.probs[v as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Distributions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Largest point probability — the quantity bounded by Lemma 9 and its
    /// analogues.
    pub fn max_prob(&self) -> f64 {
        self.probs.iter().cloned().fold(0.0, f64::max)
    }

    /// Total mass (should be 1 up to float error; exposed for tests).
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// `Σ_v p(v)·q(v)` — the probability that two *independent* walks with
    /// marginals `p` and `q` occupy the same node.
    ///
    /// # Panics
    ///
    /// Panics if the distributions have different lengths.
    pub fn collision_prob(&self, other: &WalkDistribution) -> f64 {
        assert_eq!(self.probs.len(), other.probs.len(), "size mismatch");
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(p, q)| p * q)
            .sum()
    }

    /// `Σ_v p(v)²` — the collision probability of two i.i.d. copies
    /// (both walks launched from the same collision node, Lemma 4's
    /// unconditional form).
    pub fn self_collision_prob(&self) -> f64 {
        self.probs.iter().map(|p| p * p).sum()
    }

    /// Total-variation distance `½·Σ|p − q|`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn tv_distance(&self, other: &WalkDistribution) -> f64 {
        assert_eq!(self.probs.len(), other.probs.len(), "size mismatch");
        0.5 * self
            .probs
            .iter()
            .zip(&other.probs)
            .map(|(p, q)| (p - q).abs())
            .sum::<f64>()
    }

    /// View of the raw probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }
}

/// `P[walk from `origin` is back at `origin` after m]` for `m = 0..=t` —
/// the equalization-probability series of Corollary 10.
pub fn return_probability_series<T: Topology>(topo: &T, origin: NodeId, t: u64) -> Vec<f64> {
    let mut dist = WalkDistribution::point(topo, origin);
    let mut series = Vec::with_capacity(t as usize + 1);
    series.push(dist.prob(origin));
    for _ in 0..t {
        dist.step(topo);
        series.push(dist.prob(origin));
    }
    series
}

/// `max_v P[walk from `start` at v after m]` for `m = 0..=t` — the
/// single-walk point-probability series of Lemma 9 (and Lemmas 20/22/25).
pub fn max_probability_series<T: Topology>(topo: &T, start: NodeId, t: u64) -> Vec<f64> {
    let mut dist = WalkDistribution::point(topo, start);
    let mut series = Vec::with_capacity(t as usize + 1);
    series.push(dist.max_prob());
    for _ in 0..t {
        dist.step(topo);
        series.push(dist.max_prob());
    }
    series
}

/// `P[two independent walks launched from `start` re-collide at lag m]`
/// for `m = 0..=t`: both walks have the same m-step marginal `p_m`, and by
/// independence the re-collision probability is `Σ_v p_m(v)²` (Lemma 4's
/// unconditional form).
pub fn recollision_series<T: Topology>(topo: &T, start: NodeId, t: u64) -> Vec<f64> {
    let mut dist = WalkDistribution::point(topo, start);
    let mut series = Vec::with_capacity(t as usize + 1);
    series.push(dist.self_collision_prob());
    for _ in 0..t {
        dist.step(topo);
        series.push(dist.self_collision_prob());
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::CompleteGraph;
    use crate::hypercube::Hypercube;
    use crate::torus::{Ring, Torus2d};

    #[test]
    fn point_mass_and_one_step_on_ring() {
        let ring = Ring::new(5);
        let mut d = WalkDistribution::point(&ring, 2);
        assert_eq!(d.prob(2), 1.0);
        d.step(&ring);
        assert_eq!(d.prob(1), 0.5);
        assert_eq!(d.prob(3), 0.5);
        assert_eq!(d.prob(2), 0.0);
        assert!((d.total_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_steps_on_ring_by_hand() {
        // From 0 on a 5-ring: after 2 steps P[0] = 1/2, P[2] = P[3] = 1/4.
        let ring = Ring::new(5);
        let mut d = WalkDistribution::point(&ring, 0);
        d.evolve(&ring, 2);
        assert!((d.prob(0) - 0.5).abs() < 1e-12);
        assert!((d.prob(2) - 0.25).abs() < 1e-12);
        assert!((d.prob(3) - 0.25).abs() < 1e-12);
        assert_eq!(d.prob(1), 0.0);
        assert_eq!(d.prob(4), 0.0);
    }

    #[test]
    fn torus_one_step_splits_four_ways() {
        let t = Torus2d::new(5);
        let mut d = WalkDistribution::point(&t, t.node(2, 2));
        d.step(&t);
        for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
            assert!((d.prob(t.offset(t.node(2, 2), dx, dy)) - 0.25).abs() < 1e-12);
        }
        assert_eq!(d.prob(t.node(2, 2)), 0.0);
    }

    #[test]
    fn mass_is_conserved_over_many_steps() {
        let t = Torus2d::new(8);
        let mut d = WalkDistribution::point(&t, 0);
        d.evolve(&t, 200);
        assert!((d.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn even_torus_parity_alternates() {
        // On an even torus, mass alternates between the two parity classes:
        // the return probability at odd m is exactly 0 (Corollary 10).
        let t = Torus2d::new(6);
        let series = return_probability_series(&t, 0, 9);
        for (m, &p) in series.iter().enumerate() {
            if m % 2 == 1 {
                assert_eq!(p, 0.0, "odd m = {m} must have zero return prob");
            } else {
                assert!(p > 0.0, "even m = {m} must have positive return prob");
            }
        }
    }

    #[test]
    fn complete_graph_uniform_after_one_step() {
        let g = CompleteGraph::new(10);
        let mut d = WalkDistribution::point(&g, 3);
        d.step(&g);
        for v in 0..10 {
            assert!((d.prob(v) - 0.1).abs() < 1e-12);
        }
        // recollision probability is exactly 1/A at every m >= 1.
        let series = recollision_series(&g, 0, 3);
        assert_eq!(series[0], 1.0);
        for &p in &series[1..] {
            assert!((p - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn recollision_equals_collision_of_equal_marginals() {
        let t = Torus2d::new(6);
        let mut a = WalkDistribution::point(&t, 7);
        let mut b = WalkDistribution::point(&t, 7);
        a.evolve(&t, 4);
        b.evolve(&t, 4);
        assert!((a.collision_prob(&b) - a.self_collision_prob()).abs() < 1e-15);
    }

    #[test]
    fn uniform_is_stationary_on_regular_topology() {
        let t = Torus2d::new(7);
        let mut d = WalkDistribution::uniform(&t);
        let before = d.clone();
        d.step(&t);
        assert!(d.tv_distance(&before) < 1e-12);
    }

    #[test]
    fn stationary_is_fixed_on_irregular_graph() {
        let g = crate::generators::star_graph(6);
        let mut d = WalkDistribution::stationary(&g);
        let before = d.clone();
        d.step(&g);
        assert!(d.tv_distance(&before) < 1e-12);
    }

    #[test]
    fn odd_ring_converges_to_uniform() {
        // Odd cycles are aperiodic: distribution tends to uniform.
        let ring = Ring::new(5);
        let mut d = WalkDistribution::point(&ring, 0);
        d.evolve(&ring, 2000);
        let uniform = WalkDistribution::uniform(&ring);
        assert!(d.tv_distance(&uniform) < 1e-6);
    }

    #[test]
    fn hypercube_return_prob_known_small_case() {
        // 2-cube (a 4-cycle): from 00, after 2 steps, P[return] = 1/2.
        let h = Hypercube::new(2);
        let series = return_probability_series(&h, 0, 2);
        assert_eq!(series[0], 1.0);
        assert_eq!(series[1], 0.0);
        assert!((series[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_prob_series_is_bounded_by_one_and_decreasing_on_torus() {
        let t = Torus2d::new(8);
        let series = max_probability_series(&t, 0, 20);
        assert_eq!(series[0], 1.0);
        // max prob at even steps decreases monotonically on the torus
        let evens: Vec<f64> = series.iter().step_by(2).copied().collect();
        for w in evens.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn tv_distance_properties() {
        let t = Torus2d::new(4);
        let a = WalkDistribution::point(&t, 0);
        let b = WalkDistribution::point(&t, 5);
        assert_eq!(a.tv_distance(&a), 0.0);
        assert_eq!(a.tv_distance(&b), 1.0); // disjoint point masses
        assert_eq!(a.tv_distance(&b), b.tv_distance(&a));
    }

    #[test]
    fn from_probs_validates() {
        let d = WalkDistribution::from_probs(vec![0.25; 4]);
        assert_eq!(d.len(), 4);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn from_probs_rejects_bad_mass() {
        let _ = WalkDistribution::from_probs(vec![0.3, 0.3]);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn step_checks_topology_size() {
        let t4 = Torus2d::new(2);
        let t9 = Torus2d::new(3);
        let mut d = WalkDistribution::point(&t4, 0);
        d.step(&t9);
    }
}
