//! Division by a runtime-invariant divisor via multiply-shift.
//!
//! The walk kernels decode torus node ids into coordinates every step
//! (`x = v mod side`, `y = v / side`), and a 64-bit hardware division
//! costs ~20–40 cycles — it dominates the whole agent-step once RNG
//! dispatch is monomorphized away. [`FastDiv`] precomputes a
//! Granlund–Montgomery magic multiplier once per topology so the per-step
//! quotient becomes one widening multiply plus a shift (~3 cycles),
//! exact for every dividend below `2^32` — which covers every node id
//! the dense engine can produce (positions are `u32`).
//!
//! Dividends at or above `2^32` (possible through the public topology
//! API on gigantic graphs) transparently fall back to hardware division,
//! so results are identical everywhere.

/// The Lemire bounded-sampling rejection zone for `span`:
/// `u64::MAX - (u64::MAX - span + 1) % span`.
///
/// This is the exact value the vendored `rand`'s `gen_range(0..span)`
/// computes per draw; hoisting it (per node in `CsrGraph`, per buffer
/// fill in the engine's batched sampler) removes a hardware division
/// from the hot path **without changing a single drawn bit** — the
/// multiply-shift rejection test against this zone is the draw-order
/// contract both consumers pin with bit-identity tests. One definition
/// on purpose: two copies of this formula drifting apart would break
/// cross-path bit-identity in ways only distant golden tests catch.
///
/// # Panics
///
/// Panics in debug builds if `span == 0`.
#[inline]
pub fn lemire_zone(span: u64) -> u64 {
    debug_assert!(span > 0, "cannot sample an empty range");
    u64::MAX - (u64::MAX - span + 1) % span
}

/// A precomputed divisor. `div(v)` equals `v / d` for every `v`, taking
/// the multiply-shift fast path whenever `v < 2^32`.
///
/// # Example
///
/// ```
/// use antdensity_graphs::fastdiv::FastDiv;
///
/// let d = FastDiv::new(48);
/// assert_eq!(d.div(1000), 1000 / 48);
/// assert_eq!(d.rem(1000), 1000 % 48);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FastDiv {
    divisor: u64,
    magic: u64,
    shift: u32,
}

/// Sentinel shift marking divisors too large for the 32-bit-dividend
/// magic scheme; `div` then always uses hardware division.
const HW_ONLY: u32 = u32::MAX;

impl FastDiv {
    /// Precomputes the magic multiplier for `d`.
    ///
    /// For `d ≤ 2^32` the multiplier is `ceil(2^(32+l)/d)` with
    /// `l = ceil(log2 d)`; the classical correctness bound
    /// `2^(32+l) ≤ magic·d ≤ 2^(32+l) + 2^l` then makes the
    /// multiply-shift quotient exact for all dividends below `2^32`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero");
        if d <= (1u64 << 32) {
            let l = 64 - (d - 1).leading_zeros();
            let shift = 32 + l;
            let magic = (1u128 << shift).div_ceil(d as u128) as u64;
            Self {
                divisor: d,
                magic,
                shift,
            }
        } else {
            Self {
                divisor: d,
                magic: 0,
                shift: HW_ONLY,
            }
        }
    }

    /// The divisor `d`.
    #[inline]
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// `v / d`, exactly.
    #[inline]
    pub fn div(&self, v: u64) -> u64 {
        if self.shift == HW_ONLY || v > u32::MAX as u64 {
            v / self.divisor
        } else {
            ((v as u128 * self.magic as u128) >> self.shift) as u64
        }
    }

    /// `v / d` for dividends already known to fit in `u32` — the inner
    /// loop variant with no dividend range test. Exact under the same
    /// guarantee as [`Self::div`].
    ///
    /// # Panics
    ///
    /// Debug builds panic if `v` exceeds `u32::MAX`.
    #[inline]
    pub fn div32(&self, v: u64) -> u64 {
        debug_assert!(v <= u32::MAX as u64, "div32 dividend {v} out of range");
        if self.shift == HW_ONLY {
            v / self.divisor
        } else {
            ((v as u128 * self.magic as u128) >> self.shift) as u64
        }
    }

    /// `v % d`, exactly.
    #[inline]
    pub fn rem(&self, v: u64) -> u64 {
        v - self.div(v) * self.divisor
    }

    /// `(v / d, v % d)` with one quotient computation.
    #[inline]
    pub fn div_rem(&self, v: u64) -> (u64, u64) {
        let q = self.div(v);
        (q, v - q * self.divisor)
    }

    /// [`Self::div_rem`] for dividends already known to fit in `u32`
    /// (see [`Self::div32`]).
    ///
    /// # Panics
    ///
    /// Debug builds panic if `v` exceeds `u32::MAX`.
    #[inline]
    pub fn div_rem32(&self, v: u64) -> (u64, u64) {
        let q = self.div32(v);
        (q, v - q * self.divisor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_over_small_grid() {
        for d in 1..=70u64 {
            let f = FastDiv::new(d);
            for v in 0..5_000u64 {
                assert_eq!(f.div(v), v / d, "{v}/{d}");
                assert_eq!(f.rem(v), v % d, "{v}%{d}");
            }
        }
    }

    #[test]
    fn exact_at_u32_boundaries() {
        for d in [
            1u64,
            2,
            3,
            5,
            7,
            255,
            256,
            257,
            65_535,
            65_536,
            65_537,
            (1 << 31) - 1,
            1 << 31,
            (1 << 32) - 1,
            1 << 32,
        ] {
            let f = FastDiv::new(d);
            for v in [
                0u64,
                1,
                d - 1,
                d,
                d + 1,
                d.saturating_mul(3),
                u32::MAX as u64 - 1,
                u32::MAX as u64,
            ] {
                assert_eq!(f.div(v), v / d, "{v}/{d}");
            }
        }
    }

    #[test]
    fn hardware_fallback_above_u32() {
        let f = FastDiv::new(48);
        for v in [u32::MAX as u64 + 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(f.div(v), v / 48);
            assert_eq!(f.rem(v), v % 48);
        }
        let huge = FastDiv::new((1 << 32) + 7);
        assert_eq!(huge.div(u64::MAX), u64::MAX / ((1 << 32) + 7));
    }

    #[test]
    fn div_rem_agrees() {
        let f = FastDiv::new(513);
        for v in (0..2_000_000u64).step_by(997) {
            assert_eq!(f.div_rem(v), (v / 513, v % 513));
        }
        assert_eq!(f.divisor(), 513);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_rejected() {
        let _ = FastDiv::new(0);
    }
}
