//! Torus topologies: the paper's main stage.
//!
//! * [`Torus2d`] — the √A×√A two-dimensional torus of Section 2 (the
//!   paper's model for an ant colony's surface), with coordinate and
//!   displacement helpers used by the re-collision experiments.
//! * [`TorusKd`] — k-dimensional tori (Section 4.3, where k ≥ 3 makes
//!   density estimation as accurate as independent sampling).
//! * [`Ring`] — the 1-dimensional torus (Section 4.2, where poor local
//!   mixing degrades the bound to t^{1/4} convergence).
//!
//! Neighbor lists are multisets (see [`crate::topology`]): on side-2 tori
//! the +1 and −1 moves coincide and are listed twice, preserving the exact
//! uniform-move walk distribution.

use crate::fastdiv::FastDiv;
use crate::topology::{NodeId, Topology};

/// The two-dimensional `side × side` torus (`A = side²` nodes).
///
/// Node ids are row-major: `v = y·side + x`. Moves are ordered
/// `[x+1, x−1, y+1, y−1]`, matching the paper's step set
/// `{(1,0), (−1,0), (0,1), (0,−1)}`.
///
/// Coordinate decoding uses a precomputed [`FastDiv`] reciprocal, so the
/// per-step `id → (x, y) → id` round-trip is multiply/shift arithmetic —
/// no hardware division on the walk's hot path.
///
/// # Example
///
/// ```
/// use antdensity_graphs::{Topology, Torus2d};
///
/// let t = Torus2d::new(8);
/// let v = t.node(7, 0);
/// assert_eq!(t.neighbor(v, 0), t.node(0, 0)); // x wraps
/// assert_eq!(t.displacement(t.node(1, 1), t.node(2, 1)), (1, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Torus2d {
    side: u64,
    div: FastDiv,
}

impl Torus2d {
    /// Creates a `side × side` torus.
    ///
    /// # Panics
    ///
    /// Panics if `side == 0` or `side²` overflows `u64`.
    pub fn new(side: u64) -> Self {
        assert!(side > 0, "torus side must be positive");
        side.checked_mul(side).expect("side^2 overflows u64");
        Self {
            side,
            div: FastDiv::new(side),
        }
    }

    /// Side length √A.
    pub fn side(&self) -> u64 {
        self.side
    }

    /// Node id of coordinates `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if either coordinate is out of range.
    #[inline]
    pub fn node(&self, x: u64, y: u64) -> NodeId {
        assert!(x < self.side && y < self.side, "coordinate out of range");
        y * self.side + x
    }

    /// Coordinates `(x, y)` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn coord(&self, v: NodeId) -> (u64, u64) {
        assert!(v < self.num_nodes(), "node {v} out of range");
        let (y, x) = self.div.div_rem(v);
        (x, y)
    }

    /// Minimal signed displacement `(dx, dy)` from `from` to `to`, each
    /// component in `(−side/2, side/2]`.
    pub fn displacement(&self, from: NodeId, to: NodeId) -> (i64, i64) {
        let (x0, y0) = self.coord(from);
        let (x1, y1) = self.coord(to);
        (
            signed_wrap(x1 as i64 - x0 as i64, self.side as i64),
            signed_wrap(y1 as i64 - y0 as i64, self.side as i64),
        )
    }

    /// L1 (Manhattan) torus distance.
    pub fn torus_distance(&self, a: NodeId, b: NodeId) -> u64 {
        let (dx, dy) = self.displacement(a, b);
        dx.unsigned_abs() + dy.unsigned_abs()
    }

    /// The node reached from `v` by offset `(dx, dy)` with wrap-around.
    #[inline]
    pub fn offset(&self, v: NodeId, dx: i64, dy: i64) -> NodeId {
        let (x, y) = self.coord(v);
        let s = self.side as i64;
        let nx = (x as i64 + dx).rem_euclid(s) as u64;
        let ny = (y as i64 + dy).rem_euclid(s) as u64;
        self.node(nx, ny)
    }
}

impl Topology for Torus2d {
    #[inline]
    fn num_nodes(&self) -> u64 {
        self.side * self.side
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        assert!(v < self.num_nodes(), "node {v} out of range");
        4
    }

    /// Single-coordinate wrap with compare/select instead of the general
    /// `offset` path's `rem_euclid` — unit moves can only wrap by one
    /// period, so the modular reduction needs no hardware division. (A
    /// fully select-based variant measured *slower*: the per-arm form
    /// keeps the dependency chains short.)
    #[inline]
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        assert!(i < 4, "move index {i} out of range");
        let (x, y) = self.coord(v);
        let s = self.side;
        match i {
            0 => y * s + if x + 1 == s { 0 } else { x + 1 },
            1 => y * s + if x == 0 { s - 1 } else { x - 1 },
            2 => (if y + 1 == s { 0 } else { y + 1 }) * s + x,
            _ => (if y == 0 { s - 1 } else { y - 1 }) * s + x,
        }
    }

    /// Bitmask fast path: degree 4 is a power of two, so the move index
    /// is two raw RNG bits — exactly the bits `gen_range(0..4)` consumes
    /// (the vendored Lemire sampler masks for power-of-two spans), so the
    /// draw stream is unchanged.
    #[inline]
    fn random_neighbor<R: rand::RngCore + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        self.neighbor(v, (rng.next_u64() & 3) as usize)
    }

    /// Branchless batched stepping: a unit move is *addition mod side*
    /// per coordinate (`x−1 ≡ x + (side−1)`), so each agent is two table
    /// loads, two add-compare-subtract wraps, and a multiply-shift
    /// coordinate decode ([`FastDiv`]) — no division and no
    /// data-dependent branch on the random move index. Packed `u32`
    /// positions guarantee the reciprocal's dividend range.
    #[inline]
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        assert_eq!(positions.len(), moves.len(), "one move per position");
        let s = self.side;
        // Move i adds (dx[i], dy[i]) mod side, with ordering
        // [x+1, x−1, y+1, y−1].
        let dx = [1u64, s - 1, 0, 0];
        let dy = [0u64, 0, 1, s - 1];
        for (p, &i) in positions.iter_mut().zip(moves) {
            let v = *p as u64;
            debug_assert!(v < self.num_nodes(), "node {v} out of range");
            debug_assert!((i as usize) < 4, "move index {i} out of range");
            let (y, x) = self.div.div_rem32(v);
            let mut nx = x + dx[i as usize & 3];
            if nx >= s {
                nx -= s;
            }
            let mut ny = y + dy[i as usize & 3];
            if ny >= s {
                ny -= s;
            }
            *p = (ny * s + nx) as u32;
        }
    }

    #[inline]
    fn regular_degree(&self) -> Option<usize> {
        Some(4)
    }
}

/// Reduces `d` to the representative of `d mod s` in `(−s/2, s/2]`.
#[inline]
fn signed_wrap(d: i64, s: i64) -> i64 {
    let m = d.rem_euclid(s);
    if m > s / 2 {
        m - s
    } else {
        m
    }
}

/// The k-dimensional `side^k`-node torus of Section 4.3.
///
/// Node ids are mixed-radix little-endian: dimension `j`'s coordinate is
/// digit `j` in base `side`. Moves are ordered
/// `[+e₀, −e₀, +e₁, −e₁, …]` (degree `2k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusKd {
    dims: u32,
    side: u64,
    nodes: u64,
}

impl TorusKd {
    /// Creates a `dims`-dimensional torus with `side` nodes per dimension.
    ///
    /// # Panics
    ///
    /// Panics if `dims == 0`, `side == 0`, or `side^dims` overflows `u64`.
    pub fn new(dims: u32, side: u64) -> Self {
        assert!(dims > 0, "torus needs at least one dimension");
        assert!(side > 0, "torus side must be positive");
        let mut nodes: u64 = 1;
        for _ in 0..dims {
            nodes = nodes.checked_mul(side).expect("side^dims overflows u64");
        }
        Self { dims, side, nodes }
    }

    /// Number of dimensions k.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Side length per dimension.
    pub fn side(&self) -> u64 {
        self.side
    }

    /// Coordinate of `v` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `v` or `dim` is out of range.
    #[inline]
    pub fn coord(&self, v: NodeId, dim: u32) -> u64 {
        assert!(v < self.nodes, "node {v} out of range");
        assert!(dim < self.dims, "dimension {dim} out of range");
        (v / self.side.pow(dim)) % self.side
    }

    /// All coordinates of `v`.
    pub fn coords(&self, v: NodeId) -> Vec<u64> {
        (0..self.dims).map(|d| self.coord(v, d)).collect()
    }

    /// Node id from coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count or any coordinate is out of range.
    pub fn node(&self, coords: &[u64]) -> NodeId {
        assert_eq!(coords.len(), self.dims as usize, "wrong coordinate count");
        let mut v = 0u64;
        for (j, &c) in coords.iter().enumerate() {
            assert!(c < self.side, "coordinate {c} out of range");
            v += c * self.side.pow(j as u32);
        }
        v
    }

    /// The node reached from `v` by moving `delta` in dimension `dim`.
    #[inline]
    pub fn offset(&self, v: NodeId, dim: u32, delta: i64) -> NodeId {
        assert!(v < self.nodes, "node {v} out of range");
        assert!(dim < self.dims, "dimension {dim} out of range");
        let base = self.side.pow(dim);
        let c = (v / base) % self.side;
        let s = self.side as i64;
        let nc = (c as i64 + delta).rem_euclid(s) as u64;
        v - c * base + nc * base
    }

    /// Minimal signed displacement in dimension `dim` from `from` to `to`.
    pub fn displacement(&self, from: NodeId, to: NodeId, dim: u32) -> i64 {
        signed_wrap(
            self.coord(to, dim) as i64 - self.coord(from, dim) as i64,
            self.side as i64,
        )
    }

    /// L1 torus distance.
    pub fn torus_distance(&self, a: NodeId, b: NodeId) -> u64 {
        (0..self.dims)
            .map(|d| self.displacement(a, b, d).unsigned_abs())
            .sum()
    }
}

impl Topology for TorusKd {
    #[inline]
    fn num_nodes(&self) -> u64 {
        self.nodes
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        assert!(v < self.nodes, "node {v} out of range");
        2 * self.dims as usize
    }

    // Degree 2k is a power of two whenever k is; the generic
    // `random_neighbor` default already reduces to a bitmask draw in
    // that case (the vendored sampler special-cases power-of-two spans),
    // so no per-type override is needed here.
    #[inline]
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        assert!(i < 2 * self.dims as usize, "move index {i} out of range");
        let dim = (i / 2) as u32;
        let delta = if i.is_multiple_of(2) { 1 } else { -1 };
        self.offset(v, dim, delta)
    }

    #[inline]
    fn regular_degree(&self) -> Option<usize> {
        Some(2 * self.dims as usize)
    }
}

/// The ring (cycle) on `A` nodes — the 1-dimensional torus of Section 4.2.
///
/// Moves are `[+1, −1]` with wrap-around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ring {
    nodes: u64,
}

impl Ring {
    /// Creates a ring with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: u64) -> Self {
        assert!(nodes > 0, "ring needs at least one node");
        Self { nodes }
    }

    /// Minimal signed displacement from `from` to `to`.
    pub fn displacement(&self, from: NodeId, to: NodeId) -> i64 {
        assert!(from < self.nodes && to < self.nodes, "node out of range");
        signed_wrap(to as i64 - from as i64, self.nodes as i64)
    }

    /// Ring distance (shorter arc).
    pub fn ring_distance(&self, a: NodeId, b: NodeId) -> u64 {
        self.displacement(a, b).unsigned_abs()
    }
}

impl Topology for Ring {
    #[inline]
    fn num_nodes(&self) -> u64 {
        self.nodes
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        assert!(v < self.nodes, "node {v} out of range");
        2
    }

    /// Unit moves wrap by at most one period, so the modular reduction
    /// is a branchless compare/select — no division on the hot path.
    #[inline]
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        assert!(i < 2, "move index {i} out of range");
        assert!(v < self.nodes, "node {v} out of range");
        let s = self.nodes;
        if i == 0 {
            if v + 1 == s {
                0
            } else {
                v + 1
            }
        } else if v == 0 {
            s - 1
        } else {
            v - 1
        }
    }

    /// Bitmask fast path: degree 2 means the move index is one raw RNG
    /// bit — the same bit `gen_range(0..2)` consumes, so the draw stream
    /// is unchanged.
    #[inline]
    fn random_neighbor<R: rand::RngCore + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        self.neighbor(v, (rng.next_u64() & 1) as usize)
    }

    /// Branchless batched stepping: `−1 ≡ +(nodes−1) mod nodes`, so each
    /// agent is one table load and an add-compare-subtract wrap.
    #[inline]
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        assert_eq!(positions.len(), moves.len(), "one move per position");
        let s = self.nodes;
        let delta = [1u64, s - 1];
        for (p, &i) in positions.iter_mut().zip(moves) {
            let v = *p as u64;
            debug_assert!(v < s, "node {v} out of range");
            debug_assert!((i as usize) < 2, "move index {i} out of range");
            let mut n = v + delta[i as usize & 1];
            if n >= s {
                n -= s;
            }
            *p = n as u32;
        }
    }

    #[inline]
    fn regular_degree(&self) -> Option<usize> {
        Some(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus2d_roundtrip_coords() {
        let t = Torus2d::new(5);
        for v in 0..t.num_nodes() {
            let (x, y) = t.coord(v);
            assert_eq!(t.node(x, y), v);
        }
    }

    #[test]
    fn torus2d_neighbors_wrap() {
        let t = Torus2d::new(4);
        let corner = t.node(3, 3);
        assert_eq!(t.neighbor(corner, 0), t.node(0, 3)); // x+1 wraps
        assert_eq!(t.neighbor(corner, 2), t.node(3, 0)); // y+1 wraps
        let origin = t.node(0, 0);
        assert_eq!(t.neighbor(origin, 1), t.node(3, 0)); // x-1 wraps
        assert_eq!(t.neighbor(origin, 3), t.node(0, 3)); // y-1 wraps
    }

    #[test]
    fn torus2d_neighbors_are_symmetric() {
        // u in N(v) iff v in N(u), with equal multiplicity.
        let t = Torus2d::new(4);
        for v in 0..t.num_nodes() {
            for u in t.neighbors(v) {
                let back = t.neighbors(u).filter(|&w| w == v).count();
                let forth = t.neighbors(v).filter(|&w| w == u).count();
                assert_eq!(back, forth, "asymmetry between {v} and {u}");
            }
        }
    }

    #[test]
    fn torus2d_displacement_signs() {
        let t = Torus2d::new(10);
        assert_eq!(t.displacement(t.node(0, 0), t.node(1, 0)), (1, 0));
        assert_eq!(t.displacement(t.node(0, 0), t.node(9, 0)), (-1, 0));
        assert_eq!(t.displacement(t.node(0, 0), t.node(0, 6)), (0, -4));
        // half-way point maps to +side/2
        assert_eq!(t.displacement(t.node(0, 0), t.node(5, 0)), (5, 0));
    }

    #[test]
    fn torus2d_distance_triangle_inequality_spot() {
        let t = Torus2d::new(7);
        let (a, b, c) = (t.node(1, 1), t.node(5, 2), t.node(3, 6));
        assert!(t.torus_distance(a, c) <= t.torus_distance(a, b) + t.torus_distance(b, c));
        assert_eq!(t.torus_distance(a, a), 0);
        assert_eq!(t.torus_distance(a, b), t.torus_distance(b, a));
    }

    #[test]
    fn torus2d_side_one_all_self_loops() {
        let t = Torus2d::new(1);
        assert_eq!(t.num_nodes(), 1);
        for i in 0..4 {
            assert_eq!(t.neighbor(0, i), 0);
        }
    }

    #[test]
    fn torus2d_side_two_duplicate_moves() {
        let t = Torus2d::new(2);
        // +x and -x from (0,0) both land on (1,0)
        assert_eq!(t.neighbor(0, 0), t.neighbor(0, 1));
        assert_eq!(t.degree(0), 4);
    }

    #[test]
    fn torus_kd_matches_2d_special_case() {
        let t2 = Torus2d::new(6);
        let tk = TorusKd::new(2, 6);
        assert_eq!(t2.num_nodes(), tk.num_nodes());
        for v in 0..t2.num_nodes() {
            // Same move set, as sets (ordering differs: [x+1,x-1,y+1,y-1]).
            let mut a: Vec<NodeId> = t2.neighbors(v).collect();
            let mut b: Vec<NodeId> = tk.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "node {v}");
        }
    }

    #[test]
    fn torus_kd_coord_roundtrip() {
        let t = TorusKd::new(3, 4);
        assert_eq!(t.num_nodes(), 64);
        for v in 0..t.num_nodes() {
            assert_eq!(t.node(&t.coords(v)), v);
        }
    }

    #[test]
    fn torus_kd_neighbor_changes_one_dim() {
        let t = TorusKd::new(4, 5);
        let v = t.node(&[1, 2, 3, 4]);
        for i in 0..t.degree(v) {
            let u = t.neighbor(v, i);
            let diffs: Vec<u32> = (0..4).filter(|&d| t.coord(u, d) != t.coord(v, d)).collect();
            assert_eq!(diffs.len(), 1, "move {i} changed {} dims", diffs.len());
            assert_eq!(t.displacement(v, u, diffs[0]).abs(), 1);
        }
    }

    #[test]
    fn torus_kd_degree_is_2k() {
        assert_eq!(TorusKd::new(3, 10).regular_degree(), Some(6));
        assert_eq!(TorusKd::new(5, 3).regular_degree(), Some(10));
    }

    #[test]
    fn ring_wraps_both_ways() {
        let r = Ring::new(5);
        assert_eq!(r.neighbor(4, 0), 0);
        assert_eq!(r.neighbor(0, 1), 4);
        assert_eq!(r.ring_distance(0, 3), 2); // shorter arc
        assert_eq!(r.displacement(0, 3), -2);
        assert_eq!(r.displacement(0, 2), 2);
    }

    #[test]
    fn ring_matches_torus_kd_1d() {
        let r = Ring::new(8);
        let t = TorusKd::new(1, 8);
        for v in 0..8 {
            let mut a: Vec<NodeId> = r.neighbors(v).collect();
            let mut b: Vec<NodeId> = t.neighbors(v).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bipartite_structure_of_even_torus() {
        // On an even-sided torus a walk alternates between parities: the
        // paper notes the torus is bipartite. One step always changes
        // coordinate-sum parity.
        let t = Torus2d::new(6);
        for v in 0..t.num_nodes() {
            let (x, y) = t.coord(v);
            for u in t.neighbors(v) {
                let (ux, uy) = t.coord(u);
                assert_ne!((x + y) % 2, (ux + uy) % 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "side must be positive")]
    fn zero_side_panics() {
        let _ = Torus2d::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let t = Torus2d::new(3);
        let _ = t.coord(9);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn giant_kd_torus_overflows() {
        let _ = TorusKd::new(10, 1 << 32);
    }
}
