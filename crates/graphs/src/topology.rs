//! The [`Topology`] trait: the minimal graph interface the paper's model
//! needs.
//!
//! Agents only ever (a) pick a uniformly random starting node, (b) step to
//! a uniformly random neighbor, and (c) compare positions. Node identity
//! is therefore a dense integer id and the interface is three methods.
//!
//! Neighbor lists are *multisets*: on a side-2 torus the `x+1` and `x−1`
//! moves land on the same node and are listed twice. This is deliberate —
//! the paper's walk picks a uniformly random *move*, and keeping duplicate
//! entries preserves the exact step distribution on degenerate sizes.

use rand::Rng;
use rand::RngCore;

/// Dense node identifier: `0 ..= num_nodes()-1`.
pub type NodeId = u64;

/// A graph on which agents random-walk.
///
/// Implementations must present each vertex's incident moves as an indexed
/// multiset (`degree` entries, possibly with repeats). The random walk
/// defined by [`Topology::random_neighbor`] picks an index uniformly, so
/// the walk matrix has `P[v→u] = (multiplicity of u)/degree(v)`.
///
/// The trait is object-safe: heterogeneous experiment tables can hold
/// `&dyn Topology`.
pub trait Topology {
    /// Number of nodes `A`. Always at least 1.
    fn num_nodes(&self) -> u64;

    /// Number of incident moves at `v` (with multiplicity).
    ///
    /// # Panics
    ///
    /// Implementations panic if `v ≥ num_nodes()`.
    fn degree(&self, v: NodeId) -> usize;

    /// The `i`-th incident move at `v`, `0 ≤ i < degree(v)`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `v` or `i` is out of range.
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId;

    /// Uniformly random move from `v` — one step of the paper's walk.
    ///
    /// Generic over the RNG so concrete call sites monomorphize: with a
    /// concrete `R` the whole draw (xoshiro output, Lemire bound, bitmask
    /// fast path for power-of-two degrees) inlines into the caller with
    /// zero virtual dispatch. Passing `&mut dyn RngCore` still works
    /// (`R = dyn RngCore`) and reproduces the exact same bit-stream — the
    /// draw algorithm does not depend on `R`.
    fn random_neighbor<R: RngCore + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId
    where
        Self: Sized,
    {
        let d = self.degree(v);
        debug_assert!(d > 0, "node {v} has no moves");
        self.neighbor(v, rng.gen_range(0..d))
    }

    /// Uniformly random node — the paper's initial placement.
    fn uniform_node<R: RngCore + ?Sized>(&self, rng: &mut R) -> NodeId
    where
        Self: Sized,
    {
        rng.gen_range(0..self.num_nodes())
    }

    /// Applies precomputed move indices to a block of packed positions:
    /// `positions[j] = neighbor(positions[j], moves[j])` for every `j` —
    /// the second loop of a batched walk kernel, after the indices were
    /// bulk-sampled.
    ///
    /// The `u32` packing guarantees every id is below `2^32`, which lets
    /// structured topologies override this with branchless, division-free
    /// loops (tori use a precomputed reciprocal and add-mod-side wraps;
    /// the hypercube a bare XOR). Overrides must produce exactly
    /// [`Topology::neighbor`]'s value for every in-range input; for
    /// out-of-range positions or move indices they may panic or produce
    /// unspecified positions (debug builds assert). Only meaningful on
    /// topologies with at most `2^32` nodes — larger graphs cannot pack
    /// their ids into `u32` at all (the dense engine enforces this via
    /// its `MAX_NODES` cap).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length; implementations may panic
    /// on out-of-range entries.
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        assert_eq!(positions.len(), moves.len(), "one move per position");
        for (p, &i) in positions.iter_mut().zip(moves) {
            *p = self.neighbor(*p as NodeId, i as usize) as u32;
        }
    }

    /// [`Topology::apply_moves`] with an L2-sized node-tiling option for
    /// the memory-bound regime (hundreds of thousands of agents, or node
    /// data too large to stay cache-resident).
    ///
    /// The contract is **bit-identical output**: after the call,
    /// `positions` holds exactly what [`Topology::apply_moves`] would
    /// have produced — implementations may only reorder the *gathers*,
    /// never change a value. The default ignores `scratch` and delegates;
    /// [`crate::CsrGraph`] overrides with a counting-sort partition of
    /// agents by source-node tile so its offset/target gathers stay
    /// within one L2-sized tile at a time.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length; implementations may panic
    /// on out-of-range entries.
    fn apply_moves_blocked(&self, positions: &mut [u32], moves: &[u32], scratch: &mut MoveScratch) {
        let _ = scratch;
        self.apply_moves(positions, moves);
    }

    /// If every node has the same degree, that degree.
    ///
    /// Regularity matters: the paper's unbiasedness argument (Lemma 2)
    /// requires the uniform distribution to be stationary, which holds
    /// exactly for regular graphs. The default scans all nodes; structured
    /// topologies override with O(1) answers.
    fn regular_degree(&self) -> Option<usize> {
        let d0 = self.degree(0);
        for v in 1..self.num_nodes() {
            if self.degree(v) != d0 {
                return None;
            }
        }
        Some(d0)
    }

    /// Iterator over the moves at `v` (with multiplicity).
    fn neighbors(&self, v: NodeId) -> NeighborIter<'_>
    where
        Self: Sized,
    {
        NeighborIter {
            topo: self,
            v,
            i: 0,
            d: self.degree(v),
        }
    }
}

/// Reusable buffers for [`Topology::apply_moves_blocked`]: the tile
/// histogram, write cursors, and the tile-partitioned `(position, agent)`
/// key array of a counting sort. One instance amortizes its allocations
/// across every round of a run; `Default` starts empty and implementations
/// size the buffers on first use.
#[derive(Debug, Clone, Default)]
pub struct MoveScratch {
    /// Agents per node tile (counting-sort histogram).
    pub(crate) tile_counts: Vec<u32>,
    /// Per-tile write cursor (exclusive prefix sum of `tile_counts`).
    pub(crate) cursors: Vec<u32>,
    /// Tile-ordered keys packing `(position << 32) | agent_index`.
    pub(crate) keys: Vec<u64>,
}

impl MoveScratch {
    /// An empty scratch; buffers grow on first blocked apply.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Iterator over a node's incident moves. Created by
/// [`Topology::neighbors`].
pub struct NeighborIter<'a> {
    topo: &'a dyn Topology,
    v: NodeId,
    i: usize,
    d: usize,
}

impl std::fmt::Debug for NeighborIter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NeighborIter")
            .field("v", &self.v)
            .field("i", &self.i)
            .field("d", &self.d)
            .finish()
    }
}

impl Iterator for NeighborIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.i < self.d {
            let n = self.topo.neighbor(self.v, self.i);
            self.i += 1;
            Some(n)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.d - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

/// Blanket impl so `&T` is itself a topology (lets generic code borrow).
impl<T: Topology + ?Sized> Topology for &T {
    fn num_nodes(&self) -> u64 {
        (**self).num_nodes()
    }
    fn degree(&self, v: NodeId) -> usize {
        (**self).degree(v)
    }
    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        (**self).neighbor(v, i)
    }
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        (**self).apply_moves(positions, moves)
    }
    fn apply_moves_blocked(&self, positions: &mut [u32], moves: &[u32], scratch: &mut MoveScratch) {
        (**self).apply_moves_blocked(positions, moves, scratch)
    }
    fn regular_degree(&self) -> Option<usize> {
        (**self).regular_degree()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A triangle with an extra pendant vertex: 0-1, 1-2, 2-0, 2-3.
    struct Paw;

    impl Topology for Paw {
        fn num_nodes(&self) -> u64 {
            4
        }
        fn degree(&self, v: NodeId) -> usize {
            match v {
                0 | 1 => 2,
                2 => 3,
                3 => 1,
                _ => panic!("node {v} out of range"),
            }
        }
        fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
            const N: [&[NodeId]; 4] = [&[1, 2], &[0, 2], &[0, 1, 3], &[2]];
            N[v as usize][i]
        }
    }

    #[test]
    fn default_regular_degree_detects_irregular() {
        assert_eq!(Paw.regular_degree(), None);
    }

    #[test]
    fn neighbors_iterator_yields_all() {
        let ns: Vec<NodeId> = Paw.neighbors(2).collect();
        assert_eq!(ns, vec![0, 1, 3]);
        assert_eq!(Paw.neighbors(3).len(), 1);
    }

    #[test]
    fn random_neighbor_is_a_neighbor() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            let n = Paw.random_neighbor(2, &mut rng);
            assert!([0, 1, 3].contains(&n));
        }
    }

    #[test]
    fn uniform_node_in_range() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(Paw.uniform_node(&mut rng) < 4);
        }
    }

    #[test]
    fn reference_impl_delegates() {
        let r = &Paw;
        assert_eq!(Topology::num_nodes(&r), 4);
        assert_eq!(Topology::degree(&r, 2), 3);
        assert_eq!(Topology::neighbor(&r, 2, 2), 3);
    }
}
