//! General undirected graphs in compressed-sparse-row form.
//!
//! The network-size application (Section 5.1) runs on irregular graphs
//! accessed through neighborhood queries. [`AdjGraph`] stores an
//! undirected simple graph in CSR layout and exposes the degree statistics
//! the paper's bounds need (`deḡ`, `deg_min`, `Σ deg²` for the KLSC14
//! comparison) plus the structural checks (connectivity, bipartiteness)
//! that decide whether random-walk estimation is applicable at all.

use crate::topology::{NodeId, Topology};

/// An undirected simple graph (no self-loops, no parallel edges) in CSR
/// form.
///
/// # Example
///
/// ```
/// use antdensity_graphs::{AdjGraph, Topology};
///
/// // a triangle
/// let g = AdjGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert_eq!(g.degree(0), 2);
/// assert!(g.is_connected());
/// assert!(!g.is_bipartite());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdjGraph {
    /// offsets[v]..offsets[v+1] indexes `targets` for node v.
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

/// Errors building an [`AdjGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildGraphError {
    /// The requested node count was zero.
    NoNodes,
    /// An edge endpoint referenced a node `>= n`.
    EndpointOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The node count.
        n: u64,
    },
    /// An edge connected a node to itself.
    SelfLoop(
        /// The node with the loop.
        NodeId,
    ),
    /// The same undirected edge appeared more than once.
    DuplicateEdge(
        /// One endpoint.
        NodeId,
        /// The other endpoint.
        NodeId,
    ),
    /// A node would have degree zero (random walks get stuck).
    IsolatedNode(
        /// The isolated node.
        NodeId,
    ),
}

impl std::fmt::Display for BuildGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoNodes => write!(f, "graph must have at least one node"),
            Self::EndpointOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            Self::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            Self::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            Self::IsolatedNode(v) => write!(f, "node {v} has no edges"),
        }
    }
}

impl std::error::Error for BuildGraphError {}

impl AdjGraph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildGraphError`] if `n == 0`, an endpoint is out of
    /// range, an edge is a self-loop or duplicated, or any node ends up
    /// isolated.
    pub fn from_edges(n: u64, edges: &[(NodeId, NodeId)]) -> Result<Self, BuildGraphError> {
        if n == 0 {
            return Err(BuildGraphError::NoNodes);
        }
        let nu = usize::try_from(n).expect("node count fits usize");
        let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u >= n {
                return Err(BuildGraphError::EndpointOutOfRange { node: u, n });
            }
            if v >= n {
                return Err(BuildGraphError::EndpointOutOfRange { node: v, n });
            }
            if u == v {
                return Err(BuildGraphError::SelfLoop(u));
            }
            canon.push((u.min(v), u.max(v)));
        }
        canon.sort_unstable();
        for w in canon.windows(2) {
            if w[0] == w[1] {
                return Err(BuildGraphError::DuplicateEdge(w[0].0, w[0].1));
            }
        }
        let mut degrees = vec![0usize; nu];
        for &(u, v) in &canon {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        if let Some(v) = degrees.iter().position(|&d| d == 0) {
            return Err(BuildGraphError::IsolatedNode(v as NodeId));
        }
        let mut offsets = Vec::with_capacity(nu + 1);
        offsets.push(0usize);
        for v in 0..nu {
            offsets.push(offsets[v] + degrees[v]);
        }
        let mut targets = vec![0 as NodeId; offsets[nu]];
        let mut cursor = offsets.clone();
        for &(u, v) in &canon {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        Ok(Self { offsets, targets })
    }

    /// Number of undirected edges `|E|`.
    pub fn num_edges(&self) -> u64 {
        (self.targets.len() / 2) as u64
    }

    /// Slice of neighbors of `v` (sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors_slice(&self, v: NodeId) -> &[NodeId] {
        let vu = v as usize;
        assert!(vu + 1 < self.offsets.len(), "node {v} out of range");
        &self.targets[self.offsets[vu]..self.offsets[vu + 1]]
    }

    /// Whether edge `(u, v)` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_slice(u).binary_search(&v).is_ok()
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .min()
            .expect("graph is non-empty")
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .expect("graph is non-empty")
    }

    /// Average degree `deḡ = 2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        self.targets.len() as f64 / self.num_nodes() as f64
    }

    /// `Σ_v deg(v)²` — appears in the KLSC14 sample-size requirement that
    /// Section 5.1.5 compares against.
    pub fn sum_degree_squared(&self) -> f64 {
        (0..self.num_nodes())
            .map(|v| {
                let d = self.degree(v) as f64;
                d * d
            })
            .sum()
    }

    /// Whether the graph is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes() as usize;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0 as NodeId);
        let mut count = 1usize;
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors_slice(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    count += 1;
                    queue.push_back(u);
                }
            }
        }
        count == n
    }

    /// Whether the graph is bipartite (BFS 2-coloring).
    ///
    /// Random walks on bipartite graphs never mix to the stationary
    /// distribution (period 2); Section 5.1 assumes non-bipartite inputs
    /// and Section 4.5 handles the hypercube case specially.
    pub fn is_bipartite(&self) -> bool {
        let n = self.num_nodes() as usize;
        let mut color = vec![u8::MAX; n];
        for start in 0..n {
            if color[start] != u8::MAX {
                continue;
            }
            color[start] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(start as NodeId);
            while let Some(v) = queue.pop_front() {
                let c = color[v as usize];
                for &u in self.neighbors_slice(v) {
                    if color[u as usize] == u8::MAX {
                        color[u as usize] = 1 - c;
                        queue.push_back(u);
                    } else if color[u as usize] == c {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Samples a node from the stationary distribution of the random walk
    /// (`π(v) = deg(v)/2|E|`) in O(1): a uniformly random entry of the CSR
    /// target array mentions node `u` exactly `deg(u)` times.
    ///
    /// The network-size application (Section 5.1) idealises walk starts as
    /// stationary samples before analysing burn-in separately.
    pub fn sample_stationary(&self, rng: &mut dyn rand::RngCore) -> NodeId {
        use rand::Rng;
        let idx = rng.gen_range(0..self.targets.len());
        self.targets[idx]
    }

    /// Materialises any [`Topology`] as an `AdjGraph` (deduplicating move
    /// multiplicities). Useful for cross-validating structured topologies
    /// against the generic machinery.
    ///
    /// # Errors
    ///
    /// Returns an error if the topology contains only self-loops at some
    /// node (isolated after simplification) — e.g. a side-1 torus.
    pub fn from_topology<T: Topology>(topo: &T) -> Result<Self, BuildGraphError> {
        let n = topo.num_nodes();
        let mut edges = Vec::new();
        for v in 0..n {
            for i in 0..topo.degree(v) {
                let u = topo.neighbor(v, i);
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Self::from_edges(n, &edges)
    }
}

impl Topology for AdjGraph {
    fn num_nodes(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    fn degree(&self, v: NodeId) -> usize {
        let vu = v as usize;
        assert!(vu + 1 < self.offsets.len(), "node {v} out of range");
        self.offsets[vu + 1] - self.offsets[vu]
    }

    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        let ns = self.neighbors_slice(v);
        assert!(i < ns.len(), "move index {i} out of range");
        ns[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> AdjGraph {
        AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap()
    }

    #[test]
    fn builds_and_reports_degrees() {
        let g = square();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        for v in 0..4 {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.min_degree(), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.sum_degree_squared(), 16.0);
    }

    #[test]
    fn neighbors_sorted_and_edge_lookup() {
        let g = AdjGraph::from_edges(4, &[(2, 0), (0, 1), (3, 0)]).unwrap();
        assert_eq!(g.neighbors_slice(0), &[1, 2, 3]);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn connectivity_detection() {
        assert!(square().is_connected());
        let disconnected = AdjGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn bipartiteness_detection() {
        assert!(square().is_bipartite()); // even cycle
        let triangle = AdjGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(!triangle.is_bipartite()); // odd cycle
        let odd5 = AdjGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert!(!odd5.is_bipartite());
    }

    #[test]
    fn error_cases() {
        assert_eq!(AdjGraph::from_edges(0, &[]), Err(BuildGraphError::NoNodes));
        assert_eq!(
            AdjGraph::from_edges(2, &[(0, 2)]),
            Err(BuildGraphError::EndpointOutOfRange { node: 2, n: 2 })
        );
        assert_eq!(
            AdjGraph::from_edges(2, &[(1, 1)]),
            Err(BuildGraphError::SelfLoop(1))
        );
        assert_eq!(
            AdjGraph::from_edges(2, &[(0, 1), (1, 0)]),
            Err(BuildGraphError::DuplicateEdge(0, 1))
        );
        assert_eq!(
            AdjGraph::from_edges(3, &[(0, 1)]),
            Err(BuildGraphError::IsolatedNode(2))
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = AdjGraph::from_edges(2, &[(1, 1)]).unwrap_err();
        assert!(e.to_string().contains("self-loop"));
    }

    #[test]
    fn regular_degree_via_default_impl() {
        assert_eq!(square().regular_degree(), Some(2));
        let star = AdjGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(star.regular_degree(), None);
    }

    #[test]
    fn from_topology_matches_torus() {
        use crate::torus::Torus2d;
        let torus = Torus2d::new(4);
        let g = AdjGraph::from_topology(&torus).unwrap();
        assert_eq!(g.num_nodes(), 16);
        // 4-regular without duplicate moves (side 4 > 2).
        assert_eq!(g.regular_degree(), Some(4));
        assert_eq!(g.num_edges(), 32);
        assert!(g.is_connected());
        assert!(g.is_bipartite());
        // every torus edge is present
        for v in 0..torus.num_nodes() {
            for u in torus.neighbors(v) {
                assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn from_topology_rejects_degenerate() {
        use crate::torus::Torus2d;
        // side-1 torus has only self-loops -> isolated after simplification
        let t = Torus2d::new(1);
        assert!(AdjGraph::from_topology(&t).is_err());
    }
}
