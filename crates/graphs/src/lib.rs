//! Graph substrate for the `antdensity` reproduction of
//! *Ant-Inspired Density Estimation via Random Walks* (Musco, Su, Lynch).
//!
//! The paper analyses random-walk collision statistics on a family of
//! graph topologies:
//!
//! * the **two-dimensional torus** — the main stage (Sections 2–3),
//! * the **ring** (1-d torus, Section 4.2),
//! * **k-dimensional tori** for k ≥ 3 (Section 4.3),
//! * **regular expanders** (Section 4.4),
//! * **hypercubes** (Section 4.5),
//! * the **complete graph** — the idealised i.i.d. baseline (Section 1.1),
//! * and arbitrary **irregular graphs** for the network-size application
//!   (Section 5.1), built here by standard generators (Erdős–Rényi,
//!   Barabási–Albert, Watts–Strogatz, random regular).
//!
//! Everything implements the [`Topology`] trait (nodes are dense `u64`
//! ids), so the simulation engine and estimators are topology-generic.
//!
//! The [`dist`] module evolves walk distributions *exactly* (sparse
//! matrix–vector products), which lets the experiment harness verify the
//! paper's re-collision bounds (Lemmas 4, 9, 20, 22, 23, 25) without
//! Monte-Carlo noise. The [`spectral`] module estimates the walk-matrix
//! eigenvalue `λ = max(|λ₂|, |λ_A|)` that drives the expander bound
//! (Lemma 23/24) and the burn-in analysis (Section 5.1.4).
//!
//! # Example
//!
//! ```
//! use antdensity_graphs::{Topology, Torus2d};
//! use rand::SeedableRng;
//! use rand::rngs::SmallRng;
//!
//! let torus = Torus2d::new(16); // 16 x 16, A = 256
//! assert_eq!(torus.num_nodes(), 256);
//! let mut rng = SmallRng::seed_from_u64(1);
//! let v = torus.uniform_node(&mut rng);
//! let w = torus.random_neighbor(v, &mut rng);
//! assert_eq!(torus.torus_distance(v, w), 1);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adjacency;
pub mod complete;
pub mod csr;
pub mod dist;
pub mod fastdiv;
pub mod generators;
pub mod hypercube;
pub mod spectral;
pub mod topology;
pub mod torus;

pub use adjacency::AdjGraph;
pub use complete::CompleteGraph;
pub use csr::CsrGraph;
pub use dist::WalkDistribution;
pub use fastdiv::FastDiv;
pub use hypercube::Hypercube;
pub use topology::{MoveScratch, NodeId, Topology};
pub use torus::{Ring, Torus2d, TorusKd};
