//! Spectral quantities of the random-walk matrix.
//!
//! The expander bound (Lemma 23/24) and the burn-in analysis (Section
//! 5.1.4) are parameterised by `λ = max(|λ₂|, |λ_A|)` of the walk matrix
//! `W = D⁻¹A`. We estimate λ by power iteration on the symmetrised matrix
//! `S = D^{−1/2} A D^{−1/2}` (similar to `W`, hence same spectrum) after
//! deflating its known top eigenvector `φ₁(v) ∝ √deg(v)`.

use crate::adjacency::AdjGraph;
use crate::dist::WalkDistribution;
use crate::topology::Topology;
use rand::Rng;

/// Result of a spectral estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralEstimate {
    /// Estimated `λ = max(|λ₂|, |λ_A|)` of the walk matrix.
    pub lambda: f64,
    /// Number of power iterations performed.
    pub iterations: u32,
    /// Relative change of the estimate in the final iteration.
    pub residual: f64,
}

impl SpectralEstimate {
    /// The spectral gap `1 − λ` (clamped at 0).
    pub fn gap(&self) -> f64 {
        (1.0 - self.lambda).max(0.0)
    }

    /// Numeric mixing-time upper bound from the measured eigenvalue:
    /// `t_mix(eps) ≤ ln(nodes/eps) / (1 − λ)` for a reversible walk
    /// whose stationary distribution is at least `1/nodes` everywhere
    /// (regular graphs exactly; near-regular graphs approximately).
    /// Returns `None` when the measured gap is (numerically) zero —
    /// bipartite or disconnected graphs never mix.
    pub fn mixing_time_bound(&self, nodes: u64, eps: f64) -> Option<f64> {
        assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
        let gap = self.gap();
        if gap < 1e-9 {
            return None;
        }
        Some((nodes as f64 / eps).ln() / gap)
    }
}

/// Estimates `λ = max(|λ₂|, |λ_A|)` of the walk matrix of `graph` by
/// deflated power iteration.
///
/// Generic over any [`Topology`] — structured tori, [`AdjGraph`], and
/// [`crate::CsrGraph`] all work, with neighbor multiplicities entering
/// the walk matrix exactly as they enter the walk itself. This is the
/// numeric fallback the theory layer uses when a topology has no
/// closed-form re-collision envelope: measure λ, apply the expander
/// bound (Lemma 23/24) with it.
///
/// `λ = 1` (up to tolerance) signals a bipartite or disconnected graph —
/// random walks on it never mix.
///
/// # Panics
///
/// Panics if `max_iters == 0`.
pub fn walk_matrix_lambda<T: Topology, R: Rng + ?Sized>(
    graph: &T,
    max_iters: u32,
    rng: &mut R,
) -> SpectralEstimate {
    // Top eigenvector of S: phi(v) = sqrt(deg v), normalised.
    let mut phi: Vec<f64> = (0..graph.num_nodes())
        .map(|v| (graph.degree(v) as f64).sqrt())
        .collect();
    normalize(&mut phi);
    power_iterate(graph, &[phi], max_iters, rng)
}

/// The **decay rate** of the walk's non-structural modes: the largest
/// `|λ|` after deflating the stationary eigenvector *and*, on bipartite
/// graphs, the parity eigenvector `ψ(v) = ±√deg(v)` (eigenvalue −1).
///
/// On non-bipartite graphs this equals [`walk_matrix_lambda`]. On
/// bipartite graphs the plain estimate saturates at `λ = 1` even though
/// *co-located* walkers still separate and re-meet (they share parity,
/// so the −1 mode only contributes the `1/A`-scale floor that the
/// re-collision envelopes carry as a separate term — the paper's
/// hypercube treatment, Lemma 25, is the closed-form instance of the
/// same observation). This is therefore the right λ to feed the
/// expander envelope on masked-lattice graphs, which are bipartite by
/// construction (subgraphs of the grid).
///
/// # Panics
///
/// Panics if `max_iters == 0`.
pub fn effective_lambda<T: Topology, R: Rng + ?Sized>(
    graph: &T,
    max_iters: u32,
    rng: &mut R,
) -> SpectralEstimate {
    let mut phi: Vec<f64> = (0..graph.num_nodes())
        .map(|v| (graph.degree(v) as f64).sqrt())
        .collect();
    normalize(&mut phi);
    match bipartite_signs(graph) {
        Some(signs) => {
            let mut psi: Vec<f64> = phi
                .iter()
                .zip(&signs)
                .map(|(p, &s)| p * f64::from(s))
                .collect();
            normalize(&mut psi);
            power_iterate(graph, &[phi, psi], max_iters, rng)
        }
        None => power_iterate(graph, &[phi], max_iters, rng),
    }
}

/// BFS 2-coloring over every component: `Some(±1 per node)` when the
/// graph is bipartite, `None` otherwise (including self-loop moves).
fn bipartite_signs<T: Topology>(graph: &T) -> Option<Vec<i8>> {
    let n = graph.num_nodes() as usize;
    let mut sign = vec![0i8; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if sign[start] != 0 {
            continue;
        }
        sign[start] = 1;
        queue.push_back(start as u64);
        while let Some(v) = queue.pop_front() {
            let sv = sign[v as usize];
            for u in graph.neighbors(v) {
                let su = &mut sign[u as usize];
                if *su == 0 {
                    *su = -sv;
                    queue.push_back(u);
                } else if *su == sv {
                    return None;
                }
            }
        }
    }
    Some(sign)
}

/// Deflated power iteration on `S = D^{−1/2} A D^{−1/2}`: the largest
/// `|λ|` orthogonal to every vector in `deflators` (which must be
/// normalised).
///
/// # Panics
///
/// Panics if `max_iters == 0`.
fn power_iterate<T: Topology, R: Rng + ?Sized>(
    graph: &T,
    deflators: &[Vec<f64>],
    max_iters: u32,
    rng: &mut R,
) -> SpectralEstimate {
    assert!(max_iters > 0, "need at least one iteration");
    let n = graph.num_nodes() as usize;
    if n <= deflators.len() {
        // the deflated subspace is empty: no non-structural modes
        return SpectralEstimate {
            lambda: 0.0,
            iterations: 0,
            residual: 0.0,
        };
    }
    let deflate_all = |x: &mut [f64]| {
        for d in deflators {
            deflate(x, d);
        }
    };
    // Random start, deflated.
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    deflate_all(&mut x);
    normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0f64;
    let mut residual = f64::INFINITY;
    let mut iters = 0;
    for it in 0..max_iters {
        iters = it + 1;
        matvec_sym(graph, &x, &mut y);
        deflate_all(&mut y);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-300 {
            // x was (numerically) in the kernel; restart from fresh noise.
            for v in x.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
            deflate_all(&mut x);
            normalize(&mut x);
            continue;
        }
        let new_lambda = norm; // since ||x|| = 1
        residual = ((new_lambda - lambda) / new_lambda.max(1e-300)).abs();
        lambda = new_lambda;
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        if residual < 1e-10 && it > 10 {
            break;
        }
    }
    SpectralEstimate {
        lambda: lambda.min(1.0),
        iterations: iters,
        residual,
    }
}

/// `y = S x` with `S = D^{−1/2} A D^{−1/2}` (A with move multiplicity).
fn matvec_sym<T: Topology>(graph: &T, x: &[f64], y: &mut [f64]) {
    y.iter_mut().for_each(|v| *v = 0.0);
    for v in 0..graph.num_nodes() {
        let dv = graph.degree(v) as f64;
        let xv = x[v as usize];
        if xv == 0.0 {
            continue;
        }
        for u in graph.neighbors(v) {
            let du = graph.degree(u) as f64;
            y[u as usize] += xv / (dv * du).sqrt();
        }
    }
}

fn deflate(x: &mut [f64], phi: &[f64]) {
    let dot: f64 = x.iter().zip(phi).map(|(a, b)| a * b).sum();
    for (xi, pi) in x.iter_mut().zip(phi) {
        *xi -= dot * pi;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(norm > 0.0, "cannot normalise the zero vector");
    x.iter_mut().for_each(|v| *v /= norm);
}

/// Measures the number of steps until a walk started at `start` is within
/// total-variation distance `eps` of the stationary distribution, by exact
/// distribution evolution. Returns `None` if not reached in `max_steps`
/// (e.g. bipartite graphs never mix).
///
/// # Panics
///
/// Panics if `eps ∉ (0, 1)`.
pub fn mixing_time_from(graph: &AdjGraph, start: u64, eps: f64, max_steps: u64) -> Option<u64> {
    assert!(eps > 0.0 && eps < 1.0, "eps must lie in (0,1)");
    let stationary = WalkDistribution::stationary(graph);
    let mut dist = WalkDistribution::point(graph, start);
    if dist.tv_distance(&stationary) <= eps {
        return Some(0);
    }
    for m in 1..=max_steps {
        dist.step(graph);
        if dist.tv_distance(&stationary) <= eps {
            return Some(m);
        }
    }
    None
}

/// TV distance to stationarity after `m` steps from `start` — the burn-in
/// diagnostic of Section 5.1.4.
pub fn tv_after<T: Topology>(graph: &AdjGraph, _marker: &T, start: u64, m: u64) -> f64 {
    let stationary = WalkDistribution::stationary(graph);
    let mut dist = WalkDistribution::point(graph, start);
    dist.evolve(graph, m);
    dist.tv_distance(&stationary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_adj, cycle_graph, random_regular, star_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_lambda_is_one_over_n_minus_one() {
        // Walk matrix of K_n (no self-loops): lambda_2 = ... = -1/(n-1).
        let g = complete_adj(10);
        let mut rng = SmallRng::seed_from_u64(1);
        let est = walk_matrix_lambda(&g, 2000, &mut rng);
        assert!(
            (est.lambda - 1.0 / 9.0).abs() < 1e-6,
            "lambda {} should be 1/9",
            est.lambda
        );
    }

    #[test]
    fn odd_cycle_lambda_is_cos_pi_over_n() {
        // C_5 eigenvalues are cos(2 pi k / 5); the largest magnitude below 1
        // is |cos(4 pi / 5)| = cos(pi/5) ~ 0.809017.
        let g = cycle_graph(5);
        let mut rng = SmallRng::seed_from_u64(2);
        let est = walk_matrix_lambda(&g, 5000, &mut rng);
        assert!(
            (est.lambda - (std::f64::consts::PI / 5.0).cos()).abs() < 1e-5,
            "lambda {}",
            est.lambda
        );
    }

    #[test]
    fn bipartite_star_has_lambda_one() {
        let g = star_graph(8);
        let mut rng = SmallRng::seed_from_u64(3);
        let est = walk_matrix_lambda(&g, 2000, &mut rng);
        assert!(
            est.lambda > 0.999,
            "bipartite lambda {} must be ~1",
            est.lambda
        );
        assert!(est.gap() < 1e-3);
    }

    #[test]
    fn random_regular_graph_is_an_expander() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = random_regular(200, 8, 500, &mut rng).unwrap();
        let est = walk_matrix_lambda(&g, 2000, &mut rng);
        // Friedman: lambda ~ 2 sqrt(d-1)/d + o(1) ~ 0.66 for d = 8.
        assert!(est.lambda < 0.85, "regular graph lambda {}", est.lambda);
        assert!(
            est.lambda > 0.3,
            "lambda suspiciously small: {}",
            est.lambda
        );
    }

    #[test]
    fn mixing_time_fast_on_complete_graph() {
        let g = complete_adj(20);
        let t = mixing_time_from(&g, 0, 0.01, 100).expect("must mix");
        assert!(t <= 5, "complete graph mixes almost instantly, got {t}");
    }

    #[test]
    fn mixing_time_none_on_bipartite() {
        let g = star_graph(6);
        assert_eq!(mixing_time_from(&g, 1, 0.01, 1000), None);
    }

    #[test]
    fn mixing_time_monotone_in_eps() {
        let g = cycle_graph(15);
        let loose = mixing_time_from(&g, 0, 0.2, 10_000).unwrap();
        let tight = mixing_time_from(&g, 0, 0.01, 10_000).unwrap();
        assert!(tight >= loose);
    }

    #[test]
    fn lambda_predicts_tv_decay_on_odd_cycle() {
        // TV(m) decays roughly like lambda^m for reversible chains.
        let g = cycle_graph(9);
        let mut rng = SmallRng::seed_from_u64(5);
        let lambda = walk_matrix_lambda(&g, 5000, &mut rng).lambda;
        let stationary = WalkDistribution::stationary(&g);
        let mut dist = WalkDistribution::point(&g, 0);
        dist.evolve(&g, 50);
        let tv50 = dist.tv_distance(&stationary);
        dist.evolve(&g, 50);
        let tv100 = dist.tv_distance(&stationary);
        let measured_ratio = (tv100 / tv50).powf(1.0 / 50.0);
        assert!(
            (measured_ratio - lambda).abs() < 0.05,
            "decay rate {measured_ratio} vs lambda {lambda}"
        );
    }

    #[test]
    fn generic_lambda_agrees_between_adj_and_csr_and_structured() {
        // same graph, three representations, one spectrum
        let cycle = crate::torus::Ring::new(9);
        let adj = AdjGraph::from_topology(&cycle).unwrap();
        let csr = crate::csr::CsrGraph::from_topology(&cycle);
        let l_adj = walk_matrix_lambda(&adj, 3000, &mut SmallRng::seed_from_u64(6)).lambda;
        let l_csr = walk_matrix_lambda(&csr, 3000, &mut SmallRng::seed_from_u64(6)).lambda;
        let l_ring = walk_matrix_lambda(&cycle, 3000, &mut SmallRng::seed_from_u64(6)).lambda;
        assert!((l_adj - l_csr).abs() < 1e-9, "{l_adj} vs {l_csr}");
        assert!((l_adj - l_ring).abs() < 1e-9, "{l_adj} vs {l_ring}");
        // C_9 eigenvalues are cos(2 pi k / 9); the largest magnitude
        // below 1 is |cos(8 pi / 9)| = cos(pi / 9).
        let expect = (std::f64::consts::PI / 9.0).cos();
        assert!((l_adj - expect).abs() < 1e-5, "{l_adj} vs {expect}");
    }

    #[test]
    fn mixing_time_bound_tracks_measured_mixing() {
        let g = cycle_graph(15);
        let mut rng = SmallRng::seed_from_u64(8);
        let est = walk_matrix_lambda(&g, 5000, &mut rng);
        let bound = est.mixing_time_bound(15, 0.01).expect("odd cycle mixes");
        let measured = mixing_time_from(&g, 0, 0.01, 10_000).expect("must mix") as f64;
        assert!(bound >= measured, "bound {bound} below measured {measured}");
        assert!(bound < 40.0 * measured, "bound {bound} uselessly loose");
    }

    #[test]
    fn mixing_time_bound_none_without_gap() {
        let g = star_graph(6); // bipartite: lambda = 1, gap = 0
        let mut rng = SmallRng::seed_from_u64(9);
        let est = walk_matrix_lambda(&g, 2000, &mut rng);
        assert_eq!(est.mixing_time_bound(6, 0.1), None);
    }

    #[test]
    fn effective_lambda_deflates_the_bipartite_parity_mode() {
        // Even cycle C_16: bipartite, so the plain estimate saturates at
        // 1, while the effective estimate reports the true decay mode
        // cos(2 pi / 16).
        let g = cycle_graph(16);
        let plain = walk_matrix_lambda(&g, 4000, &mut SmallRng::seed_from_u64(21));
        assert!(
            plain.lambda > 0.999,
            "bipartite plain lambda {}",
            plain.lambda
        );
        let eff = effective_lambda(&g, 4000, &mut SmallRng::seed_from_u64(21));
        let expect = (2.0 * std::f64::consts::PI / 16.0).cos();
        assert!(
            (eff.lambda - expect).abs() < 1e-5,
            "effective lambda {} vs cos(2pi/16) = {expect}",
            eff.lambda
        );
    }

    #[test]
    fn effective_lambda_equals_plain_on_non_bipartite() {
        let g = cycle_graph(9);
        let a = walk_matrix_lambda(&g, 4000, &mut SmallRng::seed_from_u64(22));
        let b = effective_lambda(&g, 4000, &mut SmallRng::seed_from_u64(22));
        assert_eq!(a, b);
    }

    #[test]
    fn effective_lambda_responds_to_grid_holes() {
        // Masked lattices are bipartite (grid subgraphs): the effective
        // estimate stays strictly informative where the plain one
        // saturates.
        let mut mask_rng = SmallRng::seed_from_u64(23);
        let holed = crate::generators::grid_with_holes(12, 0.3, &mut mask_rng).unwrap();
        let plain = walk_matrix_lambda(&holed, 4000, &mut SmallRng::seed_from_u64(24));
        assert!(plain.lambda > 0.999, "grid subgraph must be bipartite");
        let eff = effective_lambda(&holed, 4000, &mut SmallRng::seed_from_u64(24));
        assert!(
            eff.lambda < 0.9999 && eff.lambda > 0.5,
            "effective lambda {} should reflect slow-but-real mixing",
            eff.lambda
        );
    }

    #[test]
    fn degenerate_deflation_reports_zero() {
        // path on 2 nodes: bipartite with n == number of deflators
        let g = crate::generators::path_graph(2);
        let eff = effective_lambda(&g, 100, &mut SmallRng::seed_from_u64(25));
        assert_eq!(eff.lambda, 0.0);
    }

    #[test]
    fn estimate_is_deterministic_given_seed() {
        let g = cycle_graph(7);
        let a = walk_matrix_lambda(&g, 500, &mut SmallRng::seed_from_u64(9));
        let b = walk_matrix_lambda(&g, 500, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
