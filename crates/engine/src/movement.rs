//! Agent movement models.
//!
//! The paper's agents move by **pure random walk** — a uniformly random
//! neighbor each round (Section 2). Section 6.1 discusses extensions this
//! module also provides: staying put with some probability (lazy walks),
//! non-uniform step distributions (perturbed/biased behaviour), and the
//! two deterministic modes used by the independent-sampling Algorithm 4
//! (Appendix A): stationary agents and agents drifting along a fixed
//! direction.

use antdensity_graphs::{NodeId, Topology};
use rand::Rng;
use rand::RngCore;

/// How an agent chooses its move each round.
#[derive(Debug, Clone, PartialEq)]
pub enum MovementModel {
    /// The paper's default: step to a uniformly random neighbor.
    Pure,
    /// With probability `stay_prob` remain in place, otherwise step to a
    /// uniformly random neighbor. (The paper's step set includes `(0,0)`;
    /// a lazy walk also breaks the torus' bipartite periodicity.)
    Lazy {
        /// Probability of staying put in a round.
        stay_prob: f64,
    },
    /// Never move — the "stationary" half of Algorithm 4.
    Stationary,
    /// Always take the move with this index — the "mobile" half of
    /// Algorithm 4 (on [`antdensity_graphs::Torus2d`], index 2 is the
    /// paper's `position + (0, 1)`). Any fixed pattern works, as the
    /// paper notes.
    Drift {
        /// Move index taken every round.
        move_index: usize,
    },
    /// Arbitrary distribution over the moves plus staying put — the
    /// perturbed-step robustness model of Section 6.1. `move_probs[i]` is
    /// the probability of move `i`; the remainder `1 − Σ move_probs` is
    /// the stay probability. Requires a regular topology whose degree
    /// equals `move_probs.len()`.
    Biased {
        /// Probability of each move index; must sum to at most 1.
        move_probs: Vec<f64>,
    },
}

impl std::fmt::Display for MovementModel {
    /// Canonical spec-file syntax: `pure`, `lazy:<stay_prob>`,
    /// `stationary`, `drift:<move_index>`, `biased:<p0>,<p1>,…`.
    /// Round-trips through [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Pure => write!(f, "pure"),
            Self::Lazy { stay_prob } => write!(f, "lazy:{stay_prob}"),
            Self::Stationary => write!(f, "stationary"),
            Self::Drift { move_index } => write!(f, "drift:{move_index}"),
            Self::Biased { move_probs } => {
                write!(f, "biased:")?;
                for (i, p) in move_probs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::str::FromStr for MovementModel {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) syntax (the sweep
    /// spec-file axis format). Validates the same invariants as the
    /// builder methods, returning `Err` instead of panicking.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s {
            "pure" => return Ok(Self::Pure),
            "stationary" => return Ok(Self::Stationary),
            _ => {}
        }
        if let Some(arg) = s.strip_prefix("lazy:") {
            let stay_prob: f64 = arg
                .trim()
                .parse()
                .map_err(|_| format!("movement `{s}`: bad stay probability `{arg}`"))?;
            if !(0.0..=1.0).contains(&stay_prob) {
                return Err(format!("movement `{s}`: stay probability outside [0,1]"));
            }
            return Ok(Self::Lazy { stay_prob });
        }
        if let Some(arg) = s.strip_prefix("drift:") {
            let move_index: usize = arg
                .trim()
                .parse()
                .map_err(|_| format!("movement `{s}`: bad move index `{arg}`"))?;
            return Ok(Self::Drift { move_index });
        }
        if let Some(arg) = s.strip_prefix("biased:") {
            let move_probs: Vec<f64> = arg
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse::<f64>()
                        .map_err(|_| format!("movement `{s}`: bad probability `{p}`"))
                })
                .collect::<Result<_, _>>()?;
            if move_probs.iter().any(|&p| p < 0.0) {
                return Err(format!(
                    "movement `{s}`: probabilities must be non-negative"
                ));
            }
            let total: f64 = move_probs.iter().sum();
            if total > 1.0 + 1e-9 {
                return Err(format!("movement `{s}`: probabilities sum to {total} > 1"));
            }
            return Ok(Self::Biased { move_probs });
        }
        Err(format!(
            "unknown movement `{s}` (expected pure, lazy:<p>, stationary, drift:<i>, biased:<p0>,…)"
        ))
    }
}

impl MovementModel {
    /// A lazy walk staying put with probability `stay_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `stay_prob ∉ [0, 1]`.
    pub fn lazy(stay_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&stay_prob),
            "stay probability must lie in [0,1]"
        );
        Self::Lazy { stay_prob }
    }

    /// A biased walk over move indices; the unassigned remainder of the
    /// probability mass is the stay probability.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or the sum exceeds 1 + 1e-9.
    pub fn biased(move_probs: Vec<f64>) -> Self {
        assert!(
            move_probs.iter().all(|&p| p >= 0.0),
            "move probabilities must be non-negative"
        );
        let total: f64 = move_probs.iter().sum();
        assert!(total <= 1.0 + 1e-9, "move probabilities sum to {total} > 1");
        Self::Biased { move_probs }
    }

    /// Executes one round of movement from `v` on `topo`.
    ///
    /// Generic over both the topology and the RNG: with concrete types
    /// the entire draw (walk step, lazy coin, biased scan) monomorphizes
    /// with zero virtual dispatch, while `&mut dyn RngCore` callers keep
    /// working (`R = dyn RngCore`) and consume the identical bit-stream.
    ///
    /// # Panics
    ///
    /// Panics if a `Drift` index is out of range for `v`'s degree, or a
    /// `Biased` probability vector length differs from `v`'s degree.
    #[inline]
    pub fn step<T: Topology, R: RngCore + ?Sized>(
        &self,
        topo: &T,
        v: NodeId,
        rng: &mut R,
    ) -> NodeId {
        match self {
            Self::Pure => topo.random_neighbor(v, rng),
            Self::Lazy { stay_prob } => {
                if rng.gen_bool(*stay_prob) {
                    v
                } else {
                    topo.random_neighbor(v, rng)
                }
            }
            Self::Stationary => v,
            Self::Drift { move_index } => {
                assert!(
                    *move_index < topo.degree(v),
                    "drift index {move_index} out of range at node {v}"
                );
                topo.neighbor(v, *move_index)
            }
            Self::Biased { move_probs } => {
                assert_eq!(
                    move_probs.len(),
                    topo.degree(v),
                    "biased distribution length must equal degree"
                );
                let u: f64 = rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                for (i, &p) in move_probs.iter().enumerate() {
                    acc += p;
                    if u < acc {
                        return topo.neighbor(v, i);
                    }
                }
                v // residual mass: stay
            }
        }
    }

    /// Whether this model ever moves (used to skip occupancy work for
    /// all-stationary configurations).
    pub fn is_stationary(&self) -> bool {
        match self {
            Self::Stationary => true,
            Self::Lazy { stay_prob } => *stay_prob >= 1.0,
            Self::Biased { move_probs } => move_probs.iter().all(|&p| p == 0.0),
            _ => false,
        }
    }
}

impl Default for MovementModel {
    /// The paper's pure random walk.
    fn default() -> Self {
        Self::Pure
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{Ring, Torus2d};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pure_walk_moves_to_neighbors_uniformly() {
        let t = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        let v = t.node(3, 3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..40_000 {
            let u = MovementModel::Pure.step(&t, v, &mut rng);
            *counts.entry(u).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (&u, &c) in &counts {
            assert_eq!(t.torus_distance(v, u), 1);
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c} for {u}");
        }
    }

    #[test]
    fn lazy_walk_stays_at_expected_rate() {
        let t = Torus2d::new(8);
        let mut rng = SmallRng::seed_from_u64(2);
        let model = MovementModel::lazy(0.3);
        let v = t.node(0, 0);
        let stays = (0..50_000)
            .filter(|_| model.step(&t, v, &mut rng) == v)
            .count();
        let rate = stays as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.01, "stay rate {rate}");
    }

    #[test]
    fn stationary_never_moves() {
        let t = Torus2d::new(4);
        let mut rng = SmallRng::seed_from_u64(3);
        for v in 0..t.num_nodes() {
            assert_eq!(MovementModel::Stationary.step(&t, v, &mut rng), v);
        }
        assert!(MovementModel::Stationary.is_stationary());
    }

    #[test]
    fn drift_follows_fixed_direction() {
        let t = Torus2d::new(5);
        let mut rng = SmallRng::seed_from_u64(4);
        // index 2 is (0, +1) in Torus2d's move ordering
        let model = MovementModel::Drift { move_index: 2 };
        let mut v = t.node(2, 0);
        for expected_y in 1..10u64 {
            v = model.step(&t, v, &mut rng);
            assert_eq!(t.coord(v), (2, expected_y % 5));
        }
    }

    #[test]
    fn biased_walk_respects_distribution() {
        let r = Ring::new(10);
        let mut rng = SmallRng::seed_from_u64(5);
        // 70% clockwise, 10% counter-clockwise, 20% stay
        let model = MovementModel::biased(vec![0.7, 0.1]);
        let v = 5;
        let mut cw = 0;
        let mut ccw = 0;
        let mut stay = 0;
        for _ in 0..100_000 {
            match model.step(&r, v, &mut rng) {
                6 => cw += 1,
                4 => ccw += 1,
                5 => stay += 1,
                other => panic!("impossible destination {other}"),
            }
        }
        assert!((cw as f64 / 1e5 - 0.7).abs() < 0.01);
        assert!((ccw as f64 / 1e5 - 0.1).abs() < 0.01);
        assert!((stay as f64 / 1e5 - 0.2).abs() < 0.01);
    }

    #[test]
    fn biased_all_zero_is_stationary() {
        assert!(MovementModel::biased(vec![0.0, 0.0]).is_stationary());
        assert!(!MovementModel::biased(vec![0.5, 0.5]).is_stationary());
    }

    #[test]
    fn default_is_pure() {
        assert_eq!(MovementModel::default(), MovementModel::Pure);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn biased_rejects_excess_mass() {
        let _ = MovementModel::biased(vec![0.9, 0.3]);
    }

    #[test]
    #[should_panic(expected = "length must equal degree")]
    fn biased_checks_degree() {
        let t = Torus2d::new(4);
        let mut rng = SmallRng::seed_from_u64(6);
        let model = MovementModel::biased(vec![0.5, 0.5]);
        let _ = model.step(&t, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn drift_checks_index() {
        let r = Ring::new(5);
        let mut rng = SmallRng::seed_from_u64(7);
        let _ = MovementModel::Drift { move_index: 2 }.step(&r, 0, &mut rng);
    }
}
