//! The batched simulation engine: struct-of-arrays agent state, dense
//! occupancy, and deterministic parallel stepping on a persistent
//! worker pool.
//!
//! [`Engine`] holds the whole population as flat arrays (positions,
//! movement models, group tags) plus [`DenseOccupancy`]/[`GroupOccupancy`]
//! buffers that are *reset via touched lists* instead of rebuilt from
//! scratch — the cost per round is O(agents), independent of the node
//! count and free of hashing.
//!
//! Two stepping modes:
//!
//! * [`Engine::step_round`] — draws from a caller-supplied RNG in the
//!   legacy `SyncArena` order (the arena delegates here, so pre-engine
//!   seeds reproduce bit-for-bit);
//! * [`Engine::step_round_parallel`] — agents are partitioned into fixed
//!   [`STREAM_BLOCK`]-sized blocks and block `b` of round `r` draws from
//!   an RNG derived from `(seed sequence, round, block index)`. The
//!   stream an agent consumes depends only on its block, never on the
//!   worker that happened to run it, so results are **bit-identical for
//!   any worker count, chunk size, or scheduling order** — the same
//!   contract as `antdensity_walks::parallel::run_trials`. Work is
//!   dispatched in [`EngineConfig::schedule_chunk`]-sized units onto a
//!   persistent [`WorkerPool`] (no per-round thread spawns).
//!
//! Both modes route pure-walk populations on regular topologies through
//! the batched monomorphized kernel
//! ([`crate::step::step_slice_pure_batched`]), which draws the identical
//! RNG stream — the fast path is invisible in results.

use crate::config::{EngineConfig, STREAM_BLOCK};
use crate::movement::MovementModel;
use crate::occupancy::{DenseOccupancy, GroupOccupancy, MAX_NODES};
use crate::pool::WorkerPool;
use crate::sampling::fill_uniform_indices;
use crate::step::{
    step_slice, step_slice_pure_batched, step_slice_pure_batched_timed, Interaction,
};
use antdensity_graphs::{MoveScratch, NodeId, Topology};
use antdensity_stats::rng::SeedSequence;
use antdensity_telemetry as telemetry;
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

// Telemetry metrics for the parallel round path. `step_round` (the
// legacy sequential kernel) stays deliberately uninstrumented so the
// `telemetry_overhead` bench has an untouched comparator.
static ROUND_SPAN: telemetry::SpanMetric = telemetry::SpanMetric::new("engine.round");
static DRAW_SPAN: telemetry::SpanMetric = telemetry::SpanMetric::new("engine.rng_draw");
static APPLY_SPAN: telemetry::SpanMetric = telemetry::SpanMetric::new("engine.apply_moves");
static OCC_SPAN: telemetry::SpanMetric = telemetry::SpanMetric::new("engine.occupancy_rebuild");
static ROUNDS_COUNTER: telemetry::LazyCounter = telemetry::LazyCounter::new("engine.rounds");
static AGENT_STEPS: telemetry::LazyCounter = telemetry::LazyCounter::new("engine.agent_steps");

/// Identifier of an agent within an engine: `0 .. num_agents`.
pub type AgentId = usize;

/// Identifier of a property group.
pub type GroupId = usize;

/// Pre-worker-pool name for the parallel determinism granularity, kept
/// for callers of the original API. The constant it aliases is
/// [`STREAM_BLOCK`]; scheduling is configured separately via
/// [`EngineConfig::schedule_chunk`].
pub const PARALLEL_CHUNK: usize = STREAM_BLOCK;

/// The synchronous multi-agent world of Section 2, batched.
///
/// # Example
///
/// ```
/// use antdensity_engine::Engine;
/// use antdensity_graphs::Torus2d;
/// use rand::SeedableRng;
/// use rand::rngs::SmallRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut engine = Engine::new(Torus2d::new(16), 10);
/// engine.place_uniform(&mut rng);
/// for _ in 0..5 {
///     engine.step_round(&mut rng);
/// }
/// assert_eq!(engine.round(), 5);
/// let total: u32 = (0..10).map(|a| engine.count(a)).sum();
/// assert_eq!(total % 2, 0); // collisions are counted by both parties
/// ```
#[derive(Debug, Clone)]
pub struct Engine<T: Topology> {
    topo: T,
    positions: Vec<u32>,
    movement: Vec<MovementModel>,
    groups: Vec<Option<GroupId>>,
    round: u64,
    occ: DenseOccupancy,
    group_occ: GroupOccupancy,
    interaction: Interaction,
    placed: bool,
    seeds: SeedSequence,
    threads: usize,
    config: EngineConfig,
    pool: Option<Arc<WorkerPool>>,
    /// `regular_degree()` as a sampling span, cached at construction —
    /// `Some` enables the batched pure-walk kernel.
    regular_span: Option<u64>,
    /// Number of agents whose movement model is not `Pure`; the batched
    /// kernel engages only at zero.
    impure_movers: usize,
    /// Whole-round move-index buffer for the cache-blocked mega path
    /// (empty until the first blocked round; reused afterwards).
    moves_scratch: Vec<u32>,
    /// Tile-partition buffers for the blocked gather, likewise reused.
    tile_scratch: MoveScratch,
}

impl<T: Topology> Engine<T> {
    /// Creates an engine with `num_agents` agents, all using the paper's
    /// pure random walk, unplaced until [`Self::place_uniform`] or
    /// [`Self::place_at`].
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0` or the topology has more than
    /// [`MAX_NODES`] nodes.
    pub fn new(topo: T, num_agents: usize) -> Self {
        assert!(num_agents > 0, "arena needs at least one agent");
        let nodes = topo.num_nodes();
        assert!(
            nodes <= MAX_NODES,
            "dense engine supports at most {MAX_NODES} nodes, got {nodes}"
        );
        let regular_span = topo
            .regular_degree()
            .map(|d| d as u64)
            .filter(|&d| d > 0 && d <= (1 << 32));
        Self {
            topo,
            positions: vec![0; num_agents],
            movement: vec![MovementModel::Pure; num_agents],
            groups: vec![None; num_agents],
            round: 0,
            occ: DenseOccupancy::new(nodes),
            group_occ: GroupOccupancy::new(nodes),
            interaction: Interaction::pure(),
            placed: false,
            seeds: SeedSequence::default(),
            threads: 1,
            config: EngineConfig::default(),
            pool: None,
            regular_span,
            impure_movers: 0,
            moves_scratch: Vec::new(),
            tile_scratch: MoveScratch::new(),
        }
    }

    /// Sets the seed sequence that drives [`Self::step_round_parallel`].
    pub fn with_seed_sequence(mut self, seeds: SeedSequence) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the worker count for [`Self::step_round_parallel`]. The
    /// results never depend on this value — only the wall clock does.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Replaces the scheduling configuration. Every setting changes wall
    /// clock only; results are bit-identical for all valid configs (see
    /// [`EngineConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid ([`EngineConfig::validate`]).
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        config.validate();
        self.config = config;
        self
    }

    /// Dispatches parallel rounds onto an explicit [`WorkerPool`] instead
    /// of the process-global one — for embedders that isolate workloads,
    /// and for tests that pin an exact worker count regardless of the
    /// machine. Results are unaffected.
    pub fn with_worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The active scheduling configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The topology agents live on.
    pub fn topology(&self) -> &T {
        &self.topo
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.positions.len()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Population density `d = n/A` under the paper's convention
    /// (Section 2.1): with `n+1` agents present, `d` counts the *other*
    /// agents, so a lone agent sees density 0.
    pub fn density(&self) -> f64 {
        (self.num_agents() as f64 - 1.0) / self.topo.num_nodes() as f64
    }

    /// Places every agent at an independent uniformly random node (the
    /// paper's initial condition) and resets the round counter.
    pub fn place_uniform<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for p in self.positions.iter_mut() {
            *p = self.topo.uniform_node(rng) as u32;
        }
        self.round = 0;
        self.placed = true;
        self.rebuild_occupancy();
    }

    /// Places agents at explicit positions (adversarial configurations)
    /// and resets the round counter.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the agent count or a
    /// position is out of range.
    pub fn place_at(&mut self, positions: &[NodeId]) {
        assert_eq!(
            positions.len(),
            self.positions.len(),
            "position count must equal agent count"
        );
        for &p in positions {
            assert!(p < self.topo.num_nodes(), "position {p} out of range");
        }
        for (slot, &p) in self.positions.iter_mut().zip(positions) {
            *slot = p as u32;
        }
        self.round = 0;
        self.placed = true;
        self.rebuild_occupancy();
    }

    /// Sets one agent's movement model.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn set_movement(&mut self, agent: AgentId, model: MovementModel) {
        let was_pure = matches!(self.movement[agent], MovementModel::Pure);
        let is_pure = matches!(model, MovementModel::Pure);
        match (was_pure, is_pure) {
            (true, false) => self.impure_movers += 1,
            (false, true) => self.impure_movers -= 1,
            _ => {}
        }
        self.movement[agent] = model;
    }

    /// Sets every agent's movement model.
    pub fn set_movement_all(&mut self, model: &MovementModel) {
        self.impure_movers = if matches!(model, MovementModel::Pure) {
            0
        } else {
            self.movement.len()
        };
        for m in self.movement.iter_mut() {
            *m = model.clone();
        }
    }

    /// Declares that groups `0..count` exist (even if some end up empty),
    /// so [`Self::count_in_group`] is queryable for all of them.
    pub fn declare_groups(&mut self, count: usize) {
        self.group_occ.ensure_groups(count);
    }

    /// Assigns `agent` to property `group` (replacing any previous group).
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn assign_group(&mut self, agent: AgentId, group: GroupId) {
        self.groups[agent] = Some(group);
        self.group_occ.ensure_groups(group + 1);
        if self.placed {
            self.group_occ.rebuild(&self.positions, &self.groups);
        }
    }

    /// The group of `agent`, if any.
    pub fn group_of(&self, agent: AgentId) -> Option<GroupId> {
        self.groups[agent]
    }

    /// Number of agents assigned to `group`.
    pub fn group_size(&self, group: GroupId) -> usize {
        self.groups.iter().filter(|g| **g == Some(group)).count()
    }

    /// Number of declared groups.
    pub fn num_groups(&self) -> usize {
        self.group_occ.num_groups()
    }

    /// Current position of `agent`.
    ///
    /// # Panics
    ///
    /// Panics if the engine is unplaced or `agent` out of range.
    pub fn position(&self, agent: AgentId) -> NodeId {
        assert!(self.placed, "arena not placed yet");
        self.positions[agent] as NodeId
    }

    /// Enables Section 6.1 cell avoidance: before committing a move whose
    /// target was occupied at the end of the previous round, the agent
    /// backs off (stays put) with probability `prob`. Pass `None` to
    /// restore the paper's exact model.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is outside `[0, 1]`.
    pub fn set_avoidance(&mut self, prob: Option<f64>) {
        self.interaction.set_avoidance(prob);
    }

    /// Enables Section 6.1 post-encounter dispersal: an agent that shared
    /// its cell with someone at the end of the previous round takes *two*
    /// walk steps this round.
    pub fn set_flee(&mut self, flee: bool) {
        self.interaction.flee = flee;
    }

    /// The active interaction variant.
    pub fn interaction(&self) -> &Interaction {
        &self.interaction
    }

    /// The batched-kernel span, when the fast path applies this round:
    /// the paper's exact model (all agents `Pure`, no interaction
    /// variants) on a regular topology.
    fn pure_batch_span(&self) -> Option<u64> {
        if self.impure_movers == 0 && self.interaction.is_pure() {
            self.regular_span
        } else {
            None
        }
    }

    /// Executes one synchronous round drawing from `rng` in the legacy
    /// `SyncArena` order (sequential over agents), then refreshes the
    /// occupancy index. Generic over the RNG: concrete callers get the
    /// fully monomorphized kernel, `&mut dyn RngCore` callers the same
    /// draws through dynamic dispatch.
    ///
    /// # Panics
    ///
    /// Panics if the engine is unplaced.
    pub fn step_round<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        assert!(self.placed, "place agents before stepping");
        match self.pure_batch_span() {
            Some(span) => step_slice_pure_batched(&self.topo, span, &mut self.positions, rng),
            None => step_slice(
                &self.topo,
                &mut self.positions,
                &self.movement,
                &self.occ,
                &self.interaction,
                rng,
            ),
        }
        self.round += 1;
        self.rebuild_occupancy();
    }

    /// The paper's `count(position)`: number of *other* agents at
    /// `agent`'s node at the end of the current round.
    ///
    /// # Panics
    ///
    /// Panics if the engine is unplaced or `agent` out of range.
    pub fn count(&self, agent: AgentId) -> u32 {
        assert!(self.placed, "arena not placed yet");
        self.occ.count(self.positions[agent] as NodeId) - 1
    }

    /// Number of *other* agents of `group` at `agent`'s node — the
    /// per-type encounter sensing of Section 5.2.
    ///
    /// # Panics
    ///
    /// Panics if the engine is unplaced, or `agent`/`group` out of range.
    pub fn count_in_group(&self, agent: AgentId, group: GroupId) -> u32 {
        assert!(self.placed, "arena not placed yet");
        let p = self.positions[agent] as NodeId;
        let at_node = self.group_occ.count(group, p);
        if self.groups[agent] == Some(group) {
            at_node - 1
        } else {
            at_node
        }
    }

    /// Total agents occupying `node` in the current round.
    pub fn occupancy(&self, node: NodeId) -> u32 {
        self.occ.count(node)
    }

    /// Number of distinct occupied nodes.
    pub fn occupied_nodes(&self) -> usize {
        self.occ.occupied_nodes()
    }

    /// Iterator over `(agent, position)`.
    pub fn agent_positions(&self) -> impl Iterator<Item = (AgentId, NodeId)> + '_ {
        self.positions.iter().map(|&p| p as NodeId).enumerate()
    }

    fn rebuild_occupancy(&mut self) {
        self.occ.rebuild(&self.positions);
        if self.group_occ.num_groups() > 0 {
            self.group_occ.rebuild(&self.positions, &self.groups);
        }
    }
}

/// Steps one contiguous window of agents, one RNG stream per
/// [`STREAM_BLOCK`]-sized block: block `first_block + j` draws from
/// `round_seq.rng(first_block + j)`. This is the unit both the inline
/// loop and every pool task execute — scheduling can regroup windows
/// freely without touching the draw streams.
///
/// With `timed` set (telemetry enabled, decided once per round) the
/// batched fast path routes through its bit-identical timed variant;
/// the returned `(draw_ns, apply_ns)` totals are zero otherwise. The
/// non-batched kernel interleaves draws and moves per agent, so it has
/// no phase split to report under any setting.
#[allow(clippy::too_many_arguments)]
fn step_window<T: Topology>(
    topo: &T,
    positions: &mut [u32],
    movement: &[MovementModel],
    occ: &DenseOccupancy,
    interaction: &Interaction,
    span: Option<u64>,
    first_block: usize,
    round_seq: SeedSequence,
    timed: bool,
) -> (u64, u64) {
    let mut totals = (0u64, 0u64);
    for (j, (block, models)) in positions
        .chunks_mut(STREAM_BLOCK)
        .zip(movement.chunks(STREAM_BLOCK))
        .enumerate()
    {
        let mut rng = round_seq.rng((first_block + j) as u64);
        match span {
            Some(s) if timed => {
                let (d, a) = step_slice_pure_batched_timed(topo, s, block, &mut rng);
                totals.0 += d;
                totals.1 += a;
            }
            Some(s) => step_slice_pure_batched(topo, s, block, &mut rng),
            None => step_slice(topo, block, models, occ, interaction, &mut rng),
        }
    }
    totals
}

/// One schedule chunk's unit of pool work: `(first stream-block index,
/// positions window, movement window)`.
type ChunkWork<'a> = (usize, &'a mut [u32], &'a [MovementModel]);

/// `MIN_CHUNKS_PER_WORKER` of the pre-config engine, used by the
/// [`Engine::step_round_parallel_spawn`] baseline.
const LEGACY_MIN_CHUNKS_PER_WORKER: usize = 4;

/// The machine's available parallelism, probed once. The OS query is a
/// syscall costing ~10µs — the pre-pool engine paid it every round
/// (kept that way in [`Engine::step_round_parallel_spawn`], which
/// replicates the old implementation verbatim as a baseline).
fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

impl<T: Topology + Sync> Engine<T> {
    /// Worker-task count the next [`Self::step_round_parallel`] call
    /// will use: the configured thread count, capped so each worker
    /// gets at least [`EngineConfig::min_chunks_per_worker`] schedule
    /// chunks and no more workers than the executing pool has threads
    /// (the machine's available parallelism when dispatching to the
    /// global pool). `1` means the chunked loop runs inline. Wall
    /// clock only — results never depend on it; benches record it so
    /// measurements are labeled with the parallelism that actually ran.
    pub fn parallel_workers(&self) -> usize {
        let num_chunks = self.positions.len().div_ceil(self.config.schedule_chunk);
        self.effective_workers(num_chunks)
    }

    /// Worker count the [`Self::step_round_parallel_spawn`] baseline
    /// will use — the pre-pool policy, frozen with the baseline: capped
    /// by [`STREAM_BLOCK`] chunk count over the legacy
    /// chunks-per-worker minimum and by the machine's core count
    /// (probed fresh, exactly as the baseline itself does each round —
    /// the cached probe is the pool path's optimization).
    pub fn spawn_workers(&self) -> usize {
        let num_chunks = self.positions.len().div_ceil(STREAM_BLOCK);
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.threads
            .min(num_chunks / LEGACY_MIN_CHUNKS_PER_WORKER)
            .min(cores)
            .max(1)
    }

    fn effective_workers(&self, num_chunks: usize) -> usize {
        // Small populations never pay the pool hand-off: at ~1k agents a
        // whole round is cheaper than waking the workers (the
        // `parallel_scaling` baseline measures 2–8 workers slower than
        // inline there). Results are identical either way.
        if self.positions.len() < self.config.inline_step_threshold {
            return 1;
        }
        let pool_cap = match &self.pool {
            Some(p) => p.threads(),
            None => available_cores(),
        };
        self.threads
            .min(num_chunks / self.config.min_chunks_per_worker)
            .min(pool_cap)
            .max(1)
    }

    /// Executes one synchronous round with deterministic parallelism:
    /// agents are split into fixed [`STREAM_BLOCK`]-sized blocks, block
    /// `b` of round `r` draws from the stream
    /// `seeds.subsequence(r).rng(b)`, and blocks are grouped into
    /// [`EngineConfig::schedule_chunk`]-sized work units distributed
    /// round-robin over tasks on a persistent [`WorkerPool`] (the
    /// process-global pool unless [`Self::with_worker_pool`] installed
    /// one). Output is a pure function of `(state, seed sequence,
    /// round)` — worker count, pool, and chunking are invisible.
    ///
    /// Small populations (fewer than
    /// `min_chunks_per_worker × schedule_chunk` agents per worker) run
    /// the chunked loop inline instead of paying the dispatch hand-off;
    /// the cap changes wall clock only, never results.
    ///
    /// # Panics
    ///
    /// Panics if the engine is unplaced.
    pub fn step_round_parallel(&mut self) {
        assert!(self.placed, "place agents before stepping");
        // The hot path's single telemetry gate: one relaxed load per
        // round. Everything below branches on the captured bool, so a
        // disabled run pays nothing else — no clock reads, no counter
        // RMWs, and the untimed kernels.
        let observe = telemetry::enabled();
        let round_start = observe.then(Instant::now);
        let round_seq = self.seeds.subsequence(self.round);
        let sched = self.config.schedule_chunk;
        let num_chunks = self.positions.len().div_ceil(sched);
        let workers = self.effective_workers(num_chunks);
        let span = self.pure_batch_span();
        if let Some(span) = span {
            if self.positions.len() >= self.config.blocked_round_threshold {
                self.step_round_blocked(span, round_seq, workers, observe, round_start);
                return;
            }
        }
        let (draw_ns, apply_ns);
        if workers == 1 {
            (draw_ns, apply_ns) = step_window(
                &self.topo,
                &mut self.positions,
                &self.movement,
                &self.occ,
                &self.interaction,
                span,
                0,
                round_seq,
                observe,
            );
        } else {
            let topo = &self.topo;
            let occ = &self.occ;
            let interaction = self.interaction;
            let blocks_per_chunk = sched / STREAM_BLOCK;
            let mut per_worker: Vec<Vec<ChunkWork<'_>>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (ci, (chunk, models)) in self
                .positions
                .chunks_mut(sched)
                .zip(self.movement.chunks(sched))
                .enumerate()
            {
                per_worker[ci % workers].push((ci * blocks_per_chunk, chunk, models));
            }
            // Sub-phase totals shared by the tasks; each task
            // accumulates locally and lands two relaxed adds at the
            // end, so the per-agent loops never touch them.
            let subphase = (AtomicU64::new(0), AtomicU64::new(0));
            let subphase_ref = &subphase;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = per_worker
                .into_iter()
                .map(|work| {
                    Box::new(move || {
                        let (mut d, mut a) = (0u64, 0u64);
                        for (first_block, chunk, models) in work {
                            let t = step_window(
                                topo,
                                chunk,
                                models,
                                occ,
                                &interaction,
                                span,
                                first_block,
                                round_seq,
                                observe,
                            );
                            d += t.0;
                            a += t.1;
                        }
                        if observe {
                            subphase_ref.0.fetch_add(d, Ordering::Relaxed);
                            subphase_ref.1.fetch_add(a, Ordering::Relaxed);
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            match &self.pool {
                Some(pool) => pool.run(tasks),
                None => WorkerPool::global().run(tasks),
            }
            draw_ns = subphase.0.load(Ordering::Relaxed);
            apply_ns = subphase.1.load(Ordering::Relaxed);
        }
        self.round += 1;
        let occ_start = observe.then(Instant::now);
        self.rebuild_occupancy();
        if let (Some(t0), Some(occ_t0)) = (round_start, occ_start) {
            let occ_ns = u64::try_from(occ_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let total_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let agents = self.positions.len() as u64;
            ROUNDS_COUNTER.add(1);
            AGENT_STEPS.add(agents);
            let msteps_per_sec = if total_ns > 0 {
                agents as f64 * 1e3 / total_ns as f64
            } else {
                0.0
            };
            ROUND_SPAN.record_interval_at(
                t0,
                0,
                total_ns,
                &[
                    ("agents", agents as f64),
                    ("msteps_per_sec", msteps_per_sec),
                ],
            );
            // The draw/apply totals are accumulated across workers, so
            // in the trace they are laid end to end from the round
            // start: a *time split*, not two wall-clock intervals.
            if draw_ns + apply_ns > 0 {
                DRAW_SPAN.record_interval_at(t0, 0, draw_ns, &[]);
                APPLY_SPAN.record_interval_at(t0, draw_ns, apply_ns, &[]);
            }
            OCC_SPAN.record_interval_at(occ_t0, 0, occ_ns, &[]);
        }
    }

    /// The cache-blocked mega round for pure-walk populations at or
    /// above [`EngineConfig::blocked_round_threshold`]: every move index
    /// of the round is drawn into one engine-owned buffer first (block
    /// `b` still fills from `round_seq.rng(b)`, and one wide fill draws
    /// bit-for-bit what the per-block kernels' 128-wide fills draw), then
    /// applied through [`Topology::apply_moves_blocked`] so the gathers
    /// of a memory-bound topology stay within L2-sized node tiles, and
    /// finally counted by the occupancy rebuild's own blocked path.
    /// Results are **bit-identical** to the per-block path — this is a
    /// wall-clock route, selected automatically.
    fn step_round_blocked(
        &mut self,
        span: u64,
        round_seq: SeedSequence,
        workers: usize,
        observe: bool,
        round_start: Option<Instant>,
    ) {
        let n = self.positions.len();
        self.moves_scratch.clear();
        self.moves_scratch.resize(n, 0);
        let draw_start = observe.then(Instant::now);
        if workers <= 1 {
            for (b, chunk) in self.moves_scratch.chunks_mut(STREAM_BLOCK).enumerate() {
                fill_uniform_indices(span, chunk, &mut round_seq.rng(b as u64));
            }
        } else {
            // Contiguous whole-block ranges per worker: the chunk→stream
            // mapping stays (block index → rng(block)), so the split is
            // invisible in results.
            let num_blocks = n.div_ceil(STREAM_BLOCK);
            let blocks_per_worker = num_blocks.div_ceil(workers);
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = self
                .moves_scratch
                .chunks_mut(blocks_per_worker * STREAM_BLOCK)
                .enumerate()
                .map(|(wi, range)| {
                    Box::new(move || {
                        for (j, chunk) in range.chunks_mut(STREAM_BLOCK).enumerate() {
                            let block = wi * blocks_per_worker + j;
                            fill_uniform_indices(span, chunk, &mut round_seq.rng(block as u64));
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            match &self.pool {
                Some(pool) => pool.run(tasks),
                None => WorkerPool::global().run(tasks),
            }
        }
        let apply_start = observe.then(Instant::now);
        self.topo.apply_moves_blocked(
            &mut self.positions,
            &self.moves_scratch,
            &mut self.tile_scratch,
        );
        self.round += 1;
        let occ_start = observe.then(Instant::now);
        self.rebuild_occupancy();
        if let (Some(t0), Some(draw_t0), Some(apply_t0), Some(occ_t0)) =
            (round_start, draw_start, apply_start, occ_start)
        {
            let draw_ns = u64::try_from((apply_t0 - draw_t0).as_nanos()).unwrap_or(u64::MAX);
            let apply_ns = u64::try_from((occ_t0 - apply_t0).as_nanos()).unwrap_or(u64::MAX);
            let occ_ns = u64::try_from(occ_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let total_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let agents = n as u64;
            ROUNDS_COUNTER.add(1);
            AGENT_STEPS.add(agents);
            let msteps_per_sec = if total_ns > 0 {
                agents as f64 * 1e3 / total_ns as f64
            } else {
                0.0
            };
            ROUND_SPAN.record_interval_at(
                t0,
                0,
                total_ns,
                &[
                    ("agents", agents as f64),
                    ("msteps_per_sec", msteps_per_sec),
                ],
            );
            DRAW_SPAN.record_interval_at(t0, 0, draw_ns, &[]);
            APPLY_SPAN.record_interval_at(t0, draw_ns, apply_ns, &[]);
            OCC_SPAN.record_interval_at(occ_t0, 0, occ_ns, &[]);
        }
    }

    /// The engine's original parallel round: per-round `thread::scope`
    /// spawns and the dyn-erased draw chain, kept verbatim as the
    /// measurable baseline for the worker pool and the monomorphized
    /// kernels (`crates/bench/benches/engine.rs`, `repro bench`).
    /// Bit-identical results to [`Self::step_round_parallel`] — only the
    /// wall clock differs — which the engine property tests assert.
    ///
    /// # Panics
    ///
    /// Panics if the engine is unplaced.
    pub fn step_round_parallel_spawn(&mut self) {
        assert!(self.placed, "place agents before stepping");
        let round_seq = self.seeds.subsequence(self.round);
        // One policy, one place: the same per-round computation (fresh
        // parallelism probe included) the benches record as the
        // baseline's effective worker count.
        let workers = self.spawn_workers();
        if workers == 1 {
            for (ci, (chunk, models)) in self
                .positions
                .chunks_mut(STREAM_BLOCK)
                .zip(self.movement.chunks(STREAM_BLOCK))
                .enumerate()
            {
                let mut rng = round_seq.rng(ci as u64);
                let rng: &mut dyn RngCore = &mut rng;
                step_slice(&self.topo, chunk, models, &self.occ, &self.interaction, rng);
            }
        } else {
            let topo = &self.topo;
            let occ = &self.occ;
            let interaction = self.interaction;
            let mut per_worker: Vec<Vec<ChunkWork<'_>>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (ci, (chunk, models)) in self
                .positions
                .chunks_mut(STREAM_BLOCK)
                .zip(self.movement.chunks(STREAM_BLOCK))
                .enumerate()
            {
                per_worker[ci % workers].push((ci, chunk, models));
            }
            std::thread::scope(|scope| {
                for work in per_worker {
                    scope.spawn(move || {
                        for (ci, chunk, models) in work {
                            let mut rng = round_seq.rng(ci as u64);
                            let rng: &mut dyn RngCore = &mut rng;
                            step_slice(topo, chunk, models, occ, &interaction, rng);
                        }
                    });
                }
            });
        }
        self.round += 1;
        self.rebuild_occupancy();
    }

    /// Runs `rounds` parallel rounds back to back.
    ///
    /// # Panics
    ///
    /// Panics if the engine is unplaced.
    pub fn run_parallel(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_round_parallel();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdensity_graphs::{CompleteGraph, Hypercube, Ring, Torus2d};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn occupancy_conserves_agents() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut e = Engine::new(Torus2d::new(8), 20);
        e.place_uniform(&mut rng);
        for _ in 0..10 {
            e.step_round(&mut rng);
            let total: u32 = (0..e.topology().num_nodes()).map(|v| e.occupancy(v)).sum();
            assert_eq!(total, 20);
            assert!(e.occupied_nodes() <= 20);
        }
    }

    #[test]
    fn parallel_round_conserves_agents() {
        let mut e = Engine::new(Torus2d::new(16), 1000)
            .with_seed_sequence(SeedSequence::new(5))
            .with_threads(4);
        let mut rng = SmallRng::seed_from_u64(2);
        e.place_uniform(&mut rng);
        e.run_parallel(8);
        assert_eq!(e.round(), 8);
        let total: u32 = (0..e.topology().num_nodes()).map(|v| e.occupancy(v)).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn parallel_is_thread_count_invariant() {
        let mk = |threads: usize| {
            let mut e = Engine::new(Hypercube::new(10), 700)
                .with_seed_sequence(SeedSequence::new(77))
                .with_threads(threads)
                .with_worker_pool(Arc::new(WorkerPool::new(threads)))
                .with_config(EngineConfig {
                    min_chunks_per_worker: 1,
                    inline_step_threshold: 0,
                    ..EngineConfig::default()
                });
            let mut rng = SmallRng::seed_from_u64(3);
            e.place_uniform(&mut rng);
            e.run_parallel(12);
            (0..700).map(|a| e.position(a)).collect::<Vec<_>>()
        };
        let one = mk(1);
        assert_eq!(one, mk(2));
        assert_eq!(one, mk(8));
    }

    #[test]
    fn parallel_avoidance_flee_thread_invariant() {
        let mk = |threads: usize| {
            let mut e = Engine::new(Ring::new(4096), 600)
                .with_seed_sequence(SeedSequence::new(9))
                .with_threads(threads)
                .with_worker_pool(Arc::new(WorkerPool::new(threads)))
                .with_config(EngineConfig {
                    schedule_chunk: STREAM_BLOCK,
                    min_chunks_per_worker: 1,
                    inline_step_threshold: 0,
                    blocked_round_threshold: usize::MAX,
                });
            e.set_avoidance(Some(0.5));
            e.set_flee(true);
            let mut rng = SmallRng::seed_from_u64(4);
            e.place_uniform(&mut rng);
            e.run_parallel(10);
            (0..600).map(|a| e.position(a)).collect::<Vec<_>>()
        };
        assert_eq!(mk(1), mk(7));
    }

    #[test]
    fn inline_fallback_is_bit_identical_to_pool_dispatch() {
        // Satellite regression: the small-population inline fallback
        // (threshold above the population) must produce exactly the
        // positions the pool path (threshold 0) produces.
        let run = |inline_threshold: usize| {
            let mut e = Engine::new(Torus2d::new(32), 1024)
                .with_seed_sequence(SeedSequence::new(41))
                .with_threads(4)
                .with_worker_pool(Arc::new(WorkerPool::new(4)))
                .with_config(EngineConfig {
                    min_chunks_per_worker: 1,
                    inline_step_threshold: inline_threshold,
                    ..EngineConfig::default()
                });
            let mut rng = SmallRng::seed_from_u64(5);
            e.place_uniform(&mut rng);
            assert_eq!(
                e.parallel_workers(),
                if inline_threshold == 0 { 4 } else { 1 }
            );
            e.run_parallel(15);
            (0..1024).map(|a| e.position(a)).collect::<Vec<_>>()
        };
        assert_eq!(run(0), run(usize::MAX));
    }

    #[test]
    fn blocked_round_is_bit_identical_to_per_block_path() {
        // The cache-blocked mega round (threshold forced to 0, both
        // native and CSR topologies, 1 and 4 workers) must replay the
        // per-block path exactly.
        use antdensity_graphs::CsrGraph;
        fn run<T: Topology + Sync + Clone>(
            topo: T,
            blocked_threshold: usize,
            threads: usize,
        ) -> Vec<NodeId> {
            let mut e = Engine::new(topo, 3000)
                .with_seed_sequence(SeedSequence::new(55))
                .with_threads(threads)
                .with_worker_pool(Arc::new(WorkerPool::new(threads)))
                .with_config(EngineConfig {
                    min_chunks_per_worker: 1,
                    inline_step_threshold: 0,
                    blocked_round_threshold: blocked_threshold,
                    ..EngineConfig::default()
                });
            let mut rng = SmallRng::seed_from_u64(6);
            e.place_uniform(&mut rng);
            e.run_parallel(12);
            let occupancy_total: u32 = (0..e.topology().num_nodes()).map(|v| e.occupancy(v)).sum();
            assert_eq!(occupancy_total, 3000, "blocked rebuild lost agents");
            (0..3000).map(|a| e.position(a)).collect()
        }
        let torus = Torus2d::new(64);
        let reference = run(torus, usize::MAX, 1);
        assert_eq!(reference, run(torus, 0, 1));
        assert_eq!(reference, run(torus, 0, 4));
        let csr = CsrGraph::from_topology(&torus);
        let csr_reference = run(csr.clone(), usize::MAX, 1);
        assert_eq!(csr_reference, run(csr.clone(), 0, 1));
        assert_eq!(csr_reference, run(csr, 0, 4));
        // Same walk on the CSR rebuild consumes the identical streams.
        assert_eq!(reference, csr_reference);
    }

    #[test]
    fn groups_count_other_members_only() {
        let mut e = Engine::new(CompleteGraph::new(8), 4);
        e.assign_group(0, 0);
        e.assign_group(1, 0);
        e.assign_group(2, 1);
        e.place_at(&[3, 3, 3, 3]);
        assert_eq!(e.count_in_group(0, 0), 1);
        assert_eq!(e.count_in_group(0, 1), 1);
        assert_eq!(e.count_in_group(3, 0), 2);
        assert_eq!(e.count(3), 3);
        assert_eq!(e.group_size(0), 2);
        assert_eq!(e.num_groups(), 2);
    }

    #[test]
    fn count_matches_occupancy_minus_one() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut e = Engine::new(Torus2d::new(8), 25);
        e.place_uniform(&mut rng);
        e.step_round(&mut rng);
        for a in 0..25 {
            assert_eq!(e.count(a), e.occupancy(e.position(a)) - 1);
        }
    }

    #[test]
    fn agent_positions_iterates_all() {
        let mut e = Engine::new(Torus2d::new(4), 3);
        e.place_at(&[1, 5, 5]);
        let v: Vec<(AgentId, NodeId)> = e.agent_positions().collect();
        assert_eq!(v, vec![(0, 1), (1, 5), (2, 5)]);
    }

    #[test]
    fn impure_mover_bookkeeping_tracks_model_changes() {
        let mut e = Engine::new(Torus2d::new(8), 4);
        assert!(e.pure_batch_span().is_some());
        e.set_movement(1, MovementModel::Stationary);
        assert!(e.pure_batch_span().is_none());
        e.set_movement(1, MovementModel::Pure);
        assert!(e.pure_batch_span().is_some());
        e.set_movement_all(&MovementModel::lazy(0.5));
        assert!(e.pure_batch_span().is_none());
        e.set_movement_all(&MovementModel::Pure);
        assert!(e.pure_batch_span().is_some());
        e.set_avoidance(Some(0.3));
        assert!(e.pure_batch_span().is_none());
        e.set_avoidance(None);
        assert!(e.pure_batch_span().is_some());
    }

    #[test]
    #[should_panic(expected = "place agents")]
    fn unplaced_parallel_step_panics() {
        let mut e = Engine::new(Torus2d::new(4), 2);
        e.step_round_parallel();
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_engine_panics() {
        let _ = Engine::new(Torus2d::new(4), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = Engine::new(Torus2d::new(4), 2).with_threads(0);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn bad_config_rejected() {
        let _ = Engine::new(Torus2d::new(4), 2).with_config(EngineConfig {
            schedule_chunk: 100,
            ..EngineConfig::default()
        });
    }
}
