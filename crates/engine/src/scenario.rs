//! Config-driven scenarios: topology × movement × estimator × noise as
//! one runnable, seedable description.
//!
//! A [`Scenario`] composes the axes every experiment in the paper varies —
//! which graph, how agents move (pure walk plus the Section 6.1
//! avoidance/flee variants), what is estimated (Algorithm 1, Algorithm 4,
//! quorum read-out, Section 5.2 relative frequency), and how noisy the
//! collision sensor is — into a plain-data spec. `run(seed)` builds the
//! topology, drives the batched [`Engine`] with deterministic chunked
//! parallelism, and returns a [`ScenarioOutcome`]; the result is a pure
//! function of `(spec, seed)` for any thread count.
//!
//! Estimation itself is the streaming observer pipeline of
//! [`crate::observer`]: the driver emits each round's encounter events
//! once and observers snapshot estimates at rounds-checkpoints.
//! [`Scenario::run_streamed`] exposes the fused form — several
//! estimators and whole accuracy-vs-rounds curves from **one**
//! simulation pass, bit-identical to running each combination alone.
//!
//! # Example
//!
//! ```
//! use antdensity_engine::scenario::{Scenario, TopologySpec};
//!
//! // 65 agents on a 32x32 torus, Algorithm 1 for 256 rounds.
//! let outcome = Scenario::new(TopologySpec::Torus2d { side: 32 }, 65, 256).run(42);
//! assert_eq!(outcome.estimates.len(), 65);
//! assert!((outcome.mean_estimate() - outcome.true_density).abs() < 0.05);
//! ```

use crate::config::EngineConfig;
use crate::engine::Engine;
use crate::movement::MovementModel;
use crate::observer::{observer_for, EncounterTallies, Observer, RoundEvents, Schedule, SimFamily};
use crate::pool::WorkerPool;
use antdensity_graphs::{
    generators, CompleteGraph, CsrGraph, Hypercube, NodeId, Ring, Topology, Torus2d, TorusKd,
};
use antdensity_stats::rng::SeedSequence;
use rand::Rng;
use std::sync::Arc;

/// Which graph the scenario runs on.
///
/// Two families of variants: the paper's **structured** topologies
/// (torus, ring, hypercube, complete graph), each backed by a dedicated
/// implementation with closed-form theory; and the pluggable **CSR**
/// variants (`csr:*` tokens), arbitrary graphs materialised as
/// [`CsrGraph`]s by deterministic generators. CSR specs are pure
/// *descriptions*: the same spec always builds the identical graph (the
/// generator stream is derived from the spec parameters, never from the
/// simulation seed), so sweeps, fingerprints, and checkpoint resume all
/// remain bit-stable. Builds are cached process-wide — a sweep touching
/// one spec in hundreds of shards constructs its graph once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// The paper's main stage: a `side × side` torus.
    Torus2d {
        /// Side length (A = side²).
        side: u64,
    },
    /// A k-dimensional torus (Section 4.3).
    TorusKd {
        /// Number of dimensions.
        dims: u32,
        /// Side length per dimension.
        side: u64,
    },
    /// The ring / 1-d torus (Section 4.2).
    Ring {
        /// Number of nodes.
        nodes: u64,
    },
    /// The hypercube (Section 4.5).
    Hypercube {
        /// Number of dimensions (A = 2^dims).
        dims: u32,
    },
    /// The complete graph — the i.i.d. baseline (Section 1.1).
    Complete {
        /// Number of nodes.
        nodes: u64,
    },
    /// Random `degree`-regular CSR graph (an expander w.h.p. — Section
    /// 4.4's setting, realised by the Steger–Wormald pairing sampler).
    /// Token `csr:regular:<n>:<d>`.
    CsrRegular {
        /// Number of nodes.
        nodes: u64,
        /// Uniform degree.
        degree: u32,
    },
    /// Erdős–Rényi `G(n, p)` with `p = avg_degree/(n−1)`, re-sampled
    /// until connected (choose `avg_degree ≳ ln n`). Token
    /// `csr:gnp:<n>:<avg-deg>`.
    CsrGnp {
        /// Number of nodes.
        nodes: u64,
        /// Expected average degree (sets `p`).
        avg_degree: u32,
    },
    /// Barry-style irregular region: non-wrapping `side × side` grid
    /// with cells removed at the hole fraction, reduced to its largest
    /// connected component. Token
    /// `csr:grid-holes:<side>:<mask-seed>:<hole-frac>` (fraction in
    /// `[0, 0.9]`, resolved to per-mille).
    CsrGridHoles {
        /// Grid side before masking.
        side: u64,
        /// Seed of the hole mask (a spec parameter, so distinct regions
        /// are distinct cells in a sweep).
        mask_seed: u64,
        /// Hole fraction in per-mille (`200` = 0.2), kept integral so
        /// specs stay `Eq + Hash` and round-trip exactly.
        hole_pm: u32,
    },
    /// Ring of cliques — the classic bottleneck family (dense local
    /// neighborhoods, slow global mixing). Token
    /// `csr:cliquering:<cliques>:<size>`.
    CsrCliqueRing {
        /// Number of cliques on the ring.
        cliques: u64,
        /// Nodes per clique.
        clique_size: u64,
    },
}

impl std::fmt::Display for TopologySpec {
    /// Canonical spec-file syntax: `torus2d:32`, `toruskd:3x8`,
    /// `ring:1024`, `hypercube:10`, `complete:1024`,
    /// `csr:regular:1024:8`, `csr:gnp:1024:12`,
    /// `csr:grid-holes:32:7:0.2`, `csr:cliquering:16:8`. Round-trips
    /// through [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::Torus2d { side } => write!(f, "torus2d:{side}"),
            Self::TorusKd { dims, side } => write!(f, "toruskd:{dims}x{side}"),
            Self::Ring { nodes } => write!(f, "ring:{nodes}"),
            Self::Hypercube { dims } => write!(f, "hypercube:{dims}"),
            Self::Complete { nodes } => write!(f, "complete:{nodes}"),
            Self::CsrRegular { nodes, degree } => write!(f, "csr:regular:{nodes}:{degree}"),
            Self::CsrGnp { nodes, avg_degree } => write!(f, "csr:gnp:{nodes}:{avg_degree}"),
            Self::CsrGridHoles {
                side,
                mask_seed,
                hole_pm,
            } => write!(
                f,
                "csr:grid-holes:{side}:{mask_seed}:{}",
                hole_pm as f64 / 1000.0
            ),
            Self::CsrCliqueRing {
                cliques,
                clique_size,
            } => write!(f, "csr:cliquering:{cliques}:{clique_size}"),
        }
    }
}

impl std::str::FromStr for TopologySpec {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) syntax (the sweep
    /// spec-file axis format). Malformed tokens are rejected with the
    /// expected grammar and the offending field named.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k.trim(), a.trim()),
            None => return Err(format!("topology `{s}`: expected `kind:params`")),
        };
        let num = |a: &str, what: &str| -> Result<u64, String> {
            a.parse::<u64>()
                .map_err(|_| format!("topology `{s}`: bad {what} `{a}`"))
                .and_then(|v| {
                    if v == 0 {
                        Err(format!("topology `{s}`: {what} must be positive"))
                    } else {
                        Ok(v)
                    }
                })
        };
        match kind {
            "torus2d" => Ok(Self::Torus2d {
                side: num(arg, "side")?,
            }),
            "toruskd" => {
                let (d, side) = arg
                    .split_once('x')
                    .ok_or_else(|| format!("topology `{s}`: expected `toruskd:<dims>x<side>`"))?;
                Ok(Self::TorusKd {
                    dims: num(d, "dims")? as u32,
                    side: num(side, "side")?,
                })
            }
            "ring" => Ok(Self::Ring {
                nodes: num(arg, "node count")?,
            }),
            "hypercube" => Ok(Self::Hypercube {
                dims: num(arg, "dims")? as u32,
            }),
            "complete" => Ok(Self::Complete {
                nodes: num(arg, "node count")?,
            }),
            "csr" => parse_csr(s, arg, &num),
            other => Err(format!(
                "unknown topology kind `{other}` (expected torus2d, toruskd, ring, hypercube, \
                 complete, or csr:<family>)"
            )),
        }
    }
}

/// Parses the `csr:<family>:<params>` token family (`s` is the whole
/// token for error messages, `arg` everything after `csr:`).
fn parse_csr(
    s: &str,
    arg: &str,
    num: &dyn Fn(&str, &str) -> Result<u64, String>,
) -> Result<TopologySpec, String> {
    let (family, params) = arg.split_once(':').ok_or_else(|| {
        format!("topology `{s}`: expected `csr:<family>:<params>` (families: regular, gnp, grid-holes, cliquering)")
    })?;
    let parts: Vec<&str> = params.split(':').map(str::trim).collect();
    // CSR node ids (and hence node counts) are u32 by design; rejecting
    // oversized parameters here keeps every later cast lossless and
    // every arithmetic check overflow-free, and fails at parse time
    // instead of mid-sweep inside build().
    let capped = |v: u64, what: &str| -> Result<u64, String> {
        if v > u32::MAX as u64 {
            Err(format!(
                "topology `{s}`: {what} {v} exceeds the CSR backend's u32 node domain (max {})",
                u32::MAX
            ))
        } else {
            Ok(v)
        }
    };
    match family.trim() {
        "regular" => {
            if parts.len() != 2 {
                return Err(format!("topology `{s}`: expected `csr:regular:<n>:<d>`"));
            }
            let nodes = capped(num(parts[0], "node count")?, "node count")?;
            let degree = num(parts[1], "degree")?;
            if degree >= nodes {
                return Err(format!(
                    "topology `{s}`: degree {degree} must be below node count {nodes}"
                ));
            }
            if !(nodes * degree).is_multiple_of(2) {
                return Err(format!(
                    "topology `{s}`: n·d = {} must be even for a d-regular graph",
                    nodes * degree
                ));
            }
            Ok(TopologySpec::CsrRegular {
                nodes,
                degree: degree as u32,
            })
        }
        "gnp" => {
            if parts.len() != 2 {
                return Err(format!("topology `{s}`: expected `csr:gnp:<n>:<avg-deg>`"));
            }
            let nodes = capped(num(parts[0], "node count")?, "node count")?;
            let avg_degree = num(parts[1], "average degree")?;
            if nodes < 2 {
                return Err(format!("topology `{s}`: G(n,p) needs n >= 2"));
            }
            if avg_degree >= nodes {
                return Err(format!(
                    "topology `{s}`: average degree {avg_degree} must be below node count {nodes}"
                ));
            }
            // Connectivity threshold: G(n, p) is connected w.h.p. only
            // for p >= ln n / n. Below (with margin for the build's 200
            // retries) the generator would exhaust its attempts rounds
            // into a sweep — fail here instead.
            let threshold = (nodes as f64).ln() - 1.0;
            if (avg_degree as f64) < threshold {
                return Err(format!(
                    "topology `{s}`: average degree {avg_degree} is below the G(n,p) \
connectivity threshold (choose avg-deg >= ln n \u{2248} {:.1} for a connected sample)",
                    (nodes as f64).ln()
                ));
            }
            Ok(TopologySpec::CsrGnp {
                nodes,
                avg_degree: avg_degree as u32,
            })
        }
        "grid-holes" => {
            if parts.len() != 3 {
                return Err(format!(
                    "topology `{s}`: expected `csr:grid-holes:<side>:<mask-seed>:<hole-frac>`"
                ));
            }
            let side = num(parts[0], "side")?;
            if side < 2 {
                return Err(format!("topology `{s}`: side must be at least 2"));
            }
            if side > 65_535 {
                return Err(format!(
                    "topology `{s}`: side {side} puts side² beyond the CSR backend's u32 node domain (max side 65535)"
                ));
            }
            let mask_seed: u64 = parts[1]
                .parse()
                .map_err(|_| format!("topology `{s}`: bad mask seed `{}`", parts[1]))?;
            let frac: f64 = parts[2]
                .parse()
                .map_err(|_| format!("topology `{s}`: bad hole fraction `{}`", parts[2]))?;
            if !(0.0..=0.9).contains(&frac) {
                return Err(format!(
                    "topology `{s}`: hole fraction {frac} outside [0, 0.9]"
                ));
            }
            Ok(TopologySpec::CsrGridHoles {
                side,
                mask_seed,
                hole_pm: (frac * 1000.0).round() as u32,
            })
        }
        "cliquering" => {
            if parts.len() != 2 {
                return Err(format!(
                    "topology `{s}`: expected `csr:cliquering:<cliques>:<size>`"
                ));
            }
            let cliques = num(parts[0], "clique count")?;
            let clique_size = num(parts[1], "clique size")?;
            if cliques < 2 {
                return Err(format!("topology `{s}`: need at least 2 cliques"));
            }
            if clique_size < 3 {
                return Err(format!("topology `{s}`: clique size must be at least 3"));
            }
            match cliques.checked_mul(clique_size) {
                Some(n) => capped(n, "node count (cliques × size)")?,
                None => {
                    return Err(format!(
                        "topology `{s}`: cliques × size overflows the node domain"
                    ))
                }
            };
            Ok(TopologySpec::CsrCliqueRing {
                cliques,
                clique_size,
            })
        }
        other => Err(format!(
            "topology `{s}`: unknown csr family `{other}` (expected regular, gnp, grid-holes, \
             cliquering)"
        )),
    }
}

/// Derivation root for CSR generator streams: graphs are a pure function
/// of the spec, never of the simulation seed.
const CSR_BUILD_STREAM: u64 = 0x4353_5247; // "CSRG"

/// Builds the CSR graph a `csr:*` spec describes (uncached).
///
/// # Panics
///
/// Panics with the spec token and the generator's reason if the
/// parameters cannot produce a valid graph (e.g. a `gnp` average degree
/// too far below the `ln n` connectivity threshold).
fn build_csr_graph(spec: &TopologySpec) -> CsrGraph {
    match *spec {
        TopologySpec::CsrRegular { nodes, degree } => {
            let mut rng = SeedSequence::new(CSR_BUILD_STREAM)
                .subsequence(nodes)
                .rng(degree as u64);
            match generators::random_regular(nodes, degree as usize, 1000, &mut rng) {
                Ok(adj) => CsrGraph::from_adj(&adj),
                Err(e) => panic!("{spec}: {e}"),
            }
        }
        TopologySpec::CsrGnp { nodes, avg_degree } => {
            let p = avg_degree as f64 / (nodes - 1) as f64;
            let mut rng = SeedSequence::new(CSR_BUILD_STREAM)
                .subsequence(!nodes)
                .rng(avg_degree as u64);
            match generators::erdos_renyi_connected(nodes, p, 200, &mut rng) {
                Ok(adj) => CsrGraph::from_adj(&adj),
                Err(e) => panic!(
                    "{spec}: {e} (connected samples need an average degree around \
                     ln n ≈ {:.1} or above)",
                    (nodes as f64).ln()
                ),
            }
        }
        TopologySpec::CsrGridHoles {
            side,
            mask_seed,
            hole_pm,
        } => {
            let mut rng = SeedSequence::new(CSR_BUILD_STREAM)
                .subsequence(mask_seed)
                .rng(side ^ (u64::from(hole_pm) << 32));
            match generators::grid_with_holes(side, f64::from(hole_pm) / 1000.0, &mut rng) {
                Ok(adj) => CsrGraph::from_adj(&adj),
                Err(e) => panic!("{spec}: {e}"),
            }
        }
        TopologySpec::CsrCliqueRing {
            cliques,
            clique_size,
        } => match generators::ring_of_cliques(cliques, clique_size) {
            Ok(adj) => CsrGraph::from_adj(&adj),
            Err(e) => panic!("{spec}: {e}"),
        },
        ref structured => panic!("{structured} is not a csr spec"),
    }
}

/// Process-global build cache for `csr:*` specs: the graph is a pure
/// (deterministic) function of the spec, so every consumer — scenario
/// runs, sweep shards, node-count queries, theory bounds — shares one
/// immutable build per spec.
fn csr_cached(spec: TopologySpec) -> Arc<CsrGraph> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<TopologySpec, Arc<CsrGraph>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(g) = cache.lock().expect("csr cache lock").get(&spec) {
        return Arc::clone(g);
    }
    // Built outside the lock: a failing generator panics without
    // poisoning the cache, and slow builds don't serialize distinct
    // specs. A racing duplicate build is wasted work, nothing more.
    let built = Arc::new(build_csr_graph(&spec));
    Arc::clone(
        cache
            .lock()
            .expect("csr cache lock")
            .entry(spec)
            .or_insert(built),
    )
}

impl TopologySpec {
    /// Instantiates the concrete topology. For `csr:*` specs this
    /// returns a handle to the process-wide cached build.
    ///
    /// # Panics
    ///
    /// For `csr:*` specs whose generator cannot produce a valid graph
    /// (message names the token and the reason).
    pub fn build(&self) -> BuiltTopology {
        match *self {
            Self::Torus2d { side } => BuiltTopology::Torus2d(Torus2d::new(side)),
            Self::TorusKd { dims, side } => BuiltTopology::TorusKd(TorusKd::new(dims, side)),
            Self::Ring { nodes } => BuiltTopology::Ring(Ring::new(nodes)),
            Self::Hypercube { dims } => BuiltTopology::Hypercube(Hypercube::new(dims)),
            Self::Complete { nodes } => BuiltTopology::Complete(CompleteGraph::new(nodes)),
            Self::CsrRegular { .. }
            | Self::CsrGnp { .. }
            | Self::CsrGridHoles { .. }
            | Self::CsrCliqueRing { .. } => BuiltTopology::Csr(csr_cached(*self)),
        }
    }

    /// Node count of the topology this spec builds. Closed-form for
    /// every variant except `csr:grid-holes`, whose surviving-component
    /// size is a property of the (cached, deterministic) build.
    ///
    /// # Panics
    ///
    /// As [`Self::build`] for `csr:grid-holes`.
    pub fn num_nodes(&self) -> u64 {
        match *self {
            Self::Torus2d { side } => side * side,
            Self::TorusKd { dims, side } => side.pow(dims),
            Self::Ring { nodes } => nodes,
            Self::Hypercube { dims } => 1u64 << dims,
            Self::Complete { nodes } => nodes,
            Self::CsrRegular { nodes, .. } | Self::CsrGnp { nodes, .. } => nodes,
            Self::CsrGridHoles { .. } => csr_cached(*self).num_nodes(),
            Self::CsrCliqueRing {
                cliques,
                clique_size,
            } => cliques * clique_size,
        }
    }

    /// Whether this is one of the pluggable `csr:*` variants.
    pub fn is_csr(&self) -> bool {
        matches!(
            self,
            Self::CsrRegular { .. }
                | Self::CsrGnp { .. }
                | Self::CsrGridHoles { .. }
                | Self::CsrCliqueRing { .. }
        )
    }
}

/// A concrete topology built from a [`TopologySpec`] (enum dispatch keeps
/// [`Scenario::run`] monomorphic and object-safe to store in tables).
/// CSR builds are shared [`Arc`] handles from the process-wide cache.
#[derive(Debug, Clone)]
pub enum BuiltTopology {
    /// 2-d torus.
    Torus2d(Torus2d),
    /// k-d torus.
    TorusKd(TorusKd),
    /// Ring.
    Ring(Ring),
    /// Hypercube.
    Hypercube(Hypercube),
    /// Complete graph.
    Complete(CompleteGraph),
    /// Pluggable CSR graph (any `csr:*` spec).
    Csr(Arc<CsrGraph>),
}

impl Topology for BuiltTopology {
    fn num_nodes(&self) -> u64 {
        match self {
            Self::Torus2d(t) => t.num_nodes(),
            Self::TorusKd(t) => t.num_nodes(),
            Self::Ring(t) => t.num_nodes(),
            Self::Hypercube(t) => t.num_nodes(),
            Self::Complete(t) => t.num_nodes(),
            Self::Csr(t) => t.num_nodes(),
        }
    }

    fn degree(&self, v: NodeId) -> usize {
        match self {
            Self::Torus2d(t) => t.degree(v),
            Self::TorusKd(t) => t.degree(v),
            Self::Ring(t) => t.degree(v),
            Self::Hypercube(t) => t.degree(v),
            Self::Complete(t) => t.degree(v),
            Self::Csr(t) => t.degree(v),
        }
    }

    fn neighbor(&self, v: NodeId, i: usize) -> NodeId {
        match self {
            Self::Torus2d(t) => t.neighbor(v, i),
            Self::TorusKd(t) => t.neighbor(v, i),
            Self::Ring(t) => t.neighbor(v, i),
            Self::Hypercube(t) => t.neighbor(v, i),
            Self::Complete(t) => t.neighbor(v, i),
            Self::Csr(t) => t.neighbor(v, i),
        }
    }

    // Delegating hoists the enum dispatch out of the per-draw chain and
    // reaches each implementation's fast path (the CSR arm's
    // zone-hoisted division-free draw in particular). Every arm draws
    // bit-identically to the trait default, so results never move.
    fn random_neighbor<R: rand::RngCore + ?Sized>(&self, v: NodeId, rng: &mut R) -> NodeId {
        match self {
            Self::Torus2d(t) => t.random_neighbor(v, rng),
            Self::TorusKd(t) => t.random_neighbor(v, rng),
            Self::Ring(t) => t.random_neighbor(v, rng),
            Self::Hypercube(t) => t.random_neighbor(v, rng),
            Self::Complete(t) => t.random_neighbor(v, rng),
            Self::Csr(t) => t.random_neighbor(v, rng),
        }
    }

    // Delegating hoists the enum dispatch out of the per-agent loop and
    // reaches each topology's branchless batched kernel.
    fn apply_moves(&self, positions: &mut [u32], moves: &[u32]) {
        match self {
            Self::Torus2d(t) => t.apply_moves(positions, moves),
            Self::TorusKd(t) => t.apply_moves(positions, moves),
            Self::Ring(t) => t.apply_moves(positions, moves),
            Self::Hypercube(t) => t.apply_moves(positions, moves),
            Self::Complete(t) => t.apply_moves(positions, moves),
            Self::Csr(t) => t.apply_moves(positions, moves),
        }
    }

    fn regular_degree(&self) -> Option<usize> {
        match self {
            Self::Torus2d(t) => t.regular_degree(),
            Self::TorusKd(t) => t.regular_degree(),
            Self::Ring(t) => t.regular_degree(),
            Self::Hypercube(t) => t.regular_degree(),
            Self::Complete(t) => t.regular_degree(),
            Self::Csr(t) => t.regular_degree(),
        }
    }
}

/// The Section 6.1 noisy collision sensor (the canonical
/// [`CollisionNoise`](crate::sampling::CollisionNoise), under the name
/// the spec layer has always used).
pub use crate::sampling::CollisionNoise as NoiseSpec;

/// What the scenario estimates from the accumulated collision counts.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimatorSpec {
    /// Algorithm 1: every agent walks and returns `d̃ = c/t`.
    Algorithm1,
    /// Algorithm 4 (Appendix A): a fair coin splits agents into a
    /// stationary half and a half drifting along a fixed move; the
    /// estimate is `d̃ = 2·(c mod t)/t`, the `mod t` removing the
    /// lockstep collisions of co-located drifting starts. Requires a
    /// [`TopologySpec::Torus2d`] with `rounds < side` (Theorem 32's
    /// precondition) — [`Scenario::run`] panics otherwise.
    Algorithm4,
    /// Quorum read-out (Section 6.2): run Algorithm 1, then report per
    /// agent whether `d̃ ≥ threshold`. (The adaptive sequential test
    /// lives in `antdensity_core::quorum`.)
    Quorum {
        /// Density threshold to detect.
        threshold: f64,
    },
    /// Section 5.2 relative frequency: the first `property_agents` agents
    /// carry the property; every agent tracks both total and
    /// property-only encounters and estimates `f̃ = d̃_P / d̃`.
    RelativeFrequency {
        /// How many agents carry the property.
        property_agents: usize,
    },
}

impl std::fmt::Display for EstimatorSpec {
    /// Canonical spec-file syntax: `alg1`, `alg4`, `quorum:<threshold>`,
    /// `relfreq:<property_agents>`. Round-trips through
    /// [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Algorithm1 => write!(f, "alg1"),
            Self::Algorithm4 => write!(f, "alg4"),
            Self::Quorum { threshold } => write!(f, "quorum:{threshold}"),
            Self::RelativeFrequency { property_agents } => write!(f, "relfreq:{property_agents}"),
        }
    }
}

impl std::str::FromStr for EstimatorSpec {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) syntax.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s {
            "alg1" => return Ok(Self::Algorithm1),
            "alg4" => return Ok(Self::Algorithm4),
            _ => {}
        }
        if let Some(arg) = s.strip_prefix("quorum:") {
            let threshold: f64 = arg
                .trim()
                .parse()
                .map_err(|_| format!("estimator `{s}`: bad threshold `{arg}`"))?;
            if !(threshold.is_finite() && threshold > 0.0) {
                return Err(format!("estimator `{s}`: threshold must be positive"));
            }
            return Ok(Self::Quorum { threshold });
        }
        if let Some(arg) = s.strip_prefix("relfreq:") {
            let property_agents: usize = arg
                .trim()
                .parse()
                .map_err(|_| format!("estimator `{s}`: bad property population `{arg}`"))?;
            return Ok(Self::RelativeFrequency { property_agents });
        }
        Err(format!(
            "unknown estimator `{s}` (expected alg1, alg4, quorum:<threshold>, relfreq:<agents>)"
        ))
    }
}

/// A runnable, seedable simulation description.
#[derive(Debug, Clone)]
pub struct Scenario {
    topology: TopologySpec,
    num_agents: usize,
    rounds: u64,
    movement: MovementModel,
    avoidance: Option<f64>,
    flee: bool,
    noise: Option<NoiseSpec>,
    estimator: EstimatorSpec,
    threads: usize,
    engine_config: EngineConfig,
    pool: Option<std::sync::Arc<WorkerPool>>,
}

/// Spec equality: the pool is execution infrastructure, not part of the
/// description (outcomes are pool-independent by contract), so it is
/// compared by identity — two specs sharing a pool, or both using the
/// global one, are equal when their parameters are.
impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        let pools_match = match (&self.pool, &other.pool) {
            (None, None) => true,
            (Some(a), Some(b)) => std::sync::Arc::ptr_eq(a, b),
            _ => false,
        };
        pools_match
            && self.topology == other.topology
            && self.num_agents == other.num_agents
            && self.rounds == other.rounds
            && self.movement == other.movement
            && self.avoidance == other.avoidance
            && self.flee == other.flee
            && self.noise == other.noise
            && self.estimator == other.estimator
            && self.threads == other.threads
            && self.engine_config == other.engine_config
    }
}

impl Scenario {
    /// A scenario with the paper's defaults: pure random walk, perfect
    /// sensing, Algorithm 1, single worker.
    ///
    /// # Panics
    ///
    /// Panics if `num_agents == 0` or `rounds == 0`.
    pub fn new(topology: TopologySpec, num_agents: usize, rounds: u64) -> Self {
        assert!(num_agents > 0, "need at least one agent");
        assert!(rounds > 0, "need at least one round");
        Self {
            topology,
            num_agents,
            rounds,
            movement: MovementModel::Pure,
            avoidance: None,
            flee: false,
            noise: None,
            estimator: EstimatorSpec::Algorithm1,
            threads: 1,
            engine_config: EngineConfig::default(),
            pool: None,
        }
    }

    /// Replaces the movement model (ignored by `Algorithm4`, which fixes
    /// its own stationary/drift split).
    pub fn with_movement(mut self, movement: MovementModel) -> Self {
        self.movement = movement;
        self
    }

    /// Enables Section 6.1 cell avoidance with back-off probability `prob`.
    ///
    /// # Panics
    ///
    /// Panics if `prob ∉ [0, 1]`.
    pub fn with_avoidance(mut self, prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "avoidance probability in [0,1]"
        );
        self.avoidance = Some(prob);
        self
    }

    /// Enables Section 6.1 post-encounter dispersal.
    pub fn with_flee(mut self) -> Self {
        self.flee = true;
        self
    }

    /// Adds collision-detection noise.
    pub fn with_noise(mut self, noise: NoiseSpec) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Replaces the estimator, validating it against the scenario at
    /// build time (so a bad spec fails here with a clear message, not
    /// rounds-deep inside [`Self::run`]).
    ///
    /// # Errors
    ///
    /// * `RelativeFrequency` with a property population exceeding the
    ///   agent count;
    /// * `Algorithm4` off the 2-d torus, or with `rounds ≥ side`
    ///   (Theorem 32's precondition: a drifting agent must visit `t`
    ///   distinct cells, or the `c mod t` correction wraps legitimate
    ///   counts).
    pub fn try_with_estimator(mut self, estimator: EstimatorSpec) -> Result<Self, String> {
        match &estimator {
            EstimatorSpec::RelativeFrequency { property_agents } => {
                if *property_agents > self.num_agents {
                    return Err(format!(
                        "relative-frequency property population exceeds agent count: \
                         {property_agents} property agents > {} agents",
                        self.num_agents
                    ));
                }
            }
            EstimatorSpec::Algorithm4 => match self.topology {
                TopologySpec::Torus2d { side } if self.rounds < side => {}
                TopologySpec::Torus2d { side } => {
                    return Err(format!(
                        "Theorem 32 requires t < sqrt(A) (= {side}); got t = {}",
                        self.rounds
                    ))
                }
                other => {
                    return Err(format!(
                        "Algorithm 4 is analysed on the 2-d torus only, got {other:?}"
                    ))
                }
            },
            EstimatorSpec::Algorithm1 | EstimatorSpec::Quorum { .. } => {}
        }
        self.estimator = estimator;
        Ok(self)
    }

    /// Replaces the estimator.
    ///
    /// # Panics
    ///
    /// Panics where [`Self::try_with_estimator`] errors.
    pub fn with_estimator(self, estimator: EstimatorSpec) -> Self {
        match self.try_with_estimator(estimator) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the worker count for round stepping. Results never depend on
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Replaces the engine scheduling configuration. Wall clock only —
    /// outcomes are bit-identical for every valid config (see
    /// [`EngineConfig`]).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid ([`EngineConfig::validate`]).
    pub fn with_engine_config(mut self, config: EngineConfig) -> Self {
        config.validate();
        self.engine_config = config;
        self
    }

    /// Steps rounds on an explicit [`WorkerPool`] instead of the
    /// process-global one — for embedders that isolate workloads, and
    /// for tests that pin a real worker count regardless of the host's
    /// core count. Outcomes are unaffected.
    pub fn with_worker_pool(mut self, pool: std::sync::Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The topology spec.
    pub fn topology(&self) -> TopologySpec {
        self.topology
    }

    /// Number of agents `n + 1`.
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Number of rounds `t`.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Paper-convention true density `d = n/A` of this spec.
    pub fn true_density(&self) -> f64 {
        (self.num_agents as f64 - 1.0) / self.topology.num_nodes() as f64
    }

    /// Whether this scenario is eligible for the count-based fast path
    /// ([`Self::run_counts`]): the population must be fully described
    /// by per-node occupancy counts, which holds exactly when agents
    /// carry no state of their own — pure movement (memoryless), no
    /// avoidance or flee (those read occupancy per agent), no sensing
    /// noise (per-agent perturbations), and the Algorithm 1 estimator
    /// (whose *mean* estimate is a pure function of occupancy). The
    /// complete graph is excluded on cost grounds: its per-node
    /// multinomial has `A − 1` bins, making a counts round `O(A²)`.
    pub fn counts_compatible(&self) -> bool {
        matches!(self.movement, MovementModel::Pure)
            && self.avoidance.is_none()
            && !self.flee
            && self.noise.is_none()
            && matches!(self.estimator, EstimatorSpec::Algorithm1)
            && !matches!(self.topology, TopologySpec::Complete { .. })
    }

    /// Executes the scenario through the count-based representation
    /// ([`crate::CountsEngine`]): `O(nodes)` per round instead of
    /// `O(agents)`, the mega-scale fast path.
    ///
    /// The outcome is a pure function of `(self, seed)` and
    /// bit-identical across thread counts, but **distributionally** —
    /// not bitwise — equivalent to [`Self::run`]: the counts path draws
    /// different RNG streams, so for one seed the numbers differ while
    /// every statistic of the process agrees
    /// (`tests/counts_equivalence.rs`). Only the population-mean
    /// estimate exists in this representation; per-agent estimate
    /// vectors do not.
    ///
    /// # Panics
    ///
    /// Panics if `!self.counts_compatible()`.
    pub fn run_counts(&self, seed: u64) -> crate::CountsOutcome {
        self.run_counts_scheduled(seed, &[self.rounds])
            .pop()
            .expect("one checkpoint in, one outcome out")
    }

    /// [`Self::run_counts`] snapshotting the cumulative tallies at each
    /// of `checkpoints` (ascending) from **one** pass — the counts twin
    /// of [`Self::run_streamed`]'s accuracy-vs-rounds curves.
    ///
    /// # Panics
    ///
    /// Panics if the scenario is not [`Self::counts_compatible`], or if
    /// `checkpoints` is empty or not strictly ascending.
    pub fn run_counts_scheduled(
        &self,
        seed: u64,
        checkpoints: &[u64],
    ) -> Vec<crate::CountsOutcome> {
        assert!(
            self.counts_compatible(),
            "count-based stepping needs a pure, noise-free, interaction-free \
             Algorithm 1 scenario on a non-complete topology"
        );
        assert!(!checkpoints.is_empty(), "need at least one checkpoint");
        assert!(
            checkpoints.windows(2).all(|w| w[0] < w[1]),
            "checkpoints must be strictly ascending"
        );
        let seq = SeedSequence::new(seed);
        let topo = self.topology.build();
        let nodes = topo.num_nodes();
        let mut engine = crate::CountsEngine::new(topo, self.num_agents as u64)
            .with_seed_sequence(seq.subsequence(COUNTS_STEP_STREAM))
            .with_threads(self.threads);
        engine.place_uniform(&seq.subsequence(COUNTS_PLACEMENT_STREAM));
        let mut total_encounters: u128 = 0;
        let mut outcomes = Vec::with_capacity(checkpoints.len());
        let mut next_checkpoint = checkpoints.iter().copied().peekable();
        let max_rounds = *checkpoints.last().expect("non-empty");
        for round in 0..=max_rounds {
            if round > 0 {
                engine.step_round();
                total_encounters += engine.round_encounters();
            }
            while next_checkpoint.peek() == Some(&round) {
                next_checkpoint.next();
                outcomes.push(crate::CountsOutcome::from_tallies(
                    round,
                    self.num_agents as u64,
                    nodes,
                    total_encounters,
                ));
            }
        }
        outcomes
    }

    /// Executes the scenario. The outcome is a pure function of
    /// `(self, seed)` — thread count and scheduling are invisible.
    ///
    /// A thin driver over [`Self::run_streamed`]: one tap, one
    /// checkpoint at `rounds`.
    ///
    /// # Panics
    ///
    /// For `Algorithm4`, panics unless the topology is a 2-d torus with
    /// `rounds < side` — Theorem 32's precondition. Same check as
    /// `antdensity_core::Algorithm4`.
    pub fn run(&self, seed: u64) -> ScenarioOutcome {
        let tap = ObserverTap {
            estimator: self.estimator.clone(),
            schedule: Schedule::single(self.rounds),
        };
        self.run_streamed(seed, std::slice::from_ref(&tap))
            .pop()
            .expect("one tap in, one outcome list out")
            .pop()
            .expect("one checkpoint in, one outcome out")
    }

    /// Executes **one** simulation pass and snapshots every observer tap
    /// at each of its rounds-checkpoints: `result[i][j]` is tap `i`'s
    /// outcome at its `j`-th checkpoint, **bit-identical** to
    /// `self.with_estimator(taps[i].estimator)` run for exactly
    /// `taps[i].schedule.points()[j]` rounds (RNG streams are derived
    /// per round, so a shorter run draws a strict prefix of a longer
    /// one; the golden-vector and replay suites pin this contract).
    ///
    /// The scenario's own `estimator` and `rounds` are superseded by the
    /// taps; topology, movement, interaction variants, noise, and
    /// threading still come from `self`. The pass runs to the largest
    /// checkpoint of any tap.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty, if the taps' estimators do not share
    /// one simulation family ([`SimFamily::fuse`]), or if an
    /// `Algorithm4` tap violates Theorem 32's precondition (non-torus
    /// topology, or a checkpoint at `rounds ≥ side`).
    pub fn run_streamed(&self, seed: u64, taps: &[ObserverTap]) -> Vec<Vec<ScenarioOutcome>> {
        self.drive(seed, taps, None)
    }

    /// [`Self::run_streamed`], additionally recording the raw per-round
    /// event stream — the replay harness of the observer-equivalence
    /// property suite (`tests/observer_replay.rs`) and a debugging tap.
    ///
    /// # Panics
    ///
    /// As [`Self::run_streamed`].
    pub fn run_recorded(
        &self,
        seed: u64,
        taps: &[ObserverTap],
    ) -> (
        Vec<Vec<ScenarioOutcome>>,
        crate::observer::RecordingObserver,
    ) {
        let mut recorder = crate::observer::RecordingObserver::default();
        let results = self.drive(seed, taps, Some(&mut recorder));
        (results, recorder)
    }

    fn drive(
        &self,
        seed: u64,
        taps: &[ObserverTap],
        mut recorder: Option<&mut crate::observer::RecordingObserver>,
    ) -> Vec<Vec<ScenarioOutcome>> {
        assert!(!taps.is_empty(), "need at least one observer tap");
        let family = taps[0].estimator.sim_family();
        let family = taps.iter().skip(1).fold(family, |f, tap| {
            f.fuse(tap.estimator.sim_family()).unwrap_or_else(|| {
                panic!(
                    "estimator {} cannot share a simulation pass with the preceding taps \
                     (incompatible simulation families)",
                    tap.estimator
                )
            })
        });
        let max_rounds = taps
            .iter()
            .map(|t| t.schedule.max())
            .max()
            .expect("taps are non-empty");
        if matches!(family, SimFamily::Alg4) {
            match self.topology {
                TopologySpec::Torus2d { side } => assert!(
                    max_rounds < side,
                    "Theorem 32 requires t < sqrt(A) (= {side}); got t = {max_rounds}"
                ),
                other => panic!("Algorithm 4 is analysed on the 2-d torus only, got {other:?}"),
            }
        }

        let seq = SeedSequence::new(seed);
        let topo = self.topology.build();
        let mut engine = Engine::new(topo, self.num_agents)
            .with_seed_sequence(seq.subsequence(STEP_STREAM))
            .with_threads(self.threads)
            .with_config(self.engine_config);
        if let Some(pool) = &self.pool {
            engine = engine.with_worker_pool(std::sync::Arc::clone(pool));
        }
        engine.set_movement_all(&self.movement);
        engine.set_avoidance(self.avoidance);
        engine.set_flee(self.flee);

        // Family-specific agent configuration (identical RNG consumption
        // to the per-estimator runs being fused).
        let mut walking: Option<Vec<bool>> = None;
        match family {
            SimFamily::Alg4 => {
                let mut coin = seq.rng(ROLE_STREAM);
                // Move index 2 is the paper's (0, 1) drift step on Torus2d
                // (the only topology the precondition check lets through).
                let drift = 2;
                let w: Vec<bool> = (0..self.num_agents).map(|_| coin.gen_bool(0.5)).collect();
                for (a, &is_walking) in w.iter().enumerate() {
                    engine.set_movement(
                        a,
                        if is_walking {
                            MovementModel::Drift { move_index: drift }
                        } else {
                            MovementModel::Stationary
                        },
                    );
                }
                walking = Some(w);
            }
            SimFamily::Standard {
                property_agents: Some(property_agents),
            } => {
                engine.declare_groups(1);
                for a in 0..property_agents {
                    engine.assign_group(a, 0);
                }
            }
            SimFamily::Standard {
                property_agents: None,
            } => {}
        }

        engine.place_uniform(&mut seq.rng(PLACEMENT_STREAM));

        let track_groups = matches!(
            family,
            SimFamily::Standard {
                property_agents: Some(_)
            }
        );
        let n = self.num_agents;
        let mut noise_rng = seq.rng(NOISE_STREAM);
        let mut tallies = EncounterTallies::new(n, track_groups);
        let mut observers: Vec<Box<dyn Observer>> = taps
            .iter()
            .map(|t| observer_for(&t.estimator, walking.as_deref()))
            .collect();
        let mut results: Vec<Vec<ScenarioOutcome>> = taps.iter().map(|_| Vec::new()).collect();
        let mut raw = vec![0u32; n];
        let mut seen = vec![0u32; n];
        let mut group_buf: Option<Vec<u32>> = track_groups.then(|| vec![0u32; n]);
        let true_density = engine.density();

        for round in 1..=max_rounds {
            engine.step_round_parallel();
            for (a, slot) in raw.iter_mut().enumerate() {
                *slot = engine.count(a);
            }
            // Noise draws happen once, in agent order — exactly the
            // stream a dedicated per-estimator run would consume.
            match &self.noise {
                None => seen.copy_from_slice(&raw),
                Some(noise) => {
                    for (slot, &c) in seen.iter_mut().zip(&raw) {
                        *slot = noise.observe(c, &mut noise_rng);
                    }
                }
            }
            if let Some(gb) = &mut group_buf {
                for (a, slot) in gb.iter_mut().enumerate() {
                    *slot = engine.count_in_group(a, 0);
                }
            }
            let ev = RoundEvents {
                round,
                counts: &seen,
                raw_counts: &raw,
                group_counts: group_buf.as_deref(),
            };
            tallies.record(&ev);
            if let Some(rec) = recorder.as_deref_mut() {
                rec.on_round(&ev);
            }
            for obs in &mut observers {
                obs.on_round(&ev);
            }
            for ((tap, obs), out) in taps.iter().zip(&observers).zip(&mut results) {
                if tap.schedule.contains(round) {
                    out.push(obs.snapshot(&tallies, true_density));
                }
            }
        }
        results
    }
}

/// One estimator tapping a shared simulation pass, snapshotting at each
/// checkpoint of its schedule (see [`Scenario::run_streamed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ObserverTap {
    /// The estimator reading the event stream.
    pub estimator: EstimatorSpec,
    /// The rounds-checkpoints at which it snapshots.
    pub schedule: Schedule,
}

impl ObserverTap {
    /// The classic single-checkpoint tap: `estimator` read out once
    /// after `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn single(estimator: EstimatorSpec, rounds: u64) -> Self {
        Self {
            estimator,
            schedule: Schedule::single(rounds),
        }
    }
}

// Distinct derivation labels so placement, stepping, role coins, and
// noise never share a stream.
const PLACEMENT_STREAM: u64 = 0x504c_4143;
const STEP_STREAM: u64 = 0x5354_4550;
const ROLE_STREAM: u64 = 0x524f_4c45;
const NOISE_STREAM: u64 = 0x4e4f_4953;
// The counts fast path gets its own labels: its streams are a different
// *shape* (per-node-block, not per-agent-block), so sharing labels with
// the agent path would invite accidental stream reuse if a scenario
// ever ran both.
const COUNTS_PLACEMENT_STREAM: u64 = 0x4350_4c41;
const COUNTS_STEP_STREAM: u64 = 0x4353_5445;

/// The result of running a [`Scenario`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Per-agent density estimates `d̃` (for `RelativeFrequency`, the
    /// overall-density component).
    pub estimates: Vec<f64>,
    /// Per-agent collision counts (post-`mod t` for `Algorithm4`).
    pub collision_counts: Vec<u64>,
    /// Per-agent property-density estimates `d̃_P`
    /// (`RelativeFrequency` only).
    pub property_estimates: Option<Vec<f64>>,
    /// Per-agent `d̃ ≥ threshold` verdicts (`Quorum` only).
    pub quorum_decisions: Option<Vec<bool>>,
    /// Per-agent walking flags (`Algorithm4` only).
    pub walking: Option<Vec<bool>>,
    /// Rounds executed.
    pub rounds: u64,
    /// Paper-convention true density `d = n/A`.
    pub true_density: f64,
}

impl ScenarioOutcome {
    /// Mean of the per-agent estimates.
    pub fn mean_estimate(&self) -> f64 {
        self.estimates.iter().sum::<f64>() / self.estimates.len() as f64
    }

    /// Per-agent relative errors `|d̃ − d| / d`.
    ///
    /// # Panics
    ///
    /// Panics if the true density is zero.
    pub fn relative_errors(&self) -> Vec<f64> {
        assert!(
            self.true_density > 0.0,
            "relative error undefined at zero density"
        );
        self.estimates
            .iter()
            .map(|e| (e - self.true_density).abs() / self.true_density)
            .collect()
    }

    /// Fraction of agents whose estimate lies in `(1±eps)·d`.
    pub fn fraction_within(&self, eps: f64) -> f64 {
        if self.true_density == 0.0 {
            return self.estimates.iter().filter(|&&e| e == 0.0).count() as f64
                / self.estimates.len() as f64;
        }
        let lo = (1.0 - eps) * self.true_density;
        let hi = (1.0 + eps) * self.true_density;
        self.estimates
            .iter()
            .filter(|&&e| e >= lo && e <= hi)
            .count() as f64
            / self.estimates.len() as f64
    }

    /// Per-agent relative-frequency estimates `f̃ = d̃_P/d̃` (`None` for
    /// agents with `d̃ = 0`).
    ///
    /// # Panics
    ///
    /// Panics if the scenario did not use `RelativeFrequency`.
    pub fn frequencies(&self) -> Vec<Option<f64>> {
        let prop = self
            .property_estimates
            .as_ref()
            .expect("scenario did not estimate frequencies");
        self.estimates
            .iter()
            .zip(prop)
            .map(|(&d, &dp)| if d > 0.0 { Some(dp / d) } else { None })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm1_is_roughly_unbiased() {
        let spec = Scenario::new(TopologySpec::Torus2d { side: 16 }, 33, 128);
        let mut grand = 0.0;
        for seed in 0..20 {
            grand += spec.run(seed).mean_estimate();
        }
        let mean = grand / 20.0;
        assert!((mean - 0.125).abs() < 0.012, "grand mean {mean}");
    }

    #[test]
    fn outcome_is_thread_count_invariant() {
        let base = Scenario::new(TopologySpec::Torus2d { side: 32 }, 500, 64);
        let one = base.clone().with_threads(1).run(9);
        let many = base.with_threads(8).run(9);
        assert_eq!(one, many);
    }

    #[test]
    fn outcome_is_engine_config_invariant() {
        use crate::config::{EngineConfig, STREAM_BLOCK};
        let base = Scenario::new(TopologySpec::Torus2d { side: 32 }, 1500, 24);
        let reference = base.clone().run(9);
        // An explicit pool pins real multi-worker dispatch even on
        // single-core CI hosts (the global pool would cap at the core
        // count and collapse every tuned run to the inline path).
        let pool = std::sync::Arc::new(crate::pool::WorkerPool::new(4));
        for blocks_per_chunk in [1usize, 2, 8] {
            for min_chunks in [1usize, 4] {
                // Exercise both mega-path extremes too: every round
                // blocked (threshold 0) and never blocked (MAX).
                for blocked in [0usize, usize::MAX] {
                    let tuned = base
                        .clone()
                        .with_threads(4)
                        .with_worker_pool(std::sync::Arc::clone(&pool))
                        .with_engine_config(EngineConfig {
                            schedule_chunk: blocks_per_chunk * STREAM_BLOCK,
                            min_chunks_per_worker: min_chunks,
                            inline_step_threshold: 0,
                            blocked_round_threshold: blocked,
                        })
                        .run(9);
                    assert_eq!(
                        reference, tuned,
                        "config {blocks_per_chunk}x{STREAM_BLOCK}/{min_chunks}/{blocked} changed results"
                    );
                }
            }
        }
    }

    #[test]
    fn algorithm4_mod_t_kills_lockstep_counts() {
        let spec = Scenario::new(TopologySpec::Torus2d { side: 64 }, 129, 48)
            .with_estimator(EstimatorSpec::Algorithm4);
        let out = spec.run(3);
        assert!(out.walking.is_some());
        for &c in &out.collision_counts {
            assert!(c < 48, "mod t must bound corrected counts");
        }
        // crude accuracy: d = 128/4096 = 0.03125; Algorithm 4 is unbiased
        let mean: f64 = (0..16).map(|s| spec.run(s).mean_estimate()).sum::<f64>() / 16.0;
        assert!((mean - 0.03125).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn quorum_decisions_follow_threshold() {
        let spec = Scenario::new(TopologySpec::Complete { nodes: 256 }, 33, 256)
            .with_estimator(EstimatorSpec::Quorum { threshold: 0.02 });
        let out = spec.run(5);
        let decisions = out.quorum_decisions.as_ref().unwrap();
        for (d, e) in decisions.iter().zip(&out.estimates) {
            assert_eq!(*d, *e >= 0.02);
        }
        // true density 0.125 is far above 0.02: nearly all agents agree
        let yes = decisions.iter().filter(|&&d| d).count();
        assert!(yes as f64 / 33.0 > 0.9, "{yes}/33 above threshold");
    }

    #[test]
    fn relative_frequency_tracks_property_share() {
        let spec = Scenario::new(TopologySpec::Torus2d { side: 16 }, 64, 512).with_estimator(
            EstimatorSpec::RelativeFrequency {
                property_agents: 16,
            },
        );
        let out = spec.run(7);
        let freqs: Vec<f64> = out.frequencies().into_iter().flatten().collect();
        assert!(!freqs.is_empty());
        let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
        // f_P = 16/64 = 0.25
        assert!((mean - 0.25).abs() < 0.08, "mean frequency {mean}");
    }

    #[test]
    fn noise_shifts_then_corrects() {
        let clean = Scenario::new(TopologySpec::Complete { nodes: 128 }, 33, 512);
        let noisy = clean.clone().with_noise(NoiseSpec::new(0.5, 0.2));
        let e_clean = clean.run(11).mean_estimate();
        let e_noisy = noisy.run(11).mean_estimate();
        // E[observed] = p*d + s
        let predicted = 0.5 * e_clean + 0.2;
        assert!(
            (e_noisy - predicted).abs() < 0.05,
            "{e_noisy} vs {predicted}"
        );
    }

    #[test]
    fn builds_every_topology() {
        for spec in [
            TopologySpec::Torus2d { side: 4 },
            TopologySpec::TorusKd { dims: 3, side: 4 },
            TopologySpec::Ring { nodes: 16 },
            TopologySpec::Hypercube { dims: 4 },
            TopologySpec::Complete { nodes: 16 },
        ] {
            let topo = spec.build();
            assert_eq!(topo.num_nodes(), spec.num_nodes());
            assert!(topo.regular_degree().is_some());
            assert!(!spec.is_csr());
            let out = Scenario::new(spec, 8, 16).run(1);
            assert_eq!(out.estimates.len(), 8);
        }
    }

    #[test]
    fn builds_every_csr_topology() {
        for spec in [
            TopologySpec::CsrRegular {
                nodes: 64,
                degree: 6,
            },
            TopologySpec::CsrGnp {
                nodes: 64,
                avg_degree: 8,
            },
            TopologySpec::CsrGridHoles {
                side: 10,
                mask_seed: 3,
                hole_pm: 250,
            },
            TopologySpec::CsrCliqueRing {
                cliques: 4,
                clique_size: 5,
            },
        ] {
            let topo = spec.build();
            assert!(spec.is_csr());
            assert_eq!(topo.num_nodes(), spec.num_nodes());
            let out = Scenario::new(spec, 8, 16).run(1);
            assert_eq!(out.estimates.len(), 8);
        }
        // regular CSR graphs report their degree (engages the batched
        // kernel); irregular ones do not
        assert_eq!(
            TopologySpec::CsrRegular {
                nodes: 64,
                degree: 6
            }
            .build()
            .regular_degree(),
            Some(6)
        );
        assert_eq!(
            TopologySpec::CsrGridHoles {
                side: 10,
                mask_seed: 3,
                hole_pm: 250
            }
            .build()
            .regular_degree(),
            None
        );
    }

    #[test]
    fn csr_builds_are_cached_and_deterministic() {
        let spec = TopologySpec::CsrRegular {
            nodes: 48,
            degree: 4,
        };
        let (a, b) = (spec.build(), spec.build());
        match (&a, &b) {
            (BuiltTopology::Csr(x), BuiltTopology::Csr(y)) => {
                assert!(
                    std::sync::Arc::ptr_eq(x, y),
                    "same spec must share one build"
                );
            }
            other => panic!("expected CSR builds, got {other:?}"),
        }
        // deterministic across the API: identical outcomes from the
        // identical graph
        let one = Scenario::new(spec, 6, 8).run(9);
        let two = Scenario::new(spec, 6, 8).run(9);
        assert_eq!(one, two);
    }

    #[test]
    fn grid_holes_node_count_comes_from_the_build() {
        let spec = TopologySpec::CsrGridHoles {
            side: 12,
            mask_seed: 11,
            hole_pm: 300,
        };
        let n = spec.num_nodes();
        assert!(n < 144, "holes must remove cells, got {n}");
        assert!(n > 36, "the giant component should dominate, got {n}");
        assert_eq!(spec.build().num_nodes(), n);
        // a different mask seed gives a different region
        let other = TopologySpec::CsrGridHoles {
            side: 12,
            mask_seed: 12,
            hole_pm: 300,
        };
        assert!(other.num_nodes() > 0);
    }

    #[test]
    #[should_panic(expected = "Theorem 32 requires")]
    fn algorithm4_rejects_long_runs() {
        // t >= side wraps drifting walkers around the torus; the mod-t
        // correction would then corrupt legitimate counts.
        let _ = Scenario::new(TopologySpec::Torus2d { side: 8 }, 65, 64)
            .with_estimator(EstimatorSpec::Algorithm4)
            .run(1);
    }

    #[test]
    #[should_panic(expected = "2-d torus only")]
    fn algorithm4_rejects_non_torus() {
        let _ = Scenario::new(TopologySpec::Ring { nodes: 64 }, 9, 8)
            .with_estimator(EstimatorSpec::Algorithm4)
            .run(1);
    }

    #[test]
    fn topology_spec_display_round_trips() {
        for spec in [
            TopologySpec::Torus2d { side: 32 },
            TopologySpec::TorusKd { dims: 3, side: 8 },
            TopologySpec::Ring { nodes: 1024 },
            TopologySpec::Hypercube { dims: 10 },
            TopologySpec::Complete { nodes: 4096 },
            TopologySpec::CsrRegular {
                nodes: 1024,
                degree: 8,
            },
            TopologySpec::CsrGnp {
                nodes: 512,
                avg_degree: 12,
            },
            TopologySpec::CsrGridHoles {
                side: 32,
                mask_seed: 7,
                hole_pm: 200,
            },
            TopologySpec::CsrGridHoles {
                side: 16,
                mask_seed: 0,
                hole_pm: 0,
            },
            TopologySpec::CsrGridHoles {
                side: 16,
                mask_seed: 5,
                hole_pm: 125,
            },
            TopologySpec::CsrCliqueRing {
                cliques: 16,
                clique_size: 8,
            },
        ] {
            let text = spec.to_string();
            assert_eq!(text.parse::<TopologySpec>().unwrap(), spec, "{text}");
        }
        assert!("torus2d:0".parse::<TopologySpec>().is_err());
        assert!("moebius:7".parse::<TopologySpec>().is_err());
        assert!("toruskd:8".parse::<TopologySpec>().is_err());
    }

    #[test]
    fn malformed_csr_tokens_rejected_with_actionable_errors() {
        for (token, needle) in [
            ("csr", "expected `kind:params`"),
            ("csr:regular", "csr:<family>:<params>"),
            ("csr:moebius:64:4", "unknown csr family"),
            ("csr:regular:64", "csr:regular:<n>:<d>"),
            ("csr:regular:64:0", "must be positive"),
            ("csr:regular:64:64", "below node count"),
            ("csr:regular:5:3", "must be even"),
            ("csr:gnp:64", "csr:gnp:<n>:<avg-deg>"),
            ("csr:gnp:64:70", "below node count"),
            ("csr:gnp:10000:3", "connectivity threshold"),
            (
                "csr:grid-holes:32:7",
                "grid-holes:<side>:<mask-seed>:<hole-frac>",
            ),
            ("csr:grid-holes:1:7:0.2", "at least 2"),
            ("csr:grid-holes:32:x:0.2", "bad mask seed"),
            ("csr:grid-holes:32:7:0.95", "outside [0, 0.9]"),
            ("csr:grid-holes:32:7:lots", "bad hole fraction"),
            ("csr:cliquering:16", "csr:cliquering:<cliques>:<size>"),
            ("csr:cliquering:1:8", "at least 2 cliques"),
            ("csr:cliquering:4:2", "at least 3"),
            // the u32 node domain is enforced at parse time, not
            // mid-sweep in build() — and never silently truncated
            ("csr:regular:8589934593:4294967298", "u32 node domain"),
            ("csr:regular:8589934592:4", "u32 node domain"),
            ("csr:gnp:4294967296:12", "u32 node domain"),
            ("csr:grid-holes:65536:7:0.2", "max side 65535"),
            ("csr:cliquering:65536:65537", "u32 node domain"),
            (
                "csr:cliquering:18446744073709551615:18446744073709551615",
                "overflows",
            ),
        ] {
            let err = token.parse::<TopologySpec>().unwrap_err();
            assert!(
                err.contains(needle),
                "`{token}` → `{err}` should mention `{needle}`"
            );
            assert!(err.contains(token), "`{err}` should quote the token");
        }
    }

    #[test]
    fn estimator_spec_display_round_trips() {
        for spec in [
            EstimatorSpec::Algorithm1,
            EstimatorSpec::Algorithm4,
            EstimatorSpec::Quorum { threshold: 0.125 },
            EstimatorSpec::RelativeFrequency {
                property_agents: 16,
            },
        ] {
            let text = spec.to_string();
            assert_eq!(text.parse::<EstimatorSpec>().unwrap(), spec, "{text}");
        }
        assert!("quorum:-1".parse::<EstimatorSpec>().is_err());
        assert!("alg2".parse::<EstimatorSpec>().is_err());
    }

    #[test]
    fn movement_and_noise_display_round_trip() {
        use crate::movement::MovementModel;
        for m in [
            MovementModel::Pure,
            MovementModel::Lazy { stay_prob: 0.25 },
            MovementModel::Stationary,
            MovementModel::Drift { move_index: 2 },
            MovementModel::Biased {
                move_probs: vec![0.125, 0.5, 0.25],
            },
        ] {
            let text = m.to_string();
            assert_eq!(text.parse::<MovementModel>().unwrap(), m, "{text}");
        }
        assert!("lazy:1.5".parse::<MovementModel>().is_err());
        assert!("biased:0.9,0.9".parse::<MovementModel>().is_err());

        let noise = NoiseSpec::new(0.8, 0.05);
        assert_eq!(noise.to_string().parse::<NoiseSpec>().unwrap(), noise);
        assert!("sense:0:0.1".parse::<NoiseSpec>().is_err());
        assert!("sense:0.5".parse::<NoiseSpec>().is_err());
    }

    #[test]
    #[should_panic(expected = "property population")]
    fn oversized_property_group_rejected() {
        let _ = Scenario::new(TopologySpec::Ring { nodes: 8 }, 4, 8)
            .with_estimator(EstimatorSpec::RelativeFrequency { property_agents: 5 });
    }

    #[test]
    fn try_with_estimator_reports_clear_errors() {
        let base = Scenario::new(TopologySpec::Ring { nodes: 8 }, 4, 8);
        let err = base
            .clone()
            .try_with_estimator(EstimatorSpec::RelativeFrequency { property_agents: 5 })
            .unwrap_err();
        assert!(
            err.contains("5 property agents > 4 agents"),
            "error should name both counts: {err}"
        );
        // alg4 preconditions fail at build time, not rounds-deep in run()
        let err = base
            .try_with_estimator(EstimatorSpec::Algorithm4)
            .unwrap_err();
        assert!(err.contains("2-d torus only"), "{err}");
        let err = Scenario::new(TopologySpec::Torus2d { side: 8 }, 4, 8)
            .try_with_estimator(EstimatorSpec::Algorithm4)
            .unwrap_err();
        assert!(err.contains("Theorem 32"), "{err}");
        // valid configurations pass through
        assert!(Scenario::new(TopologySpec::Torus2d { side: 8 }, 4, 7)
            .try_with_estimator(EstimatorSpec::Algorithm4)
            .is_ok());
    }

    /// The fusion determinism contract at the engine level: one
    /// streamed pass with several estimator taps and a multi-checkpoint
    /// schedule equals the dedicated `(estimator, rounds)` runs bit for
    /// bit.
    #[test]
    fn streamed_pass_is_bit_identical_to_dedicated_runs() {
        use antdensity_stats::schedule::Schedule;
        let base = Scenario::new(TopologySpec::Torus2d { side: 16 }, 40, 64)
            .with_noise(NoiseSpec::new(0.8, 0.1));
        let schedule = Schedule::new(vec![8, 16, 32, 64]).unwrap();
        let taps = vec![
            ObserverTap {
                estimator: EstimatorSpec::Algorithm1,
                schedule: schedule.clone(),
            },
            ObserverTap {
                estimator: EstimatorSpec::Quorum { threshold: 0.1 },
                schedule: Schedule::new(vec![16, 64]).unwrap(),
            },
            ObserverTap {
                estimator: EstimatorSpec::RelativeFrequency {
                    property_agents: 10,
                },
                schedule: Schedule::single(32),
            },
        ];
        let fused = base.run_streamed(9, &taps);
        assert_eq!(fused.len(), 3);
        for (tap, outcomes) in taps.iter().zip(&fused) {
            assert_eq!(outcomes.len(), tap.schedule.len());
            for (&rounds, outcome) in tap.schedule.points().iter().zip(outcomes) {
                let dedicated = Scenario::new(TopologySpec::Torus2d { side: 16 }, 40, rounds)
                    .with_noise(NoiseSpec::new(0.8, 0.1))
                    .with_estimator(tap.estimator.clone())
                    .run(9);
                assert_eq!(
                    *outcome, dedicated,
                    "tap {} at t={rounds} drifted from its dedicated run",
                    tap.estimator
                );
            }
        }
    }

    #[test]
    fn streamed_alg4_schedule_matches_dedicated_runs() {
        use antdensity_stats::schedule::Schedule;
        let taps = [ObserverTap {
            estimator: EstimatorSpec::Algorithm4,
            schedule: Schedule::new(vec![8, 16, 24]).unwrap(),
        }];
        let fused =
            Scenario::new(TopologySpec::Torus2d { side: 32 }, 65, 24).run_streamed(3, &taps);
        for (&rounds, outcome) in taps[0].schedule.points().iter().zip(&fused[0]) {
            let dedicated = Scenario::new(TopologySpec::Torus2d { side: 32 }, 65, rounds)
                .with_estimator(EstimatorSpec::Algorithm4)
                .run(3);
            assert_eq!(*outcome, dedicated, "alg4 at t={rounds}");
        }
    }

    #[test]
    #[should_panic(expected = "incompatible simulation families")]
    fn alg4_cannot_fuse_with_standard_taps() {
        let taps = [
            ObserverTap::single(EstimatorSpec::Algorithm1, 8),
            ObserverTap::single(EstimatorSpec::Algorithm4, 8),
        ];
        let _ = Scenario::new(TopologySpec::Torus2d { side: 16 }, 10, 8).run_streamed(1, &taps);
    }
}
