//! Dense occupancy buffers with touched-node reset lists.
//!
//! The paper's sensing primitive `count(position)` needs, every round, the
//! number of agents at each occupied node. A `HashMap<NodeId, u32>` rebuilt
//! per round costs a hash + allocation-churn per agent; with N agents on A
//! nodes the occupied set is at most `min(N, A)` nodes, so a flat
//! `Vec<u32>` indexed by node plus a *touched list* gives O(1) increments,
//! O(1) queries, and O(touched) resets — no hashing, no rehashing, and the
//! buffers are reused across rounds.
//!
//! [`GroupOccupancy`] is the per-property-group variant (Section 5.2's
//! "separately track encounters" sensing) stored as one flat
//! `groups × nodes` buffer with its own touched list.

use antdensity_graphs::NodeId;

/// Maximum node count the dense engine supports (positions are `u32`).
pub const MAX_NODES: u64 = u32::MAX as u64;

/// Agent-count floor for the tile-blocked rebuild: below this the two
/// partition passes cost more than the scattered increments they avoid.
const BLOCKED_REBUILD_MIN_AGENTS: usize = 1 << 18;

/// Node-count floor for the tile-blocked rebuild: below this the counts
/// array is L2-resident and scattered increments are already cheap.
const BLOCKED_REBUILD_MIN_NODES: usize = 1 << 17;

/// Nodes per rebuild tile (`1 << REBUILD_TILE_SHIFT`): 16k nodes keep
/// one tile's `u32` counts in 64 KiB, comfortably inside L2 alongside
/// the streamed partition buffers.
const REBUILD_TILE_SHIFT: u32 = 14;

/// Per-node agent counts for one round, reset via a touched list.
#[derive(Debug, Clone, Default)]
pub struct DenseOccupancy {
    counts: Vec<u32>,
    touched: Vec<u32>,
    /// Counting-sort buffers for the tile-blocked rebuild (empty until
    /// the first large rebuild; reused across rounds).
    tile_counts: Vec<u32>,
    tile_sorted: Vec<u32>,
}

impl DenseOccupancy {
    /// Creates a zeroed occupancy buffer over `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` exceeds [`MAX_NODES`].
    pub fn new(num_nodes: u64) -> Self {
        assert!(
            num_nodes <= MAX_NODES,
            "dense engine supports at most {MAX_NODES} nodes, got {num_nodes}"
        );
        Self {
            counts: vec![0; num_nodes as usize],
            touched: Vec::new(),
            tile_counts: Vec::new(),
            tile_sorted: Vec::new(),
        }
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.counts.len()
    }

    /// Zeroes every touched node and clears the touched list. O(occupied).
    pub fn clear(&mut self) {
        for &v in &self.touched {
            self.counts[v as usize] = 0;
        }
        self.touched.clear();
    }

    /// Adds one agent at `node`.
    #[inline]
    pub fn record(&mut self, node: u32) {
        let c = &mut self.counts[node as usize];
        if *c == 0 {
            self.touched.push(node);
        }
        *c += 1;
    }

    /// Resets and re-counts from a position array.
    ///
    /// Large rebuilds (mega-scale populations over node sets whose
    /// counts array exceeds L2) automatically take a tile-blocked path:
    /// positions are counting-sorted into 16k-node tiles first, so the
    /// per-node increments of one tile hit a cache-resident window
    /// instead of scattering across the whole array. Counts are
    /// identical either way; only the order of [`DenseOccupancy::touched`]
    /// differs (first-touch vs tile-major).
    pub fn rebuild(&mut self, positions: &[u32]) {
        self.clear();
        if positions.len() >= BLOCKED_REBUILD_MIN_AGENTS
            && self.counts.len() >= BLOCKED_REBUILD_MIN_NODES
        {
            self.rebuild_tiled(positions, REBUILD_TILE_SHIFT);
            return;
        }
        for &p in positions {
            self.record(p);
        }
    }

    /// The tile-blocked rebuild core: counting-sort `positions` by node
    /// tile, then record tile by tile. Counts match the plain loop
    /// exactly; `touched` holds the same set in tile-major order.
    /// Caller must have cleared first.
    fn rebuild_tiled(&mut self, positions: &[u32], tile_shift: u32) {
        assert!(
            positions.len() <= u32::MAX as usize,
            "tile cursors are u32; rebuild of {} agents overflows",
            positions.len()
        );
        let num_tiles = ((self.counts.len().max(1) - 1) >> tile_shift) + 1;
        self.tile_counts.clear();
        self.tile_counts.resize(num_tiles, 0);
        for &p in positions {
            self.tile_counts[(p >> tile_shift) as usize] += 1;
        }
        let mut cursors = Vec::with_capacity(num_tiles);
        let mut acc = 0u32;
        for &c in &self.tile_counts {
            cursors.push(acc);
            acc += c;
        }
        self.tile_sorted.clear();
        self.tile_sorted.resize(positions.len(), 0);
        for &p in positions {
            let cursor = &mut cursors[(p >> tile_shift) as usize];
            self.tile_sorted[*cursor as usize] = p;
            *cursor += 1;
        }
        // Same-set-of-increments as the plain loop, grouped so one
        // tile's counts window stays hot.
        for &p in &self.tile_sorted {
            let c = &mut self.counts[p as usize];
            if *c == 0 {
                self.touched.push(p);
            }
            *c += 1;
        }
    }

    /// Agents at `node` this round; 0 for any node (in or out of range).
    #[inline]
    pub fn count(&self, node: NodeId) -> u32 {
        self.counts.get(node as usize).copied().unwrap_or(0)
    }

    /// Number of distinct occupied nodes.
    pub fn occupied_nodes(&self) -> usize {
        self.touched.len()
    }

    /// The distinct occupied nodes. Order is unspecified: first-touch
    /// for small rebuilds and direct [`DenseOccupancy::record`] use,
    /// tile-major when a large rebuild takes the blocked path.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

/// Per-group per-node agent counts as one flat `groups × nodes` buffer.
#[derive(Debug, Clone, Default)]
pub struct GroupOccupancy {
    num_nodes: usize,
    num_groups: usize,
    counts: Vec<u32>,
    touched: Vec<usize>,
}

impl GroupOccupancy {
    /// Creates an empty buffer (no groups yet) over `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` exceeds [`MAX_NODES`].
    pub fn new(num_nodes: u64) -> Self {
        assert!(
            num_nodes <= MAX_NODES,
            "dense engine supports at most {MAX_NODES} nodes, got {num_nodes}"
        );
        Self {
            num_nodes: num_nodes as usize,
            num_groups: 0,
            counts: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Number of declared groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Grows the buffer so groups `0..count` exist. Existing counts and
    /// touched indices stay valid (the layout is group-major).
    pub fn ensure_groups(&mut self, count: usize) {
        if count > self.num_groups {
            self.num_groups = count;
            self.counts.resize(count * self.num_nodes, 0);
        }
    }

    /// Zeroes every touched slot. O(touched).
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.counts[i] = 0;
        }
        self.touched.clear();
    }

    /// Adds one agent of `group` at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `group` was never declared or `node` is out of range
    /// (the flat layout would otherwise alias the write into a
    /// neighboring group's region).
    #[inline]
    pub fn record(&mut self, group: usize, node: u32) {
        assert!(group < self.num_groups, "group {group} unassigned");
        assert!((node as usize) < self.num_nodes, "node {node} out of range");
        let i = group * self.num_nodes + node as usize;
        let c = &mut self.counts[i];
        if *c == 0 {
            self.touched.push(i);
        }
        *c += 1;
    }

    /// Resets and re-counts from positions and group assignments
    /// (`groups[agent]` is `None` for group-less agents).
    pub fn rebuild(&mut self, positions: &[u32], groups: &[Option<usize>]) {
        self.clear();
        for (&p, g) in positions.iter().zip(groups) {
            if let Some(g) = *g {
                self.record(g, p);
            }
        }
    }

    /// Agents of `group` at `node` this round; 0 for an out-of-range
    /// node (same contract as [`DenseOccupancy::count`] — the flat layout
    /// must not let a wild node index read a neighboring group's region).
    ///
    /// # Panics
    ///
    /// Panics if `group` was never declared.
    #[inline]
    pub fn count(&self, group: usize, node: NodeId) -> u32 {
        assert!(group < self.num_groups, "group {group} unassigned");
        if node >= self.num_nodes as u64 {
            return 0;
        }
        self.counts[group * self.num_nodes + node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut occ = DenseOccupancy::new(16);
        occ.record(3);
        occ.record(3);
        occ.record(9);
        assert_eq!(occ.count(3), 2);
        assert_eq!(occ.count(9), 1);
        assert_eq!(occ.count(0), 0);
        assert_eq!(occ.count(1_000_000), 0);
        assert_eq!(occ.occupied_nodes(), 2);
        assert_eq!(occ.touched(), &[3, 9]);
    }

    #[test]
    fn clear_is_complete() {
        let mut occ = DenseOccupancy::new(8);
        for p in [0u32, 1, 1, 7] {
            occ.record(p);
        }
        occ.clear();
        for v in 0..8 {
            assert_eq!(occ.count(v), 0);
        }
        assert_eq!(occ.occupied_nodes(), 0);
    }

    #[test]
    fn rebuild_matches_positions() {
        let mut occ = DenseOccupancy::new(8);
        occ.rebuild(&[2, 2, 5]);
        occ.rebuild(&[1, 1, 1, 4]);
        assert_eq!(occ.count(1), 3);
        assert_eq!(occ.count(2), 0);
        assert_eq!(occ.count(4), 1);
        assert_eq!(occ.occupied_nodes(), 2);
    }

    #[test]
    fn tiled_rebuild_counts_match_plain_exactly() {
        // Force tiny tiles (shift 2 → 4-node tiles over 37 nodes, ragged
        // last tile) and compare against the plain record loop: counts
        // identical per node, touched the same set (order may differ).
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..5u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let positions: Vec<u32> = (0..10_000)
                .map(|_| rng.gen_range(0..37u64) as u32)
                .collect();
            let mut plain = DenseOccupancy::new(37);
            plain.rebuild(&positions);
            let mut tiled = DenseOccupancy::new(37);
            tiled.clear();
            tiled.rebuild_tiled(&positions, 2);
            for v in 0..37 {
                assert_eq!(tiled.count(v), plain.count(v), "node {v} seed {seed}");
            }
            let mut a: Vec<u32> = plain.touched().to_vec();
            let mut b: Vec<u32> = tiled.touched().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            // The blocked buffers reset correctly for reuse.
            tiled.rebuild(&positions[..100]);
            let mut small = DenseOccupancy::new(37);
            small.rebuild(&positions[..100]);
            for v in 0..37 {
                assert_eq!(tiled.count(v), small.count(v));
            }
        }
    }

    #[test]
    fn group_occupancy_tracks_per_group() {
        let mut g = GroupOccupancy::new(8);
        g.ensure_groups(2);
        g.rebuild(&[3, 3, 4, 3], &[Some(0), Some(1), Some(0), None]);
        assert_eq!(g.count(0, 3), 1);
        assert_eq!(g.count(1, 3), 1);
        assert_eq!(g.count(0, 4), 1);
        assert_eq!(g.count(1, 4), 0);
        g.rebuild(&[0, 0, 0, 0], &[Some(0), Some(1), Some(0), None]);
        assert_eq!(g.count(0, 3), 0);
        assert_eq!(g.count(0, 0), 2);
    }

    #[test]
    fn group_growth_preserves_counts() {
        let mut g = GroupOccupancy::new(4);
        g.ensure_groups(1);
        g.record(0, 2);
        g.ensure_groups(3);
        assert_eq!(g.count(0, 2), 1);
        assert_eq!(g.count(2, 2), 0);
        assert_eq!(g.num_groups(), 3);
    }

    #[test]
    fn group_out_of_range_node_reads_zero_not_next_group() {
        // Flat group-major layout: group 0's region is followed by group
        // 1's, so an unchecked wild node index would alias into it.
        let mut g = GroupOccupancy::new(100);
        g.ensure_groups(2);
        g.record(1, 20); // lives at flat index 1*100 + 20 = 120
        assert_eq!(g.count(0, 120), 0); // must NOT see group 1's node 20
        assert_eq!(g.count(1, 20), 1);
        assert_eq!(g.count(0, u64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn undeclared_group_panics() {
        let g = GroupOccupancy::new(4);
        let _ = g.count(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_record_rejects_out_of_range_node() {
        let mut g = GroupOccupancy::new(100);
        g.ensure_groups(2);
        g.record(0, 120); // would alias into group 1's region
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_nodes_rejected() {
        let _ = DenseOccupancy::new(u64::MAX);
    }
}
