//! Exact small-parameter discrete samplers shared by the noise models,
//! plus the engine's batched uniform-index sampler.
//!
//! Per-round collision counts are tiny (`E[count] = d ≤ 1`), so summing
//! Bernoulli draws is both exact and faster than any table method, and
//! Knuth's product method covers the Poisson rates the paper's noisy
//! sensing extension (Section 6.1) uses.
//!
//! [`fill_uniform_indices`] is the hot-loop complement: it fills a whole
//! index buffer chunk-at-a-time instead of running one independent
//! bounded draw per agent, hoisting the power-of-two check (and the
//! Lemire rejection zone) out of the loop while consuming **exactly**
//! the RNG stream a sequence of `gen_range(0..span)` calls would.

use antdensity_stats::rng::SeedSequence;
use rand::rngs::SmallRng;
use rand::Rng;
use rand::RngCore;

/// Why a batched uniform-index fill rejected its span. Both bounds are
/// checked identically in release and debug builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanError {
    /// `span == 0`: the range `[0, 0)` is empty.
    Empty,
    /// `span > 2^32`: samples would not fit the `u32` index domain the
    /// batched kernels pack into ([`crate::occupancy::MAX_NODES`]).
    Oversized {
        /// The rejected span.
        span: u64,
    },
}

impl std::fmt::Display for SpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "cannot sample empty range"),
            Self::Oversized { span } => {
                write!(f, "batched samples are u32; span {span} out of range")
            }
        }
    }
}

impl std::error::Error for SpanError {}

/// Validates a batched-fill span: positive and at most `2^32`.
#[inline]
fn check_span(span: u64) -> Result<(), SpanError> {
    if span == 0 {
        return Err(SpanError::Empty);
    }
    if span > (1 << 32) {
        return Err(SpanError::Oversized { span });
    }
    Ok(())
}

/// One Lemire multiply-shift draw with a precomputed rejection zone —
/// bit-for-bit the vendored `gen_range` algorithm.
#[inline]
fn lemire_draw<R: RngCore + ?Sized>(span: u64, zone: u64, rng: &mut R) -> u32 {
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (span as u128);
        if (m as u64) <= zone {
            break (m >> 64) as u32;
        }
    }
}

/// Fills `buf` with independent uniform samples from `[0, span)`,
/// consuming `rng` exactly as `buf.len()` successive
/// `rng.gen_range(0..span)` calls would — same values, same number of
/// `next_u64` draws, in the same order. This is the batched sampling
/// path of the step kernels: the per-draw span classification (bitmask
/// for power-of-two spans, Lemire multiply-shift rejection otherwise) is
/// hoisted out of the loop, and with a concrete `R` the whole fill
/// monomorphizes into one tight loop over raw generator output.
///
/// Samples are truncated to `u32`; the engine's node/degree domain is
/// capped at `u32::MAX` ([`crate::occupancy::MAX_NODES`]), so the cast
/// is lossless for every span the engine uses.
///
/// # Panics
///
/// Panics if `span == 0` or `span > u32::MAX + 1` (in every build
/// profile — see [`try_fill_uniform_indices`] for the non-panicking
/// form).
pub fn fill_uniform_indices<R: RngCore + ?Sized>(span: u64, buf: &mut [u32], rng: &mut R) {
    if let Err(e) = try_fill_uniform_indices(span, buf, rng) {
        panic!("{e}");
    }
}

/// [`fill_uniform_indices`] with the span bounds surfaced as a typed
/// [`SpanError`] instead of a panic. On `Err` the buffer and the RNG are
/// untouched.
pub fn try_fill_uniform_indices<R: RngCore + ?Sized>(
    span: u64,
    buf: &mut [u32],
    rng: &mut R,
) -> Result<(), SpanError> {
    check_span(span)?;
    if span.is_power_of_two() {
        let mask = span - 1;
        for slot in buf.iter_mut() {
            *slot = (rng.next_u64() & mask) as u32;
        }
        return Ok(());
    }
    // Rejection zone precomputed once for the whole buffer (the zone
    // formula lives once, in `graphs::fastdiv`, shared with the CSR
    // per-node hoist).
    let zone = antdensity_graphs::fastdiv::lemire_zone(span);
    for slot in buf.iter_mut() {
        *slot = lemire_draw(span, zone, rng);
    }
    Ok(())
}

/// Number of interleaved generator lanes in the lane-batched fill
/// kernels. Four independent xoshiro states are enough to cover the
/// ~4-cycle serial latency of one state update with independent work.
pub const RNG_LANES: usize = 4;

/// Derives [`RNG_LANES`] independent generator lanes from `seq`: lane
/// `l` draws the stream `seq.rng(first_stream + l)` — the same
/// subsequence/stream derivation the engine's per-block scheme uses, so
/// lane streams are reproducible and disjoint from each other by
/// construction.
pub fn lane_rngs(seq: &SeedSequence, first_stream: u64) -> [SmallRng; RNG_LANES] {
    std::array::from_fn(|l| seq.rng(first_stream + l as u64))
}

/// The lane-interleaved variant of [`fill_uniform_indices`]: slot `i`
/// of `buf` is drawn from lane `i % RNG_LANES`, and each lane's
/// subsequence of slots consumes that lane exactly as sequential
/// `gen_range(0..span)` calls would. Interleaving independent states
/// breaks the serial xoshiro dependency chain, letting the CPU pipeline
/// several draws per cycle where the single-stream fill is latency
/// bound.
///
/// This is a *different* deterministic stream layout than the
/// single-RNG fill — an opt-in kernel for new consumers (the
/// count-based engine's placement, the `rng_batch` bench), never a
/// replacement for the bit-pinned reference path.
///
/// # Panics
///
/// Panics if `span == 0` or `span > u32::MAX + 1`.
pub fn fill_uniform_indices_lanes(span: u64, buf: &mut [u32], lanes: &mut [SmallRng; RNG_LANES]) {
    if let Err(e) = check_span(span) {
        panic!("{e}");
    }
    if span.is_power_of_two() {
        let mask = span - 1;
        let mut chunks = buf.chunks_exact_mut(RNG_LANES);
        for chunk in &mut chunks {
            // One word per lane, gathered before masking: the four
            // state updates carry no data dependence on each other, so
            // they issue in parallel.
            let mut words = [0u64; RNG_LANES];
            for (w, lane) in words.iter_mut().zip(lanes.iter_mut()) {
                *w = lane.next_u64();
            }
            for (slot, w) in chunk.iter_mut().zip(words) {
                *slot = (w & mask) as u32;
            }
        }
        for (l, slot) in chunks.into_remainder().iter_mut().enumerate() {
            *slot = (lanes[l].next_u64() & mask) as u32;
        }
        return;
    }
    let zone = antdensity_graphs::fastdiv::lemire_zone(span);
    let mut chunks = buf.chunks_exact_mut(RNG_LANES);
    for chunk in &mut chunks {
        for (slot, lane) in chunk.iter_mut().zip(lanes.iter_mut()) {
            *slot = lemire_draw(span, zone, lane);
        }
    }
    for (l, slot) in chunks.into_remainder().iter_mut().enumerate() {
        *slot = lemire_draw(span, zone, &mut lanes[l]);
    }
}

/// Exact Binomial(n, p) sample by summing Bernoulli draws.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn sample_binomial(n: u32, p: f64, rng: &mut dyn RngCore) -> u32 {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
    if p == 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mut k = 0;
    for _ in 0..n {
        if rng.gen_bool(p) {
            k += 1;
        }
    }
    k
}

/// Trial counts at or below this use the plain Bernoulli sum — exact
/// and fastest when the loop is this short.
const BINOMIAL_BERNOULLI_MAX: u64 = 16;

/// Mean cap for the BINV inversion tail: expected search length is
/// `n·min(p, 1-p) + 1`, so the walk stays short below this.
const BINV_MAX_MEAN: f64 = 32.0;

/// Trial-count cap for the bitwise digit walk: its cost is ~`2n` raw
/// bits (`n/32` generator words), so it beats the beta-split recursion
/// (a few hundred ns per level) until `n` reaches the hundred-thousands.
/// Above the cap, beta splits halve `n` into this regime first.
const BINOMIAL_BITWISE_MAX: u64 = 1 << 14;

/// The number of `n` fair coins that land heads: popcounts of raw
/// generator words, `⌈n/64⌉` draws.
fn bin_half<R: RngCore + ?Sized>(n: u64, rng: &mut R) -> u64 {
    let mut ones = 0u64;
    let mut left = n;
    while left >= 64 {
        ones += u64::from(rng.next_u64().count_ones());
        left -= 64;
    }
    if left > 0 {
        ones += u64::from((rng.next_u64() & ((1u64 << left) - 1)).count_ones());
    }
    ones
}

/// Exact Binomial(n, p) via the binary digit walk: each trial is an
/// implicit uniform compared against `p` bit by bit, msb first. At each
/// level the surviving trials split on one fair bit
/// ([`bin_half`]); a trial whose bit falls below `p`'s is accepted,
/// above is rejected, equal survives to the next level. Survivors halve
/// per level, so total work is ~`2n` raw bits regardless of `p`, and
/// the accept/reject rule makes the count exactly Binomial(n, p) for
/// the f64's exact value. Caller guarantees `0 < p < 1`.
fn bitwise_binomial<R: RngCore + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let mut n = n;
    let mut acc = 0u64;
    let mut frac = p;
    // Any f64 in (0,1) has at most 1074 expansion bits, and `n` halves
    // per level long before that; the bound is a backstop, not a limit
    // that truncates real mass.
    for _ in 0..1100 {
        if n == 0 {
            break;
        }
        frac *= 2.0; // exact: power-of-two scale
        let bit = frac >= 1.0;
        if bit {
            frac -= 1.0; // exact: both operands share an exponent window
        }
        let heads = bin_half(n, rng);
        if bit {
            // p's bit is 1: trials whose bit is 0 sit strictly below p.
            acc += n - heads;
            n = heads;
        } else {
            // p's bit is 0: trials whose bit is 1 sit strictly above p.
            n -= heads;
        }
        if frac <= 0.0 {
            // p's expansion is exhausted: every survivor equals p's
            // prefix followed by more bits, hence exceeds p. Rejected.
            break;
        }
    }
    acc
}

/// Standard normal via Box–Muller (one value per call; the samplers
/// built on this need distributional correctness, not stream thrift).
fn sample_standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1]: the one-ulp shift keeps the logarithm finite.
    let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gamma(shape, 1) for `shape ≥ 1` — Marsaglia–Tsang squeeze/rejection.
fn sample_gamma<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    debug_assert!(shape >= 1.0, "Marsaglia–Tsang needs shape >= 1");
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * (x * x) * (x * x) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Beta(a, b) as a gamma ratio, clamped inside the open unit interval
/// so downstream conditional probabilities stay well-formed.
fn sample_beta<R: RngCore + ?Sized>(a: f64, b: f64, rng: &mut R) -> f64 {
    let x = sample_gamma(a, rng);
    let y = sample_gamma(b, rng);
    if x + y <= 0.0 {
        return 0.5;
    }
    (x / (x + y)).clamp(f64::EPSILON, 1.0 - f64::EPSILON)
}

/// BINV inversion search: walks the binomial CDF from 0 using the pmf
/// recurrence `pmf(k+1)/pmf(k) = (n-k)p / ((k+1)q)`. The caller
/// guarantees `0 < p < 1` with `n·min(p,1-p)` small and `q^n`
/// representable; `p > 1/2` routes through the `n - Binomial(n, 1-p)`
/// symmetry so the walk always starts at the short end.
fn binv<R: RngCore + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    let (pp, flipped) = if p <= 0.5 {
        (p, false)
    } else {
        (1.0 - p, true)
    };
    let q = 1.0 - pp;
    let s = pp / q;
    let a = (n as f64 + 1.0) * s;
    let mut r = q.powf(n as f64);
    let mut u: f64 = rng.gen();
    let mut k = 0u64;
    while u > r {
        u -= r;
        k += 1;
        // Float-tail guard: once the residual mass rounds below the
        // representable pmf the walk stops at the current support edge.
        if k >= n || r < f64::MIN_POSITIVE {
            break;
        }
        r *= a / (k as f64) - s;
    }
    if flipped {
        n - k
    } else {
        k
    }
}

/// Exact-in-distribution Binomial(n, p) for 64-bit trial counts, O(log n)
/// per draw where the Bernoulli sum of [`sample_binomial`] is O(n).
///
/// Regime dispatch: tiny `n` sums Bernoulli draws (bit-identical to
/// [`sample_binomial`] from the same generator state); a small mean
/// `n·min(p,1-p)` uses the BINV inversion walk; mid-size `n` runs the
/// popcount digit walk (`bitwise_binomial`, ~`2n` raw bits total);
/// huge `n` splits on a beta-distributed order statistic (Devroye X.4) —
/// conditioning on `V = U_(a) ~ Beta(a, n-a+1)` leaves a binomial over
/// roughly half the trials, so the recursion reaches a cheap regime in
/// `O(log n)` splits. This is what makes count-based stepping O(nodes)
/// instead of O(agents).
///
/// RNG consumption is regime-dependent — this sampler carries a
/// distributional contract, not a bit-stream one.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn sample_binomial_u64<R: RngCore + ?Sized>(n: u64, p: f64, rng: &mut R) -> u64 {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0,1]");
    let mut n = n;
    let mut p = p;
    let mut acc = 0u64;
    loop {
        if p <= 0.0 || n == 0 {
            return acc;
        }
        if p >= 1.0 {
            return acc + n;
        }
        if n <= BINOMIAL_BERNOULLI_MAX {
            for _ in 0..n {
                if rng.gen_bool(p) {
                    acc += 1;
                }
            }
            return acc;
        }
        let pmin = p.min(1.0 - p);
        // BINV needs q^n representable: n·ln(1-pmin) > -640 keeps it
        // far above the f64 underflow floor.
        if (n as f64) * pmin <= BINV_MAX_MEAN && (n as f64) * (1.0 - pmin).ln() > -640.0 {
            return acc + binv(n, p, rng);
        }
        // Bitwise digit walk: ~2n raw bits total, so for mid-size n it
        // beats the per-level transcendental cost of the beta split.
        if n <= BINOMIAL_BITWISE_MAX {
            return acc + bitwise_binomial(n, p, rng);
        }
        // Beta split: condition on the a-th order statistic of the n
        // implicit uniforms. V ≤ p ⇒ the a smallest all hit, and the
        // rest are uniform on (V, 1]; V > p ⇒ only the a-1 below V can
        // hit, uniform on (0, V).
        let a = n / 2;
        let v = sample_beta(a as f64, (n - a + 1) as f64, rng);
        if v <= p {
            acc += a;
            n -= a;
            let denom = 1.0 - v;
            p = if denom > 0.0 {
                ((p - v) / denom).clamp(0.0, 1.0)
            } else {
                1.0
            };
        } else {
            n = a - 1;
            p = (p / v).clamp(0.0, 1.0);
        }
    }
}

/// Exact Multinomial(n; weights): splits `n` across `out` with
/// probabilities proportional to `weights`, preserving the total
/// exactly. The decomposition is the textbook chain of conditional
/// binomials `k_i ~ Binomial(n - Σ_{j<i} k_j, w_i / Σ_{j≥i} w_j)` — the
/// same splits repeated [`sample_binomial`] calls would make, executed
/// through [`sample_binomial_u64`] so each split costs O(log n) instead
/// of O(n).
///
/// RNG consumption is data-dependent (bins with no mass left draw
/// nothing), so the contract is distributional, not bit-stream.
///
/// # Panics
///
/// Panics if `weights` and `out` differ in length or are empty, if any
/// weight is negative or non-finite, or if all weights are zero.
pub fn sample_multinomial<R: RngCore + ?Sized>(
    n: u64,
    weights: &[f64],
    out: &mut [u64],
    rng: &mut R,
) {
    assert_eq!(weights.len(), out.len(), "one output bin per weight");
    assert!(!weights.is_empty(), "multinomial needs at least one bin");
    let mut rem_w: f64 = 0.0;
    for &w in weights {
        assert!(
            w >= 0.0 && w.is_finite(),
            "weights must be finite and non-negative"
        );
        rem_w += w;
    }
    assert!(rem_w > 0.0, "weights must not all be zero");
    let mut remaining = n;
    let last = out.len() - 1;
    for (&w, slot) in weights[..last].iter().zip(out[..last].iter_mut()) {
        if remaining == 0 {
            *slot = 0;
            continue;
        }
        let ratio = if rem_w > 0.0 {
            (w / rem_w).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let k = sample_binomial_u64(remaining, ratio, rng);
        *slot = k;
        remaining -= k;
        rem_w -= w;
    }
    out[last] = remaining;
}

/// Exact Poisson(λ) sample via Knuth's product method (O(λ) expected
/// iterations).
///
/// # Panics
///
/// Panics if `lambda` is negative, not finite, or large enough (> 30)
/// that the product method would underflow.
pub fn sample_poisson(lambda: f64, rng: &mut dyn RngCore) -> u32 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "rate must be finite and non-negative"
    );
    assert!(
        lambda <= 30.0,
        "Knuth sampler only supports small rates (got {lambda})"
    );
    if lambda == 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut prod: f64 = 1.0;
    loop {
        prod *= rng.gen_range(0.0..1.0);
        if prod <= limit {
            return k;
        }
        k += 1;
    }
}

/// The Section 6.1 noisy collision sensor: each true collision is
/// detected independently with probability `p` and `Poisson(s)` phantom
/// collisions are added per round. Since the observed count has
/// expectation `p·E[count] + s`, [`CollisionNoise::correct`] recovers the
/// true density in expectation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionNoise {
    detect_prob: f64,
    spurious_rate: f64,
}

impl CollisionNoise {
    /// Creates a sensor that detects each true collision independently
    /// with probability `detect_prob` and additionally reports
    /// `Poisson(spurious_rate)` phantom collisions per round.
    ///
    /// # Panics
    ///
    /// Panics if `detect_prob ∉ (0, 1]` or `spurious_rate < 0` (or is not
    /// finite).
    pub fn new(detect_prob: f64, spurious_rate: f64) -> Self {
        assert!(
            detect_prob > 0.0 && detect_prob <= 1.0,
            "detection probability must lie in (0,1]"
        );
        assert!(
            spurious_rate >= 0.0 && spurious_rate.is_finite(),
            "spurious rate must be finite and non-negative"
        );
        Self {
            detect_prob,
            spurious_rate,
        }
    }

    /// A perfect sensor (identity observation).
    pub fn perfect() -> Self {
        Self {
            detect_prob: 1.0,
            spurious_rate: 0.0,
        }
    }

    /// Detection probability `p`.
    pub fn detect_prob(&self) -> f64 {
        self.detect_prob
    }

    /// Spurious-detection rate `s` per round.
    pub fn spurious_rate(&self) -> f64 {
        self.spurious_rate
    }

    /// Passes a true per-round collision count through the sensor.
    pub fn observe(&self, true_count: u32, rng: &mut dyn RngCore) -> u32 {
        let mut seen = if self.detect_prob >= 1.0 {
            true_count
        } else {
            sample_binomial(true_count, self.detect_prob, rng)
        };
        if self.spurious_rate > 0.0 {
            seen += sample_poisson(self.spurious_rate, rng);
        }
        seen
    }

    /// Unbiases a density estimate produced under this noise model:
    /// `(d̃_obs − s)/p`, clamped at 0.
    pub fn correct(&self, observed_estimate: f64) -> f64 {
        ((observed_estimate - self.spurious_rate) / self.detect_prob).max(0.0)
    }
}

impl Default for CollisionNoise {
    /// A perfect sensor.
    fn default() -> Self {
        Self::perfect()
    }
}

impl std::fmt::Display for CollisionNoise {
    /// Canonical spec-file syntax: `sense:<detect_prob>:<spurious_rate>`.
    /// Round-trips through [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sense:{}:{}", self.detect_prob, self.spurious_rate)
    }
}

impl std::str::FromStr for CollisionNoise {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) syntax (the sweep
    /// spec-file axis format). Validates the same invariants as
    /// [`CollisionNoise::new`], returning `Err` instead of panicking.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .trim()
            .strip_prefix("sense:")
            .ok_or_else(|| format!("noise `{s}`: expected `sense:<detect>:<spurious>`"))?;
        let (p, rate) = rest
            .split_once(':')
            .ok_or_else(|| format!("noise `{s}`: expected `sense:<detect>:<spurious>`"))?;
        let detect_prob: f64 = p
            .trim()
            .parse()
            .map_err(|_| format!("noise `{s}`: bad detection probability `{p}`"))?;
        let spurious_rate: f64 = rate
            .trim()
            .parse()
            .map_err(|_| format!("noise `{s}`: bad spurious rate `{rate}`"))?;
        if !(detect_prob > 0.0 && detect_prob <= 1.0) {
            return Err(format!("noise `{s}`: detection probability outside (0,1]"));
        }
        if !(spurious_rate >= 0.0 && spurious_rate.is_finite()) {
            return Err(format!("noise `{s}`: spurious rate must be non-negative"));
        }
        Ok(Self {
            detect_prob,
            spurious_rate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sample_binomial(10, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial(10, 1.0, &mut rng), 10);
        assert_eq!(sample_binomial(0, 0.5, &mut rng), 0);
    }

    #[test]
    fn binomial_mean_is_np() {
        let mut rng = SmallRng::seed_from_u64(2);
        let total: u64 = (0..20_000)
            .map(|_| sample_binomial(8, 0.25, &mut rng) as u64)
            .sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = SmallRng::seed_from_u64(3);
        let total: u64 = (0..20_000)
            .map(|_| sample_poisson(1.5, &mut rng) as u64)
            .sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "small rates")]
    fn poisson_huge_rate_rejected() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = sample_poisson(1e3, &mut rng);
    }

    #[test]
    fn batched_fill_matches_sequential_gen_range() {
        // The batched path must consume the RNG exactly as per-agent
        // `gen_range` draws do — including rejection re-draws for
        // non-power-of-two spans.
        for span in [1u64, 2, 3, 4, 5, 6, 7, 8, 10, 12, 100, 65_536, 65_537] {
            for seed in 0..8 {
                let mut batched_rng = SmallRng::seed_from_u64(seed);
                let mut buf = [0u32; 97];
                fill_uniform_indices(span, &mut buf, &mut batched_rng);
                let mut seq_rng = SmallRng::seed_from_u64(seed);
                for (i, &b) in buf.iter().enumerate() {
                    let expect: u64 = seq_rng.gen_range(0..span);
                    assert_eq!(b as u64, expect, "span {span} seed {seed} draw {i}");
                }
                // Identical residual state: the *next* draw agrees too.
                assert_eq!(batched_rng.next_u64(), seq_rng.next_u64());
            }
        }
    }

    #[test]
    fn batched_fill_through_dyn_rng_is_identical() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let mut buf_a = [0u32; 33];
        let mut buf_b = [0u32; 33];
        fill_uniform_indices(6, &mut buf_a, &mut a);
        let dyn_rng: &mut dyn RngCore = &mut b;
        fill_uniform_indices(6, &mut buf_b, dyn_rng);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn batched_fill_rejects_zero_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        fill_uniform_indices(0, &mut [0u32; 4], &mut rng);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batched_fill_rejects_oversized_span() {
        let mut rng = SmallRng::seed_from_u64(1);
        fill_uniform_indices((1 << 32) + 1, &mut [0u32; 4], &mut rng);
    }

    #[test]
    fn try_fill_reports_typed_errors_at_both_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [7u32; 4];
        assert_eq!(
            try_fill_uniform_indices(0, &mut buf, &mut rng),
            Err(SpanError::Empty)
        );
        assert_eq!(
            try_fill_uniform_indices((1 << 32) + 1, &mut buf, &mut rng),
            Err(SpanError::Oversized {
                span: (1 << 32) + 1
            })
        );
        // On Err neither the buffer nor the RNG moved.
        assert_eq!(buf, [7u32; 4]);
        assert_eq!(rng, SmallRng::seed_from_u64(1));
        // Both boundary spans are accepted: 1 and exactly 2^32.
        assert_eq!(try_fill_uniform_indices(1, &mut buf, &mut rng), Ok(()));
        assert_eq!(buf, [0u32; 4]);
        assert_eq!(
            try_fill_uniform_indices(1 << 32, &mut buf, &mut rng),
            Ok(())
        );
    }

    #[test]
    fn typed_error_messages_match_the_panic_contract() {
        assert_eq!(SpanError::Empty.to_string(), "cannot sample empty range");
        assert_eq!(
            SpanError::Oversized {
                span: 5_000_000_000
            }
            .to_string(),
            "batched samples are u32; span 5000000000 out of range"
        );
    }

    #[test]
    fn lane_fill_consumes_each_lane_as_sequential_gen_range() {
        // Slot i comes from lane i % RNG_LANES, and each lane's slot
        // subsequence consumes that lane exactly like sequential
        // gen_range draws — pow2 (mask), non-pow2 (Lemire), with an
        // uneven remainder chunk.
        for span in [4u64, 6, 100] {
            for seed in 0..4 {
                let seq = SeedSequence::new(seed);
                let mut lanes = lane_rngs(&seq, 0);
                let mut buf = vec![0u32; 4 * RNG_LANES + 3];
                fill_uniform_indices_lanes(span, &mut buf, &mut lanes);
                let mut reference = lane_rngs(&seq, 0);
                for (i, &got) in buf.iter().enumerate() {
                    let expect: u64 = reference[i % RNG_LANES].gen_range(0..span);
                    assert_eq!(got as u64, expect, "span {span} seed {seed} slot {i}");
                }
                // Identical residual lane states.
                for (lane, reference) in lanes.iter_mut().zip(reference.iter_mut()) {
                    assert_eq!(lane.next_u64(), reference.next_u64());
                }
            }
        }
    }

    #[test]
    fn lane_rngs_are_pairwise_distinct_streams() {
        let seq = SeedSequence::new(11);
        let mut lanes = lane_rngs(&seq, 0);
        let firsts: Vec<u64> = lanes.iter_mut().map(|l| l.next_u64()).collect();
        for i in 0..RNG_LANES {
            for j in i + 1..RNG_LANES {
                assert_ne!(firsts[i], firsts[j], "lanes {i} and {j} collide");
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn lane_fill_rejects_zero_span() {
        let mut lanes = lane_rngs(&SeedSequence::new(1), 0);
        fill_uniform_indices_lanes(0, &mut [0u32; 4], &mut lanes);
    }

    #[test]
    fn binomial_u64_matches_bernoulli_sum_bit_exactly_for_tiny_n() {
        // At or below the Bernoulli threshold the u64 sampler runs the
        // identical gen_bool loop, so from equal generator states the
        // values and residual states agree bit-for-bit.
        for seed in 0..16 {
            for n in [0u64, 1, 5, 16] {
                for p in [0.1, 0.5, 0.9] {
                    let mut a = SmallRng::seed_from_u64(seed);
                    let mut b = SmallRng::seed_from_u64(seed);
                    let big = sample_binomial_u64(n, p, &mut a);
                    let small = sample_binomial(n as u32, p, &mut b) as u64;
                    assert_eq!(big, small, "n {n} p {p} seed {seed}");
                    assert_eq!(a.next_u64(), b.next_u64());
                }
            }
        }
    }

    #[test]
    fn binomial_u64_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(sample_binomial_u64(1_000_000, 0.0, &mut rng), 0);
        assert_eq!(sample_binomial_u64(1_000_000, 1.0, &mut rng), 1_000_000);
        assert_eq!(sample_binomial_u64(0, 0.5, &mut rng), 0);
    }

    #[test]
    fn binomial_u64_moments_across_regimes() {
        // (n, p) chosen to land in each dispatch regime: Bernoulli tail,
        // BINV (direct and flipped), and the beta-split recursion.
        let cases = [
            (12u64, 0.3),
            (100, 0.05),
            (100, 0.95),
            (1_000, 0.3),
            (100_000, 0.4),
        ];
        for (case, &(n, p)) in cases.iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(7 + case as u64);
            let trials = 20_000usize;
            let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
            for _ in 0..trials {
                let k = sample_binomial_u64(n, p, &mut rng) as f64;
                sum += k;
                sumsq += k * k;
            }
            let mean = sum / trials as f64;
            let var = sumsq / trials as f64 - mean * mean;
            let (m, v) = (n as f64 * p, n as f64 * p * (1.0 - p));
            // Mean within 6 standard errors; variance within 10%.
            let se = (v / trials as f64).sqrt();
            assert!(
                (mean - m).abs() < 6.0 * se,
                "n {n} p {p}: mean {mean} vs {m}"
            );
            assert!((var - v).abs() < 0.1 * v, "n {n} p {p}: var {var} vs {v}");
        }
    }

    #[test]
    fn binomial_u64_agrees_with_bernoulli_reference_distribution() {
        // Two-sample chi-square between the fast sampler and the exact
        // Bernoulli sum at n = 48 (BINV regime) and n = 300 (beta-split
        // regime). Deterministic seeds make the statistic reproducible.
        for (case, &(n, p)) in [(48u64, 0.3f64), (300, 0.5)].iter().enumerate() {
            let mut rng = SmallRng::seed_from_u64(100 + case as u64);
            let trials = 8_000;
            let bins = 16usize;
            let lo = (n as f64 * p - 4.0 * (n as f64 * p * (1.0 - p)).sqrt()).floor();
            let width = 8.0 * (n as f64 * p * (1.0 - p)).sqrt() / bins as f64;
            let bin_of = |k: u64| -> usize {
                (((k as f64 - lo) / width).floor().max(0.0) as usize).min(bins - 1)
            };
            let mut fast = vec![0f64; bins];
            let mut reference = vec![0f64; bins];
            for _ in 0..trials {
                fast[bin_of(sample_binomial_u64(n, p, &mut rng))] += 1.0;
                reference[bin_of(sample_binomial(n as u32, p, &mut rng) as u64)] += 1.0;
            }
            let mut chi2 = 0.0;
            let mut df = 0usize;
            for (f, r) in fast.iter().zip(&reference) {
                if f + r < 10.0 {
                    continue;
                }
                chi2 += (f - r) * (f - r) / (f + r);
                df += 1;
            }
            // 99.9th percentile of chi-square with df ≤ 16 is < 40.
            assert!(chi2 < 40.0, "n {n} p {p}: chi2 {chi2} over {df} bins");
        }
    }

    #[test]
    fn multinomial_preserves_totals_exactly() {
        let mut rng = SmallRng::seed_from_u64(21);
        for n in [0u64, 1, 17, 10_000, 1_000_000] {
            let weights = [0.5, 1.5, 0.0, 3.0, 1.0];
            let mut out = [0u64; 5];
            sample_multinomial(n, &weights, &mut out, &mut rng);
            assert_eq!(out.iter().sum::<u64>(), n, "n {n}: {out:?}");
            assert_eq!(out[2], 0, "zero-weight bin received mass");
        }
    }

    #[test]
    fn multinomial_marginals_are_binomial() {
        // Each bin's marginal is Binomial(n, w_i / Σw): check mean and
        // variance per bin over many draws.
        let weights = [1.0, 2.0, 5.0];
        let total_w: f64 = weights.iter().sum();
        let n = 400u64;
        let trials = 20_000usize;
        let mut rng = SmallRng::seed_from_u64(22);
        let mut sums = [0.0f64; 3];
        let mut sumsqs = [0.0f64; 3];
        let mut out = [0u64; 3];
        for _ in 0..trials {
            sample_multinomial(n, &weights, &mut out, &mut rng);
            for (i, &k) in out.iter().enumerate() {
                sums[i] += k as f64;
                sumsqs[i] += (k * k) as f64;
            }
        }
        for i in 0..3 {
            let p = weights[i] / total_w;
            let (m, v) = (n as f64 * p, n as f64 * p * (1.0 - p));
            let mean = sums[i] / trials as f64;
            let var = sumsqs[i] / trials as f64 - mean * mean;
            let se = (v / trials as f64).sqrt();
            assert!((mean - m).abs() < 6.0 * se, "bin {i}: mean {mean} vs {m}");
            assert!((var - v).abs() < 0.1 * v, "bin {i}: var {var} vs {v}");
        }
    }

    #[test]
    fn multinomial_agrees_with_repeated_binomial_splits() {
        // The same chain executed with the u32 Bernoulli-sum sampler is
        // the reference decomposition; compare first moments per bin.
        let weights = [1.0f64, 1.0, 1.0, 1.0];
        let n = 64u64;
        let trials = 20_000usize;
        let mut rng = SmallRng::seed_from_u64(23);
        let mut fast_sums = [0.0f64; 4];
        let mut ref_sums = [0.0f64; 4];
        let mut out = [0u64; 4];
        for _ in 0..trials {
            sample_multinomial(n, &weights, &mut out, &mut rng);
            for (s, &k) in fast_sums.iter_mut().zip(&out) {
                *s += k as f64;
            }
            // Reference: explicit chain of sample_binomial splits.
            let mut remaining = n as u32;
            for (i, s) in ref_sums.iter_mut().enumerate() {
                let k = if i == 3 {
                    remaining
                } else {
                    sample_binomial(remaining, 1.0 / (4 - i) as f64, &mut rng)
                };
                *s += k as f64;
                remaining -= k;
            }
        }
        for i in 0..4 {
            let expect = n as f64 / 4.0;
            let fast = fast_sums[i] / trials as f64;
            let reference = ref_sums[i] / trials as f64;
            let se = (expect * 0.75 / trials as f64).sqrt();
            assert!((fast - expect).abs() < 6.0 * se, "bin {i}: {fast}");
            assert!(
                (reference - expect).abs() < 6.0 * se,
                "bin {i}: {reference}"
            );
        }
    }

    #[test]
    fn multinomial_chi_square_uniform_bins() {
        // Equal weights: pooled bin totals over many draws should be
        // uniform — one-sample chi-square against the exact expectation.
        let k = 8usize;
        let weights = vec![1.0f64; k];
        let n = 100u64;
        let trials = 5_000usize;
        let mut rng = SmallRng::seed_from_u64(24);
        let mut totals = vec![0u64; k];
        let mut out = vec![0u64; k];
        for _ in 0..trials {
            sample_multinomial(n, &weights, &mut out, &mut rng);
            for (t, &c) in totals.iter_mut().zip(&out) {
                *t += c;
            }
        }
        let expect = (n as f64 * trials as f64) / k as f64;
        let chi2: f64 = totals
            .iter()
            .map(|&t| (t as f64 - expect) * (t as f64 - expect) / expect)
            .sum();
        // 99.9th percentile of chi-square(7) ≈ 24.3; the pooled counts
        // are negatively correlated, which only shrinks the statistic.
        assert!(chi2 < 24.3, "chi2 {chi2}, totals {totals:?}");
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn multinomial_rejects_empty_bins() {
        let mut rng = SmallRng::seed_from_u64(1);
        sample_multinomial(5, &[], &mut [], &mut rng);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn multinomial_rejects_all_zero_weights() {
        let mut rng = SmallRng::seed_from_u64(1);
        sample_multinomial(5, &[0.0, 0.0], &mut [0u64; 2], &mut rng);
    }
}
